#include "sql/parser.h"

#include "common/string_util.h"
#include "sql/lexer.h"

namespace idaa::sql {

namespace {

/// Token-stream cursor with the grammar productions as methods.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<StatementPtr> ParseStatementTop() {
    IDAA_ASSIGN_OR_RETURN(StatementPtr stmt, ParseStatementInner());
    Accept(TokenType::kSemicolon);
    if (!Check(TokenType::kEof)) {
      return Err("unexpected trailing input");
    }
    return stmt;
  }

  Result<ExprPtr> ParseExpressionTop() {
    IDAA_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    if (!Check(TokenType::kEof)) {
      return Status::SyntaxError("unexpected trailing input after expression");
    }
    return e;
  }

 private:
  // -- token helpers --------------------------------------------------------

  const Token& Peek() const { return tokens_[pos_]; }
  const Token& PeekAhead(size_t n) const {
    size_t idx = pos_ + n;
    return idx < tokens_.size() ? tokens_[idx] : tokens_.back();
  }
  Token Advance() { return tokens_[pos_++]; }

  bool Check(TokenType type) const { return Peek().type == type; }
  bool CheckKeyword(const char* kw) const { return Peek().IsKeyword(kw); }

  bool Accept(TokenType type) {
    if (Check(type)) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool AcceptKeyword(const char* kw) {
    if (CheckKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(TokenType type) {
    if (Accept(type)) return Status::OK();
    return Status::SyntaxError(StrFormat(
        "expected %s but found '%s' at offset %zu", TokenTypeToString(type),
        Peek().text.c_str(), Peek().position));
  }

  Status ExpectKeyword(const char* kw) {
    if (AcceptKeyword(kw)) return Status::OK();
    return Status::SyntaxError(StrFormat(
        "expected %s but found '%s' at offset %zu", kw, Peek().text.c_str(),
        Peek().position));
  }

  Status Err(const std::string& what) const {
    return Status::SyntaxError(StrFormat("%s at offset %zu (near '%s')",
                                         what.c_str(), Peek().position,
                                         Peek().text.c_str()));
  }

  /// Identifiers may also be non-reserved keywords used as names.
  Result<std::string> ExpectIdentifier() {
    if (Check(TokenType::kIdentifier)) return Advance().text;
    return Status::SyntaxError(StrFormat(
        "expected identifier but found '%s' at offset %zu", Peek().text.c_str(),
        Peek().position));
  }

  // -- statements ------------------------------------------------------------

  Result<StatementPtr> ParseStatementInner() {
    if (CheckKeyword("SELECT")) {
      IDAA_ASSIGN_OR_RETURN(auto sel, ParseSelect());
      return StatementPtr(std::move(sel));
    }
    if (CheckKeyword("INSERT")) return ParseInsert();
    if (CheckKeyword("UPDATE")) return ParseUpdate();
    if (CheckKeyword("DELETE")) return ParseDelete();
    if (CheckKeyword("CREATE")) return ParseCreateTable();
    if (CheckKeyword("DROP")) return ParseDropTable();
    if (CheckKeyword("GRANT")) return ParseGrantRevoke(/*is_grant=*/true);
    if (CheckKeyword("REVOKE")) return ParseGrantRevoke(/*is_grant=*/false);
    if (CheckKeyword("CALL")) return ParseCall();
    if (AcceptKeyword("EXPLAIN")) {
      auto stmt = std::make_unique<ExplainStatement>();
      stmt->analyze = AcceptKeyword("ANALYZE");
      if (!CheckKeyword("SELECT")) return Err("EXPLAIN supports SELECT only");
      IDAA_ASSIGN_OR_RETURN(stmt->select, ParseSelect());
      return StatementPtr(std::move(stmt));
    }
    return Err("expected a statement");
  }

  Result<std::unique_ptr<SelectStatement>> ParseSelect() {
    IDAA_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    auto stmt = std::make_unique<SelectStatement>();
    stmt->distinct = AcceptKeyword("DISTINCT");

    // select list
    while (true) {
      SelectItem item;
      IDAA_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (AcceptKeyword("AS")) {
        IDAA_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier());
      } else if (Check(TokenType::kIdentifier)) {
        item.alias = Advance().text;
      }
      stmt->items.push_back(std::move(item));
      if (!Accept(TokenType::kComma)) break;
    }

    if (AcceptKeyword("FROM")) {
      IDAA_ASSIGN_OR_RETURN(TableRef base, ParseTableRef());
      stmt->from = std::move(base);
      while (true) {
        JoinClause join;
        if (AcceptKeyword("JOIN") ||
            (CheckKeyword("INNER") && PeekAhead(1).IsKeyword("JOIN") &&
             (Advance(), Advance(), true))) {
          join.type = JoinType::kInner;
        } else if (CheckKeyword("LEFT")) {
          Advance();
          AcceptKeyword("OUTER");
          IDAA_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
          join.type = JoinType::kLeft;
        } else if (CheckKeyword("CROSS")) {
          Advance();
          IDAA_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
          join.type = JoinType::kCross;
        } else {
          break;
        }
        IDAA_ASSIGN_OR_RETURN(join.table, ParseTableRef());
        if (join.type != JoinType::kCross) {
          IDAA_RETURN_IF_ERROR(ExpectKeyword("ON"));
          IDAA_ASSIGN_OR_RETURN(join.on, ParseExpr());
        }
        stmt->joins.push_back(std::move(join));
      }
    }

    if (AcceptKeyword("WHERE")) {
      IDAA_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    if (AcceptKeyword("GROUP")) {
      IDAA_RETURN_IF_ERROR(ExpectKeyword("BY"));
      while (true) {
        IDAA_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        stmt->group_by.push_back(std::move(e));
        if (!Accept(TokenType::kComma)) break;
      }
    }
    if (AcceptKeyword("HAVING")) {
      IDAA_ASSIGN_OR_RETURN(stmt->having, ParseExpr());
    }
    if (AcceptKeyword("ORDER")) {
      IDAA_RETURN_IF_ERROR(ExpectKeyword("BY"));
      while (true) {
        OrderByItem item;
        IDAA_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (AcceptKeyword("DESC")) {
          item.ascending = false;
        } else {
          AcceptKeyword("ASC");
        }
        stmt->order_by.push_back(std::move(item));
        if (!Accept(TokenType::kComma)) break;
      }
    }
    if (AcceptKeyword("LIMIT")) {
      if (!Check(TokenType::kIntegerLit)) return Err("expected LIMIT count");
      stmt->limit = Advance().int_value;
    }
    return stmt;
  }

  Result<TableRef> ParseTableRef() {
    TableRef ref;
    IDAA_ASSIGN_OR_RETURN(ref.table_name, ExpectIdentifier());
    if (AcceptKeyword("AS")) {
      IDAA_ASSIGN_OR_RETURN(ref.alias, ExpectIdentifier());
    } else if (Check(TokenType::kIdentifier)) {
      ref.alias = Advance().text;
    }
    return ref;
  }

  Result<StatementPtr> ParseInsert() {
    IDAA_RETURN_IF_ERROR(ExpectKeyword("INSERT"));
    IDAA_RETURN_IF_ERROR(ExpectKeyword("INTO"));
    auto stmt = std::make_unique<InsertStatement>();
    IDAA_ASSIGN_OR_RETURN(stmt->table_name, ExpectIdentifier());
    if (Accept(TokenType::kLParen)) {
      while (true) {
        IDAA_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
        stmt->columns.push_back(std::move(col));
        if (!Accept(TokenType::kComma)) break;
      }
      IDAA_RETURN_IF_ERROR(Expect(TokenType::kRParen));
    }
    if (CheckKeyword("SELECT")) {
      IDAA_ASSIGN_OR_RETURN(stmt->select, ParseSelect());
      return StatementPtr(std::move(stmt));
    }
    IDAA_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
    while (true) {
      IDAA_RETURN_IF_ERROR(Expect(TokenType::kLParen));
      std::vector<ExprPtr> row;
      while (true) {
        IDAA_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        row.push_back(std::move(e));
        if (!Accept(TokenType::kComma)) break;
      }
      IDAA_RETURN_IF_ERROR(Expect(TokenType::kRParen));
      stmt->values_rows.push_back(std::move(row));
      if (!Accept(TokenType::kComma)) break;
    }
    return StatementPtr(std::move(stmt));
  }

  Result<StatementPtr> ParseUpdate() {
    IDAA_RETURN_IF_ERROR(ExpectKeyword("UPDATE"));
    auto stmt = std::make_unique<UpdateStatement>();
    IDAA_ASSIGN_OR_RETURN(stmt->table_name, ExpectIdentifier());
    IDAA_RETURN_IF_ERROR(ExpectKeyword("SET"));
    while (true) {
      IDAA_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
      IDAA_RETURN_IF_ERROR(Expect(TokenType::kEq));
      IDAA_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      stmt->assignments.emplace_back(std::move(col), std::move(e));
      if (!Accept(TokenType::kComma)) break;
    }
    if (AcceptKeyword("WHERE")) {
      IDAA_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    return StatementPtr(std::move(stmt));
  }

  Result<StatementPtr> ParseDelete() {
    IDAA_RETURN_IF_ERROR(ExpectKeyword("DELETE"));
    IDAA_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    auto stmt = std::make_unique<DeleteStatement>();
    IDAA_ASSIGN_OR_RETURN(stmt->table_name, ExpectIdentifier());
    if (AcceptKeyword("WHERE")) {
      IDAA_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    return StatementPtr(std::move(stmt));
  }

  Result<StatementPtr> ParseCreateTable() {
    IDAA_RETURN_IF_ERROR(ExpectKeyword("CREATE"));
    IDAA_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    auto stmt = std::make_unique<CreateTableStatement>();
    if (AcceptKeyword("IF")) {
      IDAA_RETURN_IF_ERROR(ExpectKeyword("NOT"));
      IDAA_RETURN_IF_ERROR(ExpectKeyword("EXISTS"));
      stmt->if_not_exists = true;
    }
    IDAA_ASSIGN_OR_RETURN(stmt->table_name, ExpectIdentifier());
    if (Accept(TokenType::kLParen)) {
      while (true) {
        ColumnDefAst col;
        IDAA_ASSIGN_OR_RETURN(col.name, ExpectIdentifier());
        // Type name may lex as keyword (DATE, TIMESTAMP) or identifier.
        std::string type_name;
        if (Check(TokenType::kIdentifier) || Check(TokenType::kKeyword)) {
          type_name = Advance().text;
        } else {
          return Err("expected column type");
        }
        IDAA_ASSIGN_OR_RETURN(col.type, DataTypeFromString(type_name));
        // Optional length like VARCHAR(32) — accepted and ignored.
        if (Accept(TokenType::kLParen)) {
          if (!Check(TokenType::kIntegerLit)) return Err("expected type length");
          Advance();
          IDAA_RETURN_IF_ERROR(Expect(TokenType::kRParen));
        }
        if (AcceptKeyword("NOT")) {
          IDAA_RETURN_IF_ERROR(ExpectKeyword("NULL"));
          col.not_null = true;
        }
        stmt->columns.push_back(std::move(col));
        if (!Accept(TokenType::kComma)) break;
      }
      IDAA_RETURN_IF_ERROR(Expect(TokenType::kRParen));
    }
    while (true) {
      if (AcceptKeyword("IN")) {
        IDAA_RETURN_IF_ERROR(ExpectKeyword("ACCELERATOR"));
        stmt->in_accelerator = true;
        // Optional explicit accelerator name: IN ACCELERATOR accel2.
        if (Check(TokenType::kIdentifier)) {
          stmt->accelerator_name = Advance().text;
        }
        continue;
      }
      if (AcceptKeyword("DISTRIBUTE")) {
        IDAA_RETURN_IF_ERROR(ExpectKeyword("BY"));
        IDAA_RETURN_IF_ERROR(Expect(TokenType::kLParen));
        IDAA_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
        stmt->distribute_by = std::move(col);
        IDAA_RETURN_IF_ERROR(Expect(TokenType::kRParen));
        continue;
      }
      break;
    }
    // CTAS: CREATE TABLE t [IN ACCELERATOR] AS SELECT ...
    if (AcceptKeyword("AS")) {
      if (!CheckKeyword("SELECT")) return Err("expected SELECT after AS");
      IDAA_ASSIGN_OR_RETURN(stmt->as_select, ParseSelect());
    }
    if (stmt->columns.empty() && !stmt->as_select) {
      return Err("CREATE TABLE needs a column list or AS SELECT");
    }
    if (!stmt->columns.empty() && stmt->as_select) {
      return Err("CREATE TABLE takes either a column list or AS SELECT, "
                 "not both");
    }
    return StatementPtr(std::move(stmt));
  }

  Result<StatementPtr> ParseDropTable() {
    IDAA_RETURN_IF_ERROR(ExpectKeyword("DROP"));
    IDAA_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    auto stmt = std::make_unique<DropTableStatement>();
    if (AcceptKeyword("IF")) {
      IDAA_RETURN_IF_ERROR(ExpectKeyword("EXISTS"));
      stmt->if_exists = true;
    }
    IDAA_ASSIGN_OR_RETURN(stmt->table_name, ExpectIdentifier());
    return StatementPtr(std::move(stmt));
  }

  Result<StatementPtr> ParseGrantRevoke(bool is_grant) {
    Advance();  // GRANT / REVOKE
    std::vector<std::string> privileges;
    while (true) {
      // Privilege names lex as keywords (SELECT, INSERT, ...) or identifiers.
      if (Check(TokenType::kKeyword) || Check(TokenType::kIdentifier)) {
        privileges.push_back(ToUpper(Advance().text));
      } else {
        return Err("expected privilege name");
      }
      if (!Accept(TokenType::kComma)) break;
    }
    IDAA_RETURN_IF_ERROR(ExpectKeyword("ON"));
    AcceptKeyword("TABLE");
    std::string object;
    if (Check(TokenType::kIdentifier)) {
      object = Advance().text;
      // Qualified procedure names like IDAA.KMEANS.
      while (Accept(TokenType::kDot)) {
        IDAA_ASSIGN_OR_RETURN(std::string part, ExpectIdentifier());
        object += "." + part;
      }
    } else {
      return Err("expected object name");
    }
    // GRANT ... TO user / REVOKE ... FROM user (we accept TO for both).
    if (!AcceptKeyword("TO")) {
      IDAA_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    }
    IDAA_ASSIGN_OR_RETURN(std::string grantee, ExpectIdentifier());
    if (is_grant) {
      auto stmt = std::make_unique<GrantStatement>();
      stmt->privileges = std::move(privileges);
      stmt->object_name = std::move(object);
      stmt->grantee = std::move(grantee);
      return StatementPtr(std::move(stmt));
    }
    auto stmt = std::make_unique<RevokeStatement>();
    stmt->privileges = std::move(privileges);
    stmt->object_name = std::move(object);
    stmt->grantee = std::move(grantee);
    return StatementPtr(std::move(stmt));
  }

  Result<StatementPtr> ParseCall() {
    IDAA_RETURN_IF_ERROR(ExpectKeyword("CALL"));
    auto stmt = std::make_unique<CallStatement>();
    IDAA_ASSIGN_OR_RETURN(stmt->procedure_name, ExpectIdentifier());
    // Allow qualified names like SYSPROC.ACCEL_ADD_TABLES.
    while (Accept(TokenType::kDot)) {
      IDAA_ASSIGN_OR_RETURN(std::string part, ExpectIdentifier());
      stmt->procedure_name += "." + part;
    }
    IDAA_RETURN_IF_ERROR(Expect(TokenType::kLParen));
    if (!Check(TokenType::kRParen)) {
      while (true) {
        IDAA_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        // Fold sign on numeric literals; otherwise must be a literal.
        if (e->kind == ExprKind::kUnary && e->unary_op == UnaryOp::kNeg &&
            e->children[0]->kind == ExprKind::kLiteral) {
          const Value& v = e->children[0]->literal;
          if (v.is_integer()) {
            stmt->arguments.push_back(Value::Integer(-v.AsInteger()));
          } else if (v.is_double()) {
            stmt->arguments.push_back(Value::Double(-v.AsDouble()));
          } else {
            return Err("CALL arguments must be literals");
          }
        } else if (e->kind == ExprKind::kLiteral) {
          stmt->arguments.push_back(e->literal);
        } else {
          return Err("CALL arguments must be literals");
        }
        if (!Accept(TokenType::kComma)) break;
      }
    }
    IDAA_RETURN_IF_ERROR(Expect(TokenType::kRParen));
    return StatementPtr(std::move(stmt));
  }

  // -- expressions -----------------------------------------------------------
  // Precedence: OR < AND < NOT < comparison < additive < multiplicative < unary.

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    IDAA_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (AcceptKeyword("OR")) {
      IDAA_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = MakeBinary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    IDAA_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (CheckKeyword("AND")) {
      Advance();
      IDAA_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = MakeBinary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    if (AcceptKeyword("NOT")) {
      IDAA_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
      return MakeUnary(UnaryOp::kNot, std::move(operand));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    IDAA_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());

    // IS [NOT] NULL
    if (AcceptKeyword("IS")) {
      bool negated = AcceptKeyword("NOT");
      IDAA_RETURN_IF_ERROR(ExpectKeyword("NULL"));
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kIsNull;
      e->negated = negated;
      e->children.push_back(std::move(lhs));
      return ExprPtr(std::move(e));
    }

    bool negated = false;
    if (CheckKeyword("NOT") && (PeekAhead(1).IsKeyword("IN") ||
                                PeekAhead(1).IsKeyword("BETWEEN") ||
                                PeekAhead(1).IsKeyword("LIKE"))) {
      Advance();
      negated = true;
    }

    if (AcceptKeyword("IN")) {
      IDAA_RETURN_IF_ERROR(Expect(TokenType::kLParen));
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kInList;
      e->negated = negated;
      e->children.push_back(std::move(lhs));
      while (true) {
        IDAA_ASSIGN_OR_RETURN(ExprPtr item, ParseExpr());
        e->children.push_back(std::move(item));
        if (!Accept(TokenType::kComma)) break;
      }
      IDAA_RETURN_IF_ERROR(Expect(TokenType::kRParen));
      return ExprPtr(std::move(e));
    }

    if (AcceptKeyword("BETWEEN")) {
      IDAA_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
      IDAA_RETURN_IF_ERROR(ExpectKeyword("AND"));
      IDAA_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kBetween;
      e->negated = negated;
      e->children.push_back(std::move(lhs));
      e->children.push_back(std::move(lo));
      e->children.push_back(std::move(hi));
      return ExprPtr(std::move(e));
    }

    if (AcceptKeyword("LIKE")) {
      IDAA_ASSIGN_OR_RETURN(ExprPtr pattern, ParseAdditive());
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kLike;
      e->negated = negated;
      e->children.push_back(std::move(lhs));
      e->children.push_back(std::move(pattern));
      return ExprPtr(std::move(e));
    }

    BinaryOp op;
    if (Accept(TokenType::kEq)) op = BinaryOp::kEq;
    else if (Accept(TokenType::kNotEq)) op = BinaryOp::kNotEq;
    else if (Accept(TokenType::kLt)) op = BinaryOp::kLt;
    else if (Accept(TokenType::kLtEq)) op = BinaryOp::kLtEq;
    else if (Accept(TokenType::kGt)) op = BinaryOp::kGt;
    else if (Accept(TokenType::kGtEq)) op = BinaryOp::kGtEq;
    else return lhs;

    IDAA_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
    return MakeBinary(op, std::move(lhs), std::move(rhs));
  }

  Result<ExprPtr> ParseAdditive() {
    IDAA_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    while (true) {
      BinaryOp op;
      if (Accept(TokenType::kPlus)) op = BinaryOp::kAdd;
      else if (Accept(TokenType::kMinus)) op = BinaryOp::kSub;
      else if (Accept(TokenType::kConcat)) op = BinaryOp::kConcatOp;
      else break;
      IDAA_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseMultiplicative() {
    IDAA_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (true) {
      BinaryOp op;
      if (Accept(TokenType::kStar)) op = BinaryOp::kMul;
      else if (Accept(TokenType::kSlash)) op = BinaryOp::kDiv;
      else if (Accept(TokenType::kPercent)) op = BinaryOp::kMod;
      else break;
      IDAA_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseUnary() {
    if (Accept(TokenType::kMinus)) {
      IDAA_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      return MakeUnary(UnaryOp::kNeg, std::move(operand));
    }
    if (Accept(TokenType::kPlus)) return ParseUnary();
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& tok = Peek();
    switch (tok.type) {
      case TokenType::kIntegerLit:
        return MakeLiteral(Value::Integer(Advance().int_value));
      case TokenType::kDoubleLit:
        return MakeLiteral(Value::Double(Advance().double_value));
      case TokenType::kStringLit:
        return MakeLiteral(Value::Varchar(Advance().text));
      case TokenType::kParam:
        Advance();
        return MakeParam(next_param_index_++);
      case TokenType::kStar:
        Advance();
        return MakeStar();
      case TokenType::kLParen: {
        Advance();
        IDAA_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        IDAA_RETURN_IF_ERROR(Expect(TokenType::kRParen));
        return e;
      }
      case TokenType::kKeyword:
        return ParseKeywordPrimary();
      case TokenType::kIdentifier:
        return ParseIdentifierPrimary();
      default:
        return Err("expected an expression");
    }
  }

  Result<ExprPtr> ParseKeywordPrimary() {
    if (AcceptKeyword("NULL")) return MakeLiteral(Value::Null());
    if (AcceptKeyword("TRUE")) return MakeLiteral(Value::Boolean(true));
    if (AcceptKeyword("FALSE")) return MakeLiteral(Value::Boolean(false));
    if (CheckKeyword("DATE") && PeekAhead(1).type == TokenType::kStringLit) {
      Advance();
      std::string text = Advance().text;
      IDAA_ASSIGN_OR_RETURN(int32_t days, ParseDate(text));
      return MakeLiteral(Value::Date(days));
    }
    if (CheckKeyword("TIMESTAMP") &&
        PeekAhead(1).type == TokenType::kIntegerLit) {
      Advance();
      return MakeLiteral(Value::Timestamp(Advance().int_value));
    }
    if (AcceptKeyword("CAST")) {
      IDAA_RETURN_IF_ERROR(Expect(TokenType::kLParen));
      IDAA_ASSIGN_OR_RETURN(ExprPtr operand, ParseExpr());
      IDAA_RETURN_IF_ERROR(ExpectKeyword("AS"));
      std::string type_name;
      if (Check(TokenType::kIdentifier) || Check(TokenType::kKeyword)) {
        type_name = Advance().text;
      } else {
        return Err("expected type name in CAST");
      }
      IDAA_ASSIGN_OR_RETURN(DataType type, DataTypeFromString(type_name));
      // Optional length: CAST(x AS VARCHAR(10))
      if (Accept(TokenType::kLParen)) {
        if (!Check(TokenType::kIntegerLit)) return Err("expected type length");
        Advance();
        IDAA_RETURN_IF_ERROR(Expect(TokenType::kRParen));
      }
      IDAA_RETURN_IF_ERROR(Expect(TokenType::kRParen));
      return MakeCast(std::move(operand), type);
    }
    if (AcceptKeyword("CASE")) {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kCase;
      while (AcceptKeyword("WHEN")) {
        IDAA_ASSIGN_OR_RETURN(ExprPtr when, ParseExpr());
        IDAA_RETURN_IF_ERROR(ExpectKeyword("THEN"));
        IDAA_ASSIGN_OR_RETURN(ExprPtr then, ParseExpr());
        e->children.push_back(std::move(when));
        e->children.push_back(std::move(then));
      }
      if (e->children.empty()) return Err("CASE requires at least one WHEN");
      if (AcceptKeyword("ELSE")) {
        IDAA_ASSIGN_OR_RETURN(ExprPtr else_e, ParseExpr());
        e->children.push_back(std::move(else_e));
        e->has_else = true;
      }
      IDAA_RETURN_IF_ERROR(ExpectKeyword("END"));
      return ExprPtr(std::move(e));
    }
    return Err("unexpected keyword in expression");
  }

  Result<ExprPtr> ParseIdentifierPrimary() {
    std::string name = Advance().text;
    // function call?
    if (Check(TokenType::kLParen)) {
      Advance();
      bool distinct = AcceptKeyword("DISTINCT");
      std::vector<ExprPtr> args;
      if (!Check(TokenType::kRParen)) {
        while (true) {
          IDAA_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
          args.push_back(std::move(arg));
          if (!Accept(TokenType::kComma)) break;
        }
      }
      IDAA_RETURN_IF_ERROR(Expect(TokenType::kRParen));
      return MakeFunctionCall(std::move(name), std::move(args), distinct);
    }
    // qualified column: t.c  or t.*
    if (Accept(TokenType::kDot)) {
      if (Accept(TokenType::kStar)) {
        auto e = MakeStar();
        e->table_qualifier = name;
        return e;
      }
      IDAA_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
      return MakeColumnRef(std::move(name), std::move(col));
    }
    return MakeColumnRef("", std::move(name));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  /// Running count of `?` markers, assigned in source order.
  size_t next_param_index_ = 0;
};

}  // namespace

Result<StatementPtr> ParseStatement(const std::string& sql) {
  IDAA_ASSIGN_OR_RETURN(auto tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatementTop();
}

Result<ExprPtr> ParseExpression(const std::string& text) {
  IDAA_ASSIGN_OR_RETURN(auto tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.ParseExpressionTop();
}

}  // namespace idaa::sql
