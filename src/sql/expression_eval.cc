#include "sql/expression_eval.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace idaa::sql {

namespace {

/// Three-valued logic truth value.
enum class Tri { kFalse, kTrue, kNull };

Tri ValueToTri(const Value& v) {
  if (v.is_null()) return Tri::kNull;
  if (v.is_boolean()) return v.AsBoolean() ? Tri::kTrue : Tri::kFalse;
  // Numeric non-zero is true (lenient, matches our CASE/predicate use).
  if (v.is_integer()) return v.AsInteger() != 0 ? Tri::kTrue : Tri::kFalse;
  return Tri::kTrue;
}

Result<Value> EvalArith(BinaryOp op, const Value& lhs, const Value& rhs) {
  // Integer-preserving arithmetic (DB2: INT op INT -> INT, incl. division).
  if (lhs.is_integer() && rhs.is_integer()) {
    int64_t a = lhs.AsInteger(), b = rhs.AsInteger();
    switch (op) {
      case BinaryOp::kAdd: return Value::Integer(a + b);
      case BinaryOp::kSub: return Value::Integer(a - b);
      case BinaryOp::kMul: return Value::Integer(a * b);
      case BinaryOp::kDiv:
        if (b == 0) return Status::InvalidArgument("division by zero");
        return Value::Integer(a / b);
      case BinaryOp::kMod:
        if (b == 0) return Status::InvalidArgument("division by zero");
        return Value::Integer(a % b);
      default:
        break;
    }
  }
  // DATE +/- integer days.
  if (lhs.is_date() && rhs.is_integer()) {
    if (op == BinaryOp::kAdd) {
      return Value::Date(lhs.AsDate() + static_cast<int32_t>(rhs.AsInteger()));
    }
    if (op == BinaryOp::kSub) {
      return Value::Date(lhs.AsDate() - static_cast<int32_t>(rhs.AsInteger()));
    }
  }
  if (lhs.is_date() && rhs.is_date() && op == BinaryOp::kSub) {
    return Value::Integer(static_cast<int64_t>(lhs.AsDate()) - rhs.AsDate());
  }
  IDAA_ASSIGN_OR_RETURN(double a, lhs.ToDouble());
  IDAA_ASSIGN_OR_RETURN(double b, rhs.ToDouble());
  switch (op) {
    case BinaryOp::kAdd: return Value::Double(a + b);
    case BinaryOp::kSub: return Value::Double(a - b);
    case BinaryOp::kMul: return Value::Double(a * b);
    case BinaryOp::kDiv:
      if (b == 0.0) return Status::InvalidArgument("division by zero");
      return Value::Double(a / b);
    case BinaryOp::kMod:
      if (b == 0.0) return Status::InvalidArgument("division by zero");
      return Value::Double(std::fmod(a, b));
    default:
      return Status::Internal("EvalArith called with non-arithmetic op");
  }
}

Result<Value> EvalComparison(BinaryOp op, const Value& lhs, const Value& rhs) {
  IDAA_ASSIGN_OR_RETURN(int cmp, lhs.Compare(rhs));
  bool out = false;
  switch (op) {
    case BinaryOp::kEq: out = cmp == 0; break;
    case BinaryOp::kNotEq: out = cmp != 0; break;
    case BinaryOp::kLt: out = cmp < 0; break;
    case BinaryOp::kLtEq: out = cmp <= 0; break;
    case BinaryOp::kGt: out = cmp > 0; break;
    case BinaryOp::kGtEq: out = cmp >= 0; break;
    default:
      return Status::Internal("EvalComparison called with non-comparison op");
  }
  return Value::Boolean(out);
}

Result<Value> EvalFunction(const BoundExpr& expr,
                           const std::vector<Value>& args) {
  const std::string& fn = expr.function_name;
  auto require_args = [&](size_t lo, size_t hi) -> Status {
    if (args.size() < lo || args.size() > hi) {
      return Status::SemanticError(fn + ": wrong argument count");
    }
    return Status::OK();
  };

  // NULL-tolerant functions first.
  if (fn == "COALESCE") {
    for (const Value& v : args) {
      if (!v.is_null()) return v;
    }
    return Value::Null();
  }
  if (fn == "NULLIF") {
    IDAA_RETURN_IF_ERROR(require_args(2, 2));
    if (args[0].is_null()) return Value::Null();
    if (args[1].is_null()) return args[0];
    IDAA_ASSIGN_OR_RETURN(int cmp, args[0].Compare(args[1]));
    return cmp == 0 ? Value::Null() : args[0];
  }

  // Everything else: NULL in -> NULL out.
  for (const Value& v : args) {
    if (v.is_null()) return Value::Null();
  }

  if (fn == "ABS") {
    IDAA_RETURN_IF_ERROR(require_args(1, 1));
    if (args[0].is_integer()) return Value::Integer(std::llabs(args[0].AsInteger()));
    IDAA_ASSIGN_OR_RETURN(double d, args[0].ToDouble());
    return Value::Double(std::fabs(d));
  }
  if (fn == "SIGN") {
    IDAA_RETURN_IF_ERROR(require_args(1, 1));
    IDAA_ASSIGN_OR_RETURN(double d, args[0].ToDouble());
    return Value::Integer(d > 0 ? 1 : (d < 0 ? -1 : 0));
  }
  if (fn == "SQRT") {
    IDAA_RETURN_IF_ERROR(require_args(1, 1));
    IDAA_ASSIGN_OR_RETURN(double d, args[0].ToDouble());
    if (d < 0) return Status::InvalidArgument("SQRT of negative value");
    return Value::Double(std::sqrt(d));
  }
  if (fn == "EXP") {
    IDAA_RETURN_IF_ERROR(require_args(1, 1));
    IDAA_ASSIGN_OR_RETURN(double d, args[0].ToDouble());
    return Value::Double(std::exp(d));
  }
  if (fn == "LN" || fn == "LOG") {
    IDAA_RETURN_IF_ERROR(require_args(1, 1));
    IDAA_ASSIGN_OR_RETURN(double d, args[0].ToDouble());
    if (d <= 0) return Status::InvalidArgument("LN of non-positive value");
    return Value::Double(std::log(d));
  }
  if (fn == "POWER" || fn == "POW") {
    IDAA_RETURN_IF_ERROR(require_args(2, 2));
    IDAA_ASSIGN_OR_RETURN(double a, args[0].ToDouble());
    IDAA_ASSIGN_OR_RETURN(double b, args[1].ToDouble());
    return Value::Double(std::pow(a, b));
  }
  if (fn == "FLOOR") {
    IDAA_RETURN_IF_ERROR(require_args(1, 1));
    if (args[0].is_integer()) return args[0];
    IDAA_ASSIGN_OR_RETURN(double d, args[0].ToDouble());
    return Value::Double(std::floor(d));
  }
  if (fn == "CEIL" || fn == "CEILING") {
    IDAA_RETURN_IF_ERROR(require_args(1, 1));
    if (args[0].is_integer()) return args[0];
    IDAA_ASSIGN_OR_RETURN(double d, args[0].ToDouble());
    return Value::Double(std::ceil(d));
  }
  if (fn == "ROUND") {
    IDAA_RETURN_IF_ERROR(require_args(1, 2));
    IDAA_ASSIGN_OR_RETURN(double d, args[0].ToDouble());
    double scale = 1.0;
    if (args.size() == 2) {
      IDAA_ASSIGN_OR_RETURN(double digits, args[1].ToDouble());
      scale = std::pow(10.0, digits);
    }
    double rounded = std::round(d * scale) / scale;
    if (args[0].is_integer() && args.size() == 1) {
      return Value::Integer(static_cast<int64_t>(rounded));
    }
    return Value::Double(rounded);
  }
  if (fn == "MOD") {
    IDAA_RETURN_IF_ERROR(require_args(2, 2));
    return EvalArith(BinaryOp::kMod, args[0], args[1]);
  }
  if (fn == "LEAST" || fn == "GREATEST") {
    if (args.empty()) return Status::SemanticError(fn + ": needs arguments");
    Value best = args[0];
    for (size_t i = 1; i < args.size(); ++i) {
      IDAA_ASSIGN_OR_RETURN(int cmp, args[i].Compare(best));
      if ((fn == "LEAST" && cmp < 0) || (fn == "GREATEST" && cmp > 0)) {
        best = args[i];
      }
    }
    return best;
  }
  if (fn == "UPPER" || fn == "UCASE") {
    IDAA_RETURN_IF_ERROR(require_args(1, 1));
    return Value::Varchar(ToUpper(args[0].ToString()));
  }
  if (fn == "LOWER" || fn == "LCASE") {
    IDAA_RETURN_IF_ERROR(require_args(1, 1));
    return Value::Varchar(ToLower(args[0].ToString()));
  }
  if (fn == "LENGTH") {
    IDAA_RETURN_IF_ERROR(require_args(1, 1));
    return Value::Integer(static_cast<int64_t>(args[0].ToString().size()));
  }
  if (fn == "TRIM") {
    IDAA_RETURN_IF_ERROR(require_args(1, 1));
    return Value::Varchar(Trim(args[0].ToString()));
  }
  if (fn == "SUBSTR" || fn == "SUBSTRING") {
    IDAA_RETURN_IF_ERROR(require_args(2, 3));
    std::string s = args[0].ToString();
    IDAA_ASSIGN_OR_RETURN(double startd, args[1].ToDouble());
    int64_t start = static_cast<int64_t>(startd);  // 1-based
    if (start < 1) start = 1;
    if (static_cast<size_t>(start) > s.size()) return Value::Varchar("");
    size_t from = static_cast<size_t>(start - 1);
    size_t len = s.size() - from;
    if (args.size() == 3) {
      IDAA_ASSIGN_OR_RETURN(double lend, args[2].ToDouble());
      if (lend < 0) return Status::InvalidArgument("SUBSTR: negative length");
      len = std::min(len, static_cast<size_t>(lend));
    }
    return Value::Varchar(s.substr(from, len));
  }
  if (fn == "CONCAT") {
    std::string out;
    for (const Value& v : args) out += v.ToString();
    return Value::Varchar(std::move(out));
  }
  if (fn == "REPLACE") {
    IDAA_RETURN_IF_ERROR(require_args(3, 3));
    std::string s = args[0].ToString();
    const std::string from = args[1].ToString();
    const std::string to = args[2].ToString();
    if (from.empty()) return Value::Varchar(std::move(s));
    std::string out;
    size_t pos = 0;
    while (true) {
      size_t hit = s.find(from, pos);
      if (hit == std::string::npos) {
        out += s.substr(pos);
        break;
      }
      out += s.substr(pos, hit - pos);
      out += to;
      pos = hit + from.size();
    }
    return Value::Varchar(std::move(out));
  }
  if (fn == "YEAR" || fn == "MONTH" || fn == "DAY") {
    IDAA_RETURN_IF_ERROR(require_args(1, 1));
    IDAA_ASSIGN_OR_RETURN(Value date, args[0].CastTo(DataType::kDate));
    std::string text = FormatDate(date.AsDate());  // YYYY-MM-DD
    if (fn == "YEAR") return Value::Integer(std::stoll(text.substr(0, 4)));
    if (fn == "MONTH") return Value::Integer(std::stoll(text.substr(5, 2)));
    return Value::Integer(std::stoll(text.substr(8, 2)));
  }
  return Status::SemanticError("unknown function: " + fn);
}

}  // namespace

Result<Value> EvalExpr(const BoundExpr& expr, const Row& row) {
  switch (expr.kind) {
    case BoundExprKind::kLiteral:
      return expr.literal;
    case BoundExprKind::kColumn:
    case BoundExprKind::kSlotRef:
      if (expr.index >= row.size()) {
        return Status::Internal(StrFormat("column index %zu out of range %zu",
                                          expr.index, row.size()));
      }
      return row[expr.index];
    case BoundExprKind::kUnary: {
      IDAA_ASSIGN_OR_RETURN(Value v, EvalExpr(*expr.children[0], row));
      if (expr.unary_op == UnaryOp::kNot) {
        Tri t = v.is_null() ? Tri::kNull : ValueToTri(v);
        if (t == Tri::kNull) return Value::Null();
        return Value::Boolean(t == Tri::kFalse);
      }
      if (v.is_null()) return Value::Null();
      if (v.is_integer()) return Value::Integer(-v.AsInteger());
      IDAA_ASSIGN_OR_RETURN(double d, v.ToDouble());
      return Value::Double(-d);
    }
    case BoundExprKind::kBinary: {
      if (expr.binary_op == BinaryOp::kAnd || expr.binary_op == BinaryOp::kOr) {
        IDAA_ASSIGN_OR_RETURN(Value lv, EvalExpr(*expr.children[0], row));
        Tri lt = ValueToTri(lv);
        // Short-circuit where 3VL allows.
        if (expr.binary_op == BinaryOp::kAnd && lt == Tri::kFalse) {
          return Value::Boolean(false);
        }
        if (expr.binary_op == BinaryOp::kOr && lt == Tri::kTrue) {
          return Value::Boolean(true);
        }
        IDAA_ASSIGN_OR_RETURN(Value rv, EvalExpr(*expr.children[1], row));
        Tri rt = ValueToTri(rv);
        if (expr.binary_op == BinaryOp::kAnd) {
          if (lt == Tri::kTrue && rt == Tri::kTrue) return Value::Boolean(true);
          if (lt == Tri::kFalse || rt == Tri::kFalse) return Value::Boolean(false);
          return Value::Null();
        }
        if (lt == Tri::kTrue || rt == Tri::kTrue) return Value::Boolean(true);
        if (lt == Tri::kFalse && rt == Tri::kFalse) return Value::Boolean(false);
        return Value::Null();
      }
      IDAA_ASSIGN_OR_RETURN(Value lv, EvalExpr(*expr.children[0], row));
      IDAA_ASSIGN_OR_RETURN(Value rv, EvalExpr(*expr.children[1], row));
      if (lv.is_null() || rv.is_null()) return Value::Null();
      switch (expr.binary_op) {
        case BinaryOp::kConcatOp:
          return Value::Varchar(lv.ToString() + rv.ToString());
        case BinaryOp::kEq:
        case BinaryOp::kNotEq:
        case BinaryOp::kLt:
        case BinaryOp::kLtEq:
        case BinaryOp::kGt:
        case BinaryOp::kGtEq:
          return EvalComparison(expr.binary_op, lv, rv);
        default:
          return EvalArith(expr.binary_op, lv, rv);
      }
    }
    case BoundExprKind::kFunction: {
      std::vector<Value> args;
      args.reserve(expr.children.size());
      for (const auto& child : expr.children) {
        IDAA_ASSIGN_OR_RETURN(Value v, EvalExpr(*child, row));
        args.push_back(std::move(v));
      }
      return EvalFunction(expr, args);
    }
    case BoundExprKind::kCase: {
      size_t pairs = (expr.children.size() - (expr.has_else ? 1 : 0)) / 2;
      for (size_t i = 0; i < pairs; ++i) {
        IDAA_ASSIGN_OR_RETURN(Value cond, EvalExpr(*expr.children[2 * i], row));
        if (ValueToTri(cond) == Tri::kTrue) {
          return EvalExpr(*expr.children[2 * i + 1], row);
        }
      }
      if (expr.has_else) return EvalExpr(*expr.children.back(), row);
      return Value::Null();
    }
    case BoundExprKind::kInList: {
      IDAA_ASSIGN_OR_RETURN(Value probe, EvalExpr(*expr.children[0], row));
      if (probe.is_null()) return Value::Null();
      bool saw_null = false;
      for (size_t i = 1; i < expr.children.size(); ++i) {
        IDAA_ASSIGN_OR_RETURN(Value item, EvalExpr(*expr.children[i], row));
        if (item.is_null()) {
          saw_null = true;
          continue;
        }
        IDAA_ASSIGN_OR_RETURN(int cmp, probe.Compare(item));
        if (cmp == 0) return Value::Boolean(!expr.negated);
      }
      if (saw_null) return Value::Null();
      return Value::Boolean(expr.negated);
    }
    case BoundExprKind::kBetween: {
      IDAA_ASSIGN_OR_RETURN(Value probe, EvalExpr(*expr.children[0], row));
      IDAA_ASSIGN_OR_RETURN(Value lo, EvalExpr(*expr.children[1], row));
      IDAA_ASSIGN_OR_RETURN(Value hi, EvalExpr(*expr.children[2], row));
      if (probe.is_null() || lo.is_null() || hi.is_null()) return Value::Null();
      IDAA_ASSIGN_OR_RETURN(int clo, probe.Compare(lo));
      IDAA_ASSIGN_OR_RETURN(int chi, probe.Compare(hi));
      bool in = clo >= 0 && chi <= 0;
      return Value::Boolean(expr.negated ? !in : in);
    }
    case BoundExprKind::kIsNull: {
      IDAA_ASSIGN_OR_RETURN(Value v, EvalExpr(*expr.children[0], row));
      bool is_null = v.is_null();
      return Value::Boolean(expr.negated ? !is_null : is_null);
    }
    case BoundExprKind::kLike: {
      IDAA_ASSIGN_OR_RETURN(Value text, EvalExpr(*expr.children[0], row));
      IDAA_ASSIGN_OR_RETURN(Value pattern, EvalExpr(*expr.children[1], row));
      if (text.is_null() || pattern.is_null()) return Value::Null();
      bool match = LikeMatch(text.ToString(), pattern.ToString());
      return Value::Boolean(expr.negated ? !match : match);
    }
    case BoundExprKind::kCast: {
      IDAA_ASSIGN_OR_RETURN(Value v, EvalExpr(*expr.children[0], row));
      return v.CastTo(expr.cast_type);
    }
  }
  return Status::Internal("unhandled bound expression kind");
}

Result<bool> EvalPredicate(const BoundExpr& expr, const Row& row) {
  IDAA_ASSIGN_OR_RETURN(Value v, EvalExpr(expr, row));
  return ValueToTri(v) == Tri::kTrue;
}

AggregateAccumulator::AggregateAccumulator(const BoundAggregate& agg)
    : func_(agg.func), distinct_(agg.distinct), result_type_(agg.result_type) {}

void AggregateAccumulator::Accumulate(const Value& v) {
  ++row_count_;
  if (v.is_null()) return;
  if (distinct_) {
    for (const Value& s : seen_) {
      if (s == v) return;
    }
    seen_.push_back(v);
  }
  ++non_null_count_;
  if (min_.is_null()) {
    min_ = v;
    max_ = v;
  } else {
    auto cmp_min = v.Compare(min_);
    if (cmp_min.ok() && *cmp_min < 0) min_ = v;
    auto cmp_max = v.Compare(max_);
    if (cmp_max.ok() && *cmp_max > 0) max_ = v;
  }
  if (v.is_integer()) {
    int_sum_ += v.AsInteger();
    sum_ += static_cast<double>(v.AsInteger());
    sum_sq_ += static_cast<double>(v.AsInteger()) * v.AsInteger();
  } else {
    auto d = v.ToDouble();
    if (d.ok()) {
      int_exact_ = false;
      sum_ += *d;
      sum_sq_ += *d * *d;
    }
  }
}

void AggregateAccumulator::AccumulateInt64(int64_t v) {
  ++row_count_;
  ++non_null_count_;
  if (min_.is_null()) {
    min_ = Value::Integer(v);
    max_ = Value::Integer(v);
  } else {
    // The batch path feeds one column, so min_/max_ are integers too and
    // Value::Compare's exact integer path applies.
    if (v < min_.AsInteger()) min_ = Value::Integer(v);
    if (v > max_.AsInteger()) max_ = Value::Integer(v);
  }
  int_sum_ += v;
  sum_ += static_cast<double>(v);
  sum_sq_ += static_cast<double>(v) * v;
}

void AggregateAccumulator::AccumulateDouble(double v) {
  ++row_count_;
  ++non_null_count_;
  if (min_.is_null()) {
    min_ = Value::Double(v);
    max_ = Value::Double(v);
  } else {
    // NaN fails both comparisons, exactly like Value::Compare's
    // three-way result of 0.
    if (v < min_.AsDouble()) min_ = Value::Double(v);
    if (v > max_.AsDouble()) max_ = Value::Double(v);
  }
  int_exact_ = false;
  sum_ += v;
  sum_sq_ += v * v;
}

void AggregateAccumulator::AccumulateInt64Run(int64_t v, uint64_t n) {
  if (n == 0) return;
  row_count_ += n;
  non_null_count_ += n;
  if (min_.is_null()) {
    min_ = Value::Integer(v);
    max_ = Value::Integer(v);
  } else {
    if (v < min_.AsInteger()) min_ = Value::Integer(v);
    if (v > max_.AsInteger()) max_ = Value::Integer(v);
  }
  // n wrapping adds == one wrapping multiply-add (exact mod 2^64).
  int_sum_ = static_cast<int64_t>(static_cast<uint64_t>(int_sum_) +
                                  static_cast<uint64_t>(v) * n);
  // Finalize never reads sum_/sum_sq_ for MIN/MAX/COUNT, nor for an
  // integer-exact SUM; everywhere else float addition is order-dependent,
  // so replay the adds to stay bit-identical with the unfolded path.
  bool needs_sum =
      func_ == AggFunc::kAvg || func_ == AggFunc::kStddev ||
      func_ == AggFunc::kVariance ||
      (func_ == AggFunc::kSum && result_type_ != DataType::kInteger);
  if (needs_sum) {
    double d = static_cast<double>(v);
    if (func_ == AggFunc::kStddev || func_ == AggFunc::kVariance) {
      double sq = d * d;
      for (uint64_t i = 0; i < n; ++i) {
        sum_ += d;
        sum_sq_ += sq;
      }
    } else {
      for (uint64_t i = 0; i < n; ++i) sum_ += d;
    }
  }
}

void AggregateAccumulator::AccumulateDoubleRun(double v, uint64_t n) {
  if (n == 0) return;
  row_count_ += n;
  non_null_count_ += n;
  if (min_.is_null()) {
    min_ = Value::Double(v);
    max_ = Value::Double(v);
  } else {
    if (v < min_.AsDouble()) min_ = Value::Double(v);
    if (v > max_.AsDouble()) max_ = Value::Double(v);
  }
  int_exact_ = false;
  bool needs_sum = func_ == AggFunc::kSum || func_ == AggFunc::kAvg ||
                   func_ == AggFunc::kStddev || func_ == AggFunc::kVariance;
  if (needs_sum) {
    if (func_ == AggFunc::kStddev || func_ == AggFunc::kVariance) {
      double sq = v * v;
      for (uint64_t i = 0; i < n; ++i) {
        sum_ += v;
        sum_sq_ += sq;
      }
    } else {
      for (uint64_t i = 0; i < n; ++i) sum_ += v;
    }
  }
}

Status AggregateAccumulator::Merge(const AggregateAccumulator& other) {
  if (distinct_ || other.distinct_) {
    return Status::NotSupported("DISTINCT aggregates cannot be merged");
  }
  row_count_ += other.row_count_;
  non_null_count_ += other.non_null_count_;
  sum_ += other.sum_;
  int_sum_ += other.int_sum_;
  int_exact_ = int_exact_ && other.int_exact_;
  sum_sq_ += other.sum_sq_;
  if (min_.is_null()) {
    min_ = other.min_;
    max_ = other.max_;
  } else if (!other.min_.is_null()) {
    auto cmp_min = other.min_.Compare(min_);
    if (cmp_min.ok() && *cmp_min < 0) min_ = other.min_;
    auto cmp_max = other.max_.Compare(max_);
    if (cmp_max.ok() && *cmp_max > 0) max_ = other.max_;
  }
  return Status::OK();
}

Value AggregateAccumulator::Finalize() const {
  switch (func_) {
    case AggFunc::kCountStar:
      return Value::Integer(static_cast<int64_t>(row_count_));
    case AggFunc::kCount:
      return Value::Integer(static_cast<int64_t>(non_null_count_));
    case AggFunc::kSum:
      if (non_null_count_ == 0) return Value::Null();
      if (int_exact_ && result_type_ == DataType::kInteger) {
        return Value::Integer(int_sum_);
      }
      return Value::Double(sum_);
    case AggFunc::kAvg:
      if (non_null_count_ == 0) return Value::Null();
      return Value::Double(sum_ / static_cast<double>(non_null_count_));
    case AggFunc::kMin:
      return min_;
    case AggFunc::kMax:
      return max_;
    case AggFunc::kVariance:
    case AggFunc::kStddev: {
      if (non_null_count_ == 0) return Value::Null();
      double n = static_cast<double>(non_null_count_);
      double mean = sum_ / n;
      double var = sum_sq_ / n - mean * mean;
      if (var < 0) var = 0;  // numeric noise
      return Value::Double(func_ == AggFunc::kVariance ? var : std::sqrt(var));
    }
  }
  return Value::Null();
}

}  // namespace idaa::sql
