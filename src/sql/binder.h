// Binder: resolves a parsed statement against a Catalog, producing bound
// (index-addressed, type-annotated) trees that both executors consume.

#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "common/row.h"
#include "common/schema.h"
#include "sql/ast.h"

namespace idaa::sql {

enum class BoundExprKind : uint8_t {
  kLiteral,
  kColumn,    ///< index into the input row (combined FROM layout)
  kSlotRef,   ///< index into the post-aggregation row [keys..., aggs...]
  kUnary,
  kBinary,
  kFunction,
  kCase,
  kInList,
  kBetween,
  kIsNull,
  kLike,
  kCast,
};

/// Bound expression node. Evaluated against a Row by EvalExpr()
/// (common to the DB2 volcano executor and the accelerator engine).
struct BoundExpr {
  BoundExprKind kind = BoundExprKind::kLiteral;
  Value literal;
  size_t index = 0;  ///< kColumn / kSlotRef
  UnaryOp unary_op = UnaryOp::kNeg;
  BinaryOp binary_op = BinaryOp::kAdd;
  std::string function_name;
  bool has_else = false;
  bool negated = false;
  DataType cast_type = DataType::kInteger;
  std::vector<std::unique_ptr<BoundExpr>> children;

  /// Best-effort inferred output type (drives output schemas).
  DataType result_type = DataType::kInteger;
  bool nullable = true;

  /// Canonical key for structural comparison (GROUP BY matching).
  std::string Key() const;

  std::unique_ptr<BoundExpr> Clone() const;
};

using BoundExprPtr = std::unique_ptr<BoundExpr>;

/// Aggregate functions supported by both engines.
enum class AggFunc : uint8_t {
  kCountStar,
  kCount,
  kSum,
  kAvg,
  kMin,
  kMax,
  kStddev,
  kVariance,
};

struct BoundAggregate {
  AggFunc func = AggFunc::kCountStar;
  BoundExprPtr arg;  ///< null for COUNT(*)
  bool distinct = false;
  DataType result_type = DataType::kInteger;
};

/// One FROM-clause table after binding.
struct BoundTable {
  const TableInfo* info = nullptr;  ///< catalog entry (stable pointer)
  std::string effective_name;       ///< alias or table name (normalized upper)
  size_t offset = 0;                ///< column offset in the combined layout
  JoinType join_type = JoinType::kInner;  ///< how it joins (base table: inner)
  BoundExprPtr join_on;             ///< ON predicate, combined layout
  /// Conjuncts of WHERE referencing only this table, pushed into the scan
  /// (what the Netezza FPGA stage would evaluate). Null if none.
  BoundExprPtr scan_predicate;
};

struct BoundOrderBy {
  BoundExprPtr expr;  ///< post-agg layout when has_aggregation, else combined
  bool ascending = true;
};

/// Fully bound SELECT.
struct BoundSelect {
  std::vector<BoundTable> tables;  ///< empty for table-less SELECT
  Schema combined_schema;          ///< concatenation of all table schemas
  BoundExprPtr where;              ///< residual predicate (combined layout)

  bool has_aggregation = false;
  std::vector<BoundExprPtr> group_keys;     ///< combined layout
  std::vector<BoundAggregate> aggregates;

  /// Output expressions. With aggregation they address the post-agg row
  /// [group keys..., aggregate results...]; otherwise the combined row.
  std::vector<BoundExprPtr> select_exprs;
  Schema output_schema;

  BoundExprPtr having;  ///< post-agg layout
  std::vector<BoundOrderBy> order_by;
  std::optional<int64_t> limit;
  bool distinct = false;
};

/// Bound INSERT: rows are pre-evaluated (literal expressions only) or the
/// bound source select is attached.
struct BoundInsert {
  const TableInfo* table = nullptr;
  /// Map from position in the incoming row to column index in the table
  /// schema (identity when no column list was given).
  std::vector<size_t> column_mapping;
  std::vector<Row> values_rows;           ///< already coerced to schema types
  std::unique_ptr<BoundSelect> select;    ///< or a source query
};

struct BoundUpdate {
  const TableInfo* table = nullptr;
  std::vector<std::pair<size_t, BoundExprPtr>> assignments;  ///< col idx, expr
  BoundExprPtr where;  ///< over the table's row layout; null = all rows
};

struct BoundDelete {
  const TableInfo* table = nullptr;
  BoundExprPtr where;
};

/// Binds statements against a catalog.
class Binder {
 public:
  explicit Binder(const Catalog& catalog) : catalog_(catalog) {}

  Result<BoundSelect> BindSelect(const SelectStatement& stmt) const;
  Result<BoundInsert> BindInsert(const InsertStatement& stmt) const;
  Result<BoundUpdate> BindUpdate(const UpdateStatement& stmt) const;
  Result<BoundDelete> BindDelete(const DeleteStatement& stmt) const;

  /// Bind a scalar expression against a single table's schema (used for
  /// UPDATE/DELETE predicates and by the analytics operators).
  Result<BoundExprPtr> BindScalar(const Expr& expr, const Schema& schema,
                                  const std::string& table_name) const;

 private:
  const Catalog& catalog_;
};

/// Names of the tables referenced by a select statement (FROM + JOINs),
/// resolved through the parser only (no catalog access).
std::vector<std::string> ReferencedTables(const SelectStatement& stmt);

/// Names of tables referenced by any statement kind (empty for DDL/GRANT).
std::vector<std::string> ReferencedTables(const Statement& stmt);

const char* AggFuncToString(AggFunc func);

}  // namespace idaa::sql
