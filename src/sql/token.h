// SQL token model.

#pragma once

#include <cstdint>
#include <string>

namespace idaa::sql {

enum class TokenType : uint8_t {
  kEof = 0,
  kIdentifier,   ///< unquoted or "quoted" identifier
  kKeyword,      ///< reserved word, text upper-cased
  kIntegerLit,
  kDoubleLit,
  kStringLit,    ///< 'single quoted', text unescaped
  // punctuation / operators
  kComma,
  kLParen,
  kRParen,
  kStar,
  kPlus,
  kMinus,
  kSlash,
  kPercent,
  kEq,       ///< =
  kNotEq,    ///< <> or !=
  kLt,
  kLtEq,
  kGt,
  kGtEq,
  kDot,
  kSemicolon,
  kConcat,   ///< ||
  kParam,    ///< ? parameter marker (prepared statements)
};

/// One lexed token with its source position (for error messages).
struct Token {
  TokenType type = TokenType::kEof;
  std::string text;    ///< keyword: upper-cased; string lit: unescaped body
  int64_t int_value = 0;
  double double_value = 0.0;
  size_t position = 0;  ///< byte offset into the statement

  bool IsKeyword(const char* kw) const;
};

const char* TokenTypeToString(TokenType type);

/// True if `word` (upper-cased) is a reserved keyword.
bool IsReservedKeyword(const std::string& upper_word);

}  // namespace idaa::sql
