// A1 — Accelerator design ablations: zone maps on/off, slice count, and
// the slice-side aggregation pushdown — quantifying which piece of the
// simulated appliance buys which win. (On a single-core host, slice count
// exercises partitioning overhead rather than thread speedup.)

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace idaa::bench {
namespace {

double TimeSelect(IdaaSystem& system, const std::string& sql, int reps) {
  system.SetAccelerationMode(federation::AccelerationMode::kEligible);
  Must(system, sql);
  WallTimer timer;
  for (int i = 0; i < reps; ++i) Must(system, sql);
  return timer.Millis() / reps;
}

void PrintZoneMapTable() {
  PrintHeader("A1a: zone maps",
              "Selective scans should skip almost every zone; full scans "
              "are unaffected.");
  std::printf("%-10s %10s | %14s %14s %14s %10s\n", "zone maps", "rows",
              "selective ms", "full-agg ms", "rows skipped", "skip %");
  for (bool zone_maps : {false, true}) {
    SystemOptions options;
    options.accelerator.enable_zone_maps = zone_maps;
    IdaaSystem system(options);
    SeedOrders(system, 200000, /*accelerate=*/true);
    MetricsDelta delta(system.metrics());
    double selective = TimeSelect(
        system, "SELECT COUNT(*) FROM orders WHERE id BETWEEN 777 AND 888",
        10);
    uint64_t skipped = delta.Delta(metric::kAccelRowsSkippedZoneMap);
    uint64_t scanned = delta.Delta(metric::kAccelRowsScanned);
    double full = TimeSelect(system, "SELECT SUM(amount) FROM orders", 5);
    std::printf("%-10s %10d | %14.3f %14.3f %14llu %9.1f%%\n",
                zone_maps ? "on" : "off", 200000, selective, full,
                (unsigned long long)skipped,
                100.0 * skipped / std::max<uint64_t>(1, skipped + scanned));
  }
}

void PrintSliceTable() {
  PrintHeader("A1b: data slice count",
              "Hash distribution spreads rows; with one core the benefit "
              "is layout, not threads.");
  std::printf("%8s | %14s %14s\n", "slices", "full-agg ms", "group-by ms");
  for (size_t slices : {1u, 2u, 4u, 8u, 16u}) {
    SystemOptions options;
    options.accelerator.num_slices = slices;
    options.accelerator.num_threads = slices;
    IdaaSystem system(options);
    SeedOrders(system, 200000, /*accelerate=*/true);
    double agg = TimeSelect(system, "SELECT SUM(amount), COUNT(*) FROM orders",
                            5);
    double group = TimeSelect(
        system, "SELECT region, AVG(amount) FROM orders GROUP BY region", 5);
    std::printf("%8zu | %14.3f %14.3f\n", slices, agg, group);
  }
}

void PrintCompressionTable() {
  PrintHeader("A1c: dictionary encoding footprint",
              "VARCHAR columns store 4-byte codes + a dictionary, so "
              "low-cardinality string\ncolumns compress heavily; "
              "numeric-dominated tables are unaffected.");
  std::printf("%-22s | %14s %14s %8s\n", "table", "row bytes",
              "columnar bytes", "ratio");
  // String-heavy, low-cardinality: user agents / event names.
  {
    IdaaSystem system;
    Must(system, "CREATE TABLE events (id INT NOT NULL, agent VARCHAR, "
                 "event VARCHAR) IN ACCELERATOR");
    static const char* kAgents[] = {
        "Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36 Chrome/47",
        "Mozilla/5.0 (Windows NT 10.0; WOW64; rv:43.0) Gecko Firefox/43",
        "Mozilla/5.0 (Macintosh; Intel Mac OS X 10_11) Safari/601.3.9"};
    static const char* kEvents[] = {"page_view", "click", "purchase"};
    Schema schema({{"ID", DataType::kInteger, false},
                   {"AGENT", DataType::kVarchar, true},
                   {"EVENT", DataType::kVarchar, true}});
    Rng rng(23);
    loader::GeneratorSource source(schema, 50000, [&rng](size_t i) {
      return Row{Value::Integer(static_cast<int64_t>(i)),
                 Value::Varchar(kAgents[rng.Uniform(0, 2)]),
                 Value::Varchar(kEvents[rng.Uniform(0, 2)])};
    });
    if (!system.loader().Load("events", &source).ok()) std::exit(1);
    auto table = system.accelerator().GetTable("events");
    auto rs = system.Query("SELECT * FROM events");
    std::printf("%-22s | %14zu %14zu %7.2fx\n", "events (string-heavy)",
                rs->ByteSize(), (*table)->ByteSize(),
                static_cast<double>(rs->ByteSize()) / (*table)->ByteSize());
  }
  // Numeric-dominated: orders.
  {
    IdaaSystem system;
    SeedOrders(system, 50000, /*accelerate=*/true);
    auto table = system.accelerator().GetTable("orders");
    auto rs = system.Query("SELECT * FROM orders");
    std::printf("%-22s | %14zu %14zu %7.2fx\n", "orders (numeric-heavy)",
                rs->ByteSize(), (*table)->ByteSize(),
                static_cast<double>(rs->ByteSize()) / (*table)->ByteSize());
  }
}

void BM_SelectiveScanZoneMaps(benchmark::State& state) {
  SystemOptions options;
  options.accelerator.enable_zone_maps = state.range(0) != 0;
  static IdaaSystem* cached_on = nullptr;
  static IdaaSystem* cached_off = nullptr;
  IdaaSystem*& system = state.range(0) ? cached_on : cached_off;
  if (system == nullptr) {
    system = new IdaaSystem(options);
    SeedOrders(*system, 100000, true);
  }
  for (auto _ : state) {
    auto r = system->Execute(
        "SELECT COUNT(*) FROM orders WHERE id BETWEEN 500 AND 600",
        RawExecOptions());
    if (!r.ok()) state.SkipWithError("query failed");
  }
  state.SetLabel(state.range(0) ? "zone maps on" : "zone maps off");
}

BENCHMARK(BM_SelectiveScanZoneMaps)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace idaa::bench

int main(int argc, char** argv) {
  idaa::bench::PrintZoneMapTable();
  idaa::bench::PrintSliceTable();
  idaa::bench::PrintCompressionTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
