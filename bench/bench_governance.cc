// E6 — Governance overhead: the paper requires privilege checks and
// auditing to stay on DB2 for every delegated statement. This bench
// quantifies that front-door cost: query latency for the admin (fast-path
// check) vs a granted user (hash lookups + audit append), across query
// shapes, plus the raw cost per authorization decision.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace idaa::bench {
namespace {

double TimeQueries(IdaaSystem& system, const std::string& sql, int reps) {
  Must(system, sql);  // warm
  WallTimer timer;
  for (int i = 0; i < reps; ++i) Must(system, sql);
  return timer.Millis() / reps;
}

void PrintTable() {
  PrintHeader("E6: governance (authorization + audit) overhead",
              "Claim: keeping data governance in DB2 adds negligible cost "
              "to delegated statements.");
  IdaaSystem system;
  SeedOrders(system, 50000, /*accelerate=*/true);
  Must(system, "GRANT SELECT ON orders TO analyst");

  struct QueryDef {
    const char* name;
    const char* sql;
    int reps;
  } queries[] = {
      {"point lookup", "SELECT amount FROM orders WHERE id = 5", 200},
      {"filter scan", "SELECT COUNT(*) FROM orders WHERE amount > 900", 50},
      {"group by", "SELECT region, SUM(amount) FROM orders GROUP BY region",
       20},
  };

  std::printf("%-14s | %12s %14s %10s\n", "query", "admin ms",
              "analyst ms", "overhead");
  for (const auto& q : queries) {
    system.SetUser(governance::AuthorizationManager::kAdmin);
    double admin = TimeQueries(system, q.sql, q.reps);
    system.SetUser("analyst");
    double analyst = TimeQueries(system, q.sql, q.reps);
    std::printf("%-14s | %12.4f %14.4f %9.1f%%\n", q.name, admin, analyst,
                (analyst / admin - 1.0) * 100.0);
  }
  system.SetUser(governance::AuthorizationManager::kAdmin);

  // Raw per-decision cost.
  governance::AuthorizationManager auth;
  auth.CreateUser("bob");
  (void)auth.Grant("bob", "T", governance::Privilege::kSelect);
  WallTimer timer;
  const int kChecks = 200000;
  for (int i = 0; i < kChecks; ++i) {
    (void)auth.Check("bob", "T", governance::Privilege::kSelect);
  }
  std::printf("\nraw authorization check: %.0f ns/decision\n",
              timer.Millis() * 1e6 / kChecks);
  std::printf("audit entries recorded during run: %zu\n",
              system.audit().Size());
}

void BM_AuthorizationCheck(benchmark::State& state) {
  governance::AuthorizationManager auth;
  auth.CreateUser("bob");
  (void)auth.Grant("bob", "T", governance::Privilege::kSelect);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        auth.Check("bob", "T", governance::Privilege::kSelect));
  }
}

void BM_AuditRecord(benchmark::State& state) {
  governance::AuditLog audit;
  for (auto _ : state) {
    audit.Record("bob", "SELECT", "T", true);
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_AuthorizationCheck);
BENCHMARK(BM_AuditRecord);

}  // namespace
}  // namespace idaa::bench

int main(int argc, char** argv) {
  idaa::bench::PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
