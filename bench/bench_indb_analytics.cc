// E5 — In-database analytics: an SPSS-style prepare+model pipeline run
// (a) in-accelerator via the analytics framework (data never leaves the
// accelerator; only the model summary is returned), vs.
// (b) client-side: every stage's input is extracted to the "client"
// through the DB2 boundary, transformed there, and re-inserted.

#include <benchmark/benchmark.h>

#include "analytics/kmeans.h"
#include "bench_util.h"

namespace idaa::bench {
namespace {

void SeedFeatures(IdaaSystem& system, size_t rows) {
  Must(system, "CREATE TABLE feats (id INT NOT NULL, x DOUBLE, y DOUBLE, "
               "z DOUBLE)");
  Schema schema({{"ID", DataType::kInteger, false},
                 {"X", DataType::kDouble, true},
                 {"Y", DataType::kDouble, true},
                 {"Z", DataType::kDouble, true}});
  Rng rng(17);
  loader::GeneratorSource source(schema, rows, [&rng](size_t i) {
    double base = (i % 3) * 10.0;
    return Row{Value::Integer(static_cast<int64_t>(i)),
               Value::Double(rng.Gaussian(base, 1)),
               Value::Double(rng.Gaussian(base, 1)),
               Value::Double(rng.Gaussian(base, 1))};
  });
  loader::LoadOptions options;
  options.batch_size = 8192;
  auto r = system.loader().Load("feats", &source, options);
  if (!r.ok()) std::exit(1);
  Must(system, "CALL SYSPROC.ACCEL_ADD_TABLES('feats')");
}

struct AnalyticsStats {
  double millis = 0;
  uint64_t boundary_bytes = 0;
};

/// In-accelerator: NORMALIZE then KMEANS via CALL; only summaries return.
/// `batch_path` selects the morsel-parallel batch operators (true) or the
/// serial row-at-a-time fallback (false) — results are identical either
/// way, so the delta isolates the parallel engine's win.
AnalyticsStats RunInDatabase(IdaaSystem& system, bool batch_path = true) {
  SetBatchPath(system, batch_path);
  MetricsDelta delta(system.metrics());
  WallTimer timer;
  Must(system, "CALL IDAA.NORMALIZE('input=feats', 'output=feats_n', "
               "'columns=x,y,z')");
  Must(system, "CALL IDAA.KMEANS('input=feats_n', 'output=feats_k', "
               "'columns=x,y,z', 'k=3', 'seed=5')");
  AnalyticsStats stats;
  stats.millis = timer.Millis();
  stats.boundary_bytes = delta.Delta(metric::kFederationBytesToAccel) +
                         delta.Delta(metric::kFederationBytesFromAccel);
  SetBatchPath(system, true);
  return stats;
}

/// Client-side: SELECT the full table out (crossing the boundary),
/// normalize + cluster in client memory, write assignments back.
AnalyticsStats RunClientSide(IdaaSystem& system) {
  MetricsDelta delta(system.metrics());
  WallTimer timer;

  auto rs = system.Query("SELECT x, y, z FROM feats");
  if (!rs.ok()) std::exit(1);
  // Client-side normalize.
  std::vector<std::vector<double>> points;
  points.reserve(rs->NumRows());
  double mean[3] = {0, 0, 0}, m2[3] = {0, 0, 0};
  for (const Row& row : rs->rows()) {
    std::vector<double> p(3);
    for (int d = 0; d < 3; ++d) {
      p[d] = row[d].is_null() ? 0.0 : row[d].AsDouble();
      mean[d] += p[d];
      m2[d] += p[d] * p[d];
    }
    points.push_back(std::move(p));
  }
  double n = static_cast<double>(points.size());
  for (auto& p : points) {
    for (int d = 0; d < 3; ++d) {
      double mu = mean[d] / n;
      double sd = std::sqrt(std::max(1e-12, m2[d] / n - mu * mu));
      p[d] = (p[d] - mu) / sd;
    }
  }
  analytics::KMeansResult km = analytics::RunKMeans(points, 3, 25, 5);

  // Write the assignments back through the boundary.
  Must(system, "CREATE TABLE client_k (x DOUBLE, y DOUBLE, z DOUBLE, "
               "cluster INT) IN ACCELERATOR");
  std::string insert;
  size_t pending = 0;
  for (size_t i = 0; i < points.size(); ++i) {
    if (pending == 0) insert = "INSERT INTO client_k VALUES ";
    insert += StrFormat("%s(%.6f, %.6f, %.6f, %zu)", pending ? ", " : "",
                        points[i][0], points[i][1], points[i][2],
                        km.assignments[i]);
    if (++pending == 500 || i + 1 == points.size()) {
      Must(system, insert);
      pending = 0;
    }
  }
  AnalyticsStats stats;
  stats.millis = timer.Millis();
  stats.boundary_bytes = delta.Delta(metric::kFederationBytesToAccel) +
                         delta.Delta(metric::kFederationBytesFromAccel);
  return stats;
}

void PrintTable() {
  PrintHeader("E5: in-database analytics vs client-side round trips",
              "Claim: executing prep + mining on the accelerator avoids "
              "extracting the\nworking set to the client and re-ingesting "
              "derived data; the morsel-\nparallel batch operators beat the "
              "serial row path on the same CALLs.");
  std::printf("%8s | %10s %10s %8s | %12s %16s | %9s\n", "rows", "par ms",
              "serial ms", "speedup", "client ms", "client bytes",
              "byte red.");
  BenchJson json("indb_analytics");
  for (size_t rows : {5000u, 20000u, 80000u}) {
    IdaaSystem system;
    SeedFeatures(system, rows);
    AnalyticsStats serial = RunInDatabase(system, /*batch_path=*/false);
    AnalyticsStats indb = RunInDatabase(system, /*batch_path=*/true);
    AnalyticsStats client = RunClientSide(system);
    std::printf("%8zu | %10.1f %10.1f %7.1fx | %12.1f %16llu | %8.1fx\n",
                rows, indb.millis, serial.millis,
                serial.millis / std::max(1e-3, indb.millis), client.millis,
                (unsigned long long)client.boundary_bytes,
                client.boundary_bytes /
                    std::max<double>(1.0, indb.boundary_bytes));
    json.Add("normalize+kmeans @" + std::to_string(rows), rows,
             client.millis, indb.millis, serial.millis);
  }
  json.Write();
}

void BM_InDbPipeline(benchmark::State& state) {
  for (auto _ : state) {
    IdaaSystem system;
    SeedFeatures(system, static_cast<size_t>(state.range(0)));
    AnalyticsStats stats = RunInDatabase(system);
    state.counters["boundary_bytes"] =
        static_cast<double>(stats.boundary_bytes);
  }
}

BENCHMARK(BM_InDbPipeline)->Arg(20000)->Unit(benchmark::kMillisecond)
    ->Iterations(2);

}  // namespace
}  // namespace idaa::bench

int main(int argc, char** argv) {
  idaa::bench::PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
