// E7 — Star-schema BI workload: a fact table with two dimensions, six
// representative reporting queries, both engines. This widens E2's claim
// ("extremely fast execution of complex, analytical queries") to the
// dimensional query shapes the paper's reporting use case implies.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace idaa::bench {
namespace {

void SeedStarSchema(IdaaSystem& system, size_t fact_rows) {
  // Dimensions.
  Must(system, "CREATE TABLE dim_date (dkey INT NOT NULL, month INT, "
               "quarter INT, year INT)");
  for (int d = 0; d < 365; ++d) {
    Must(system, StrFormat("INSERT INTO dim_date VALUES (%d, %d, %d, 2016)",
                           d, d / 31 + 1, d / 92 + 1));
  }
  Must(system, "CREATE TABLE dim_product (pkey INT NOT NULL, "
               "category VARCHAR, brand VARCHAR)");
  static const char* kCategories[] = {"FOOD", "TECH", "HOME", "TOYS"};
  for (int p = 0; p < 200; ++p) {
    Must(system,
         StrFormat("INSERT INTO dim_product VALUES (%d, '%s', 'brand_%d')", p,
                   kCategories[p % 4], p % 25));
  }
  // Fact table, bulk-loaded.
  Must(system, "CREATE TABLE fact_sales (id INT NOT NULL, dkey INT, "
               "pkey INT, qty INT, revenue DOUBLE)");
  Schema schema({{"ID", DataType::kInteger, false},
                 {"DKEY", DataType::kInteger, true},
                 {"PKEY", DataType::kInteger, true},
                 {"QTY", DataType::kInteger, true},
                 {"REVENUE", DataType::kDouble, true}});
  Rng rng(2016);
  loader::GeneratorSource source(schema, fact_rows, [&rng](size_t i) {
    return Row{Value::Integer(static_cast<int64_t>(i)),
               Value::Integer(rng.Uniform(0, 364)),
               Value::Integer(rng.Uniform(0, 199)),
               Value::Integer(rng.Uniform(1, 20)),
               Value::Double(rng.UniformDouble(1, 500))};
  });
  loader::LoadOptions options;
  options.batch_size = 8192;
  if (!system.loader().Load("fact_sales", &source, options).ok()) {
    std::exit(1);
  }
  for (const char* t : {"dim_date", "dim_product", "fact_sales"}) {
    Must(system, std::string("CALL SYSPROC.ACCEL_ADD_TABLES('") + t + "')");
  }
}

const struct {
  const char* name;
  const char* sql;
} kQueries[] = {
    {"S1 revenue by quarter",
     "SELECT d.quarter, SUM(f.revenue) FROM fact_sales f "
     "JOIN dim_date d ON f.dkey = d.dkey GROUP BY d.quarter"},
    {"S2 category mix",
     "SELECT p.category, COUNT(*), SUM(f.revenue) FROM fact_sales f "
     "JOIN dim_product p ON f.pkey = p.pkey GROUP BY p.category"},
    {"S3 two-dim drilldown",
     "SELECT d.month, p.category, SUM(f.qty) FROM fact_sales f "
     "JOIN dim_date d ON f.dkey = d.dkey "
     "JOIN dim_product p ON f.pkey = p.pkey "
     "WHERE d.quarter = 1 GROUP BY d.month, p.category"},
    {"S4 top brands",
     "SELECT p.brand, SUM(f.revenue) AS rev FROM fact_sales f "
     "JOIN dim_product p ON f.pkey = p.pkey GROUP BY p.brand "
     "ORDER BY rev DESC LIMIT 10"},
    {"S5 selective window",
     "SELECT COUNT(*), AVG(f.revenue) FROM fact_sales f "
     "WHERE f.dkey BETWEEN 100 AND 110"},
    {"S6 big-ticket orders",
     "SELECT f.id, f.revenue FROM fact_sales f "
     "WHERE f.revenue > 495 ORDER BY f.revenue DESC LIMIT 20"},
};

double TimeQuery(IdaaSystem& system, const char* sql,
                 federation::AccelerationMode mode, int reps) {
  system.SetAccelerationMode(mode);
  Must(system, sql);
  // Best-of-three groups: the single shared CPU makes any one group
  // vulnerable to a scheduling hiccup inflating the mean; the fastest
  // group is the least-disturbed measurement of the same work.
  double best = 0;
  for (int group = 0; group < 3; ++group) {
    WallTimer timer;
    for (int i = 0; i < reps; ++i) Must(system, sql);
    double ms = timer.Millis() / reps;
    if (group == 0 || ms < best) best = ms;
  }
  return best;
}

void PrintTable() {
  PrintHeader("E7: star-schema reporting workload",
              "Dimensional BI queries (the paper's read-only reporting "
              "baseline use case),\nDB2 row engine vs accelerator.");
  BenchJson json("star_schema");
  for (size_t rows : {50000u, 200000u}) {
    IdaaSystem system;
    SeedStarSchema(system, rows);
    std::printf("fact rows = %zu\n", rows);
    std::printf("  %-24s %12s %12s %12s %9s %9s\n", "query", "db2 ms",
                "accel ms", "row-path ms", "vs db2", "vs row");
    for (const auto& q : kQueries) {
      double db2 =
          TimeQuery(system, q.sql, federation::AccelerationMode::kNone, 3);
      // The accelerator paths are sub-millisecond at these scales; more
      // reps keep the batch-vs-row ratio from jittering with the host.
      double accel = TimeQuery(system, q.sql,
                               federation::AccelerationMode::kEligible, 15);
      SetBatchPath(system, false);
      double row_path = TimeQuery(
          system, q.sql, federation::AccelerationMode::kEligible, 15);
      SetBatchPath(system, true);
      std::printf("  %-24s %12.3f %12.3f %12.3f %8.2fx %8.2fx\n", q.name, db2,
                  accel, row_path, db2 / accel, row_path / accel);
      json.Add(std::string(q.name) + " @" + std::to_string(rows), rows, db2,
               accel, row_path);
    }
    std::printf("\n");
  }
  json.Write();
}

void BM_StarQuery(benchmark::State& state) {
  static IdaaSystem* system = [] {
    auto* s = new IdaaSystem();
    SeedStarSchema(*s, 100000);
    return s;
  }();
  const auto& q = kQueries[state.range(0)];
  system->SetAccelerationMode(state.range(1)
                                  ? federation::AccelerationMode::kEligible
                                  : federation::AccelerationMode::kNone);
  for (auto _ : state) {
    auto r = system->Execute(q.sql, RawExecOptions());
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
  }
  state.SetLabel(std::string(q.name) + (state.range(1) ? " accel" : " db2"));
}

BENCHMARK(BM_StarQuery)->Args({0, 0})->Args({0, 1})->Args({2, 0})->Args({2, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace idaa::bench

int main(int argc, char** argv) {
  idaa::bench::PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
