// E8 — Failover and retry overhead: the fault-tolerance layer promises
// that transient boundary faults are absorbed (retry/backoff) or hidden
// (failback to DB2 under ENABLE WITH FAILBACK) without user-visible
// errors. This bench quantifies the latency cost: p50/p99 per query at
// 0% / 1% / 10% injected channel-fault rates, plus the fixed overhead of
// the disarmed injector and the retry wrapper on the fault-free path.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "bench_util.h"
#include "common/fault_injector.h"
#include "common/retry.h"

namespace idaa::bench {
namespace {

constexpr const char* kQuery =
    "SELECT region, SUM(amount), COUNT(*) FROM orders GROUP BY region";

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  std::sort(sorted.begin(), sorted.end());
  size_t idx = static_cast<size_t>(p * (sorted.size() - 1));
  return sorted[idx];
}

struct RatePoint {
  double fault_rate;
  double p50_ms;
  double p99_ms;
  uint64_t faults_injected;
  uint64_t retries;
  uint64_t failbacks;
  uint64_t errors;
};

void WriteJson(const std::vector<RatePoint>& points) {
  const char* dir = std::getenv("IDAA_BENCH_JSON_DIR");
  std::string path =
      (dir != nullptr && *dir != '\0' ? std::string(dir) + "/"
                                      : std::string()) +
      "BENCH_failover.json";
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::cerr << "cannot write " << path << "\n";
    return;
  }
  std::fprintf(f, "{\n  \"experiment\": \"failover\",\n  \"entries\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const RatePoint& e = points[i];
    std::fprintf(f,
                 "    {\"fault_rate\": %.2f, \"p50_ms\": %.3f, "
                 "\"p99_ms\": %.3f, \"faults_injected\": %llu, "
                 "\"retries\": %llu, \"failbacks\": %llu, "
                 "\"user_visible_errors\": %llu}%s\n",
                 e.fault_rate, e.p50_ms, e.p99_ms,
                 static_cast<unsigned long long>(e.faults_injected),
                 static_cast<unsigned long long>(e.retries),
                 static_cast<unsigned long long>(e.failbacks),
                 static_cast<unsigned long long>(e.errors),
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::cout << "wrote " << path << "\n";
}

void PrintTable() {
  PrintHeader("E8: failover latency under injected channel faults",
              "Claim: retry/backoff and ENABLE WITH FAILBACK absorb "
              "transient boundary faults with zero user-visible errors; "
              "the p99 cost stays bounded.");

  IdaaSystem system;
  SeedOrders(system, 20000, /*accelerate=*/true);
  Must(system, "SET CURRENT QUERY ACCELERATION = ENABLE WITH FAILBACK");
  // Tight backoff so the table measures the mechanism, not the sleeps.
  RetryPolicy policy;
  policy.max_attempts = 6;
  policy.initial_backoff_us = 50;
  policy.max_backoff_us = 2000;
  system.federation().set_retry_policy(policy);

  constexpr int kReps = 80;
  const double kRates[] = {0.0, 0.01, 0.10};
  std::vector<RatePoint> points;

  std::printf("%10s | %10s %10s %8s %8s %9s %7s\n", "fault rate", "p50 ms",
              "p99 ms", "faults", "retries", "failbacks", "errors");
  for (double rate : kRates) {
    system.fault_injector().Reset();
    FaultSpec spec;
    spec.probability = rate;
    system.fault_injector().ArmChannel(spec);

    uint64_t retries0 = system.metrics().Get(metric::kFederationRetries);
    uint64_t failbacks0 = system.metrics().Get(metric::kFederationFailbacks);
    Must(system, kQuery);  // warm
    std::vector<double> latencies;
    uint64_t errors = 0;
    for (int i = 0; i < kReps; ++i) {
      WallTimer timer;
      auto r = system.Execute(kQuery, RawExecOptions());
      latencies.push_back(timer.Millis());
      if (!r.ok()) ++errors;
    }
    RatePoint point;
    point.fault_rate = rate;
    point.p50_ms = Percentile(latencies, 0.50);
    point.p99_ms = Percentile(latencies, 0.99);
    point.faults_injected = system.fault_injector().TotalInjected();
    point.retries = system.metrics().Get(metric::kFederationRetries) -
                    retries0;
    point.failbacks = system.metrics().Get(metric::kFederationFailbacks) -
                      failbacks0;
    point.errors = errors;
    points.push_back(point);
    std::printf("%9.0f%% | %10.3f %10.3f %8llu %8llu %9llu %7llu\n",
                rate * 100.0, point.p50_ms, point.p99_ms,
                static_cast<unsigned long long>(point.faults_injected),
                static_cast<unsigned long long>(point.retries),
                static_cast<unsigned long long>(point.failbacks),
                static_cast<unsigned long long>(point.errors));
  }
  system.fault_injector().Reset();
  WriteJson(points);
}

// Fixed cost of the retry wrapper when nothing fails.
void BM_RetryWrapperFaultFree(benchmark::State& state) {
  RetryPolicy policy;
  for (auto _ : state) {
    RetryOutcome outcome =
        RetryWithBackoff(policy, {}, [] { return Status::OK(); });
    benchmark::DoNotOptimize(outcome.retries);
  }
}

// Per-crossing cost of a wired but disarmed injector.
void BM_FaultInjectorDisarmed(benchmark::State& state) {
  FaultInjector injector(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(injector.MaybeFail("channel.statement").ok());
  }
}

BENCHMARK(BM_RetryWrapperFaultFree);
BENCHMARK(BM_FaultInjectorDisarmed);

}  // namespace
}  // namespace idaa::bench

int main(int argc, char** argv) {
  idaa::bench::PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
