// E10 — Shard scale-out: one logical accelerator hash-partitioned across
// N shard instances. The scan-aggregate mix is dominated by equality
// predicates on the distribution column, which the coordinator prunes to
// exactly one shard — each query touches ~1/N of the fact table, so
// throughput scales with the shard count even on a single core (hash
// placement defeats zone maps, so the 1-shard baseline scans everything).
// The mix runs under the concurrent-stress load: a DB2 writer with
// replication flushes plus a GROOM thread stay live throughout, exactly
// like the concurrent_stress_test scenario. A final phase kills and
// recovers individual shards of the 4-shard system under ENABLE WITH
// FAILBACK and counts user-visible errors (must be zero).

#include <benchmark/benchmark.h>

#include <atomic>
#include <thread>
#include <vector>

#include "accel/sharded_accelerator.h"
#include "bench_util.h"

namespace idaa::bench {
namespace {

constexpr size_t kRows = 120000;
constexpr int kPrunedReps = 60;
constexpr int kFullScanReps = 10;

struct ShardPoint {
  size_t shards;
  double pruned_qps;
  double pruned_ms;
  double fullscan_ms;
  double speedup_vs_1shard;  // pruned mix, filled in after the sweep
};

void WriteJson(const std::vector<ShardPoint>& points,
               uint64_t shard_kill_errors) {
  const char* dir = std::getenv("IDAA_BENCH_JSON_DIR");
  std::string path =
      (dir != nullptr && *dir != '\0' ? std::string(dir) + "/"
                                      : std::string()) +
      "BENCH_shard_scaleout.json";
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::cerr << "cannot write " << path << "\n";
    return;
  }
  std::fprintf(f,
               "{\n  \"experiment\": \"shard_scaleout\",\n"
               "  \"rows\": %zu,\n"
               "  \"shard_kill_user_errors\": %llu,\n"
               "  \"entries\": [\n",
               kRows, static_cast<unsigned long long>(shard_kill_errors));
  for (size_t i = 0; i < points.size(); ++i) {
    const ShardPoint& e = points[i];
    std::fprintf(f,
                 "    {\"shards\": %zu, \"pruned_qps\": %.1f, "
                 "\"pruned_ms_per_query\": %.3f, "
                 "\"fullscan_ms_per_query\": %.3f, "
                 "\"speedup_vs_1shard\": %.2f}%s\n",
                 e.shards, e.pruned_qps, e.pruned_ms, e.fullscan_ms,
                 e.speedup_vs_1shard, i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::cout << "wrote " << path << "\n";
}

/// Orders fact table hash-distributed on `cust`, loaded through the bulk
/// loader and accelerated, plus a `noise` table for the concurrent writer.
void SeedSharded(IdaaSystem& system) {
  Must(system,
       "CREATE TABLE orders (id INT NOT NULL, cust INT, amount DOUBLE, "
       "region VARCHAR, qty INT) DISTRIBUTE BY (cust)");
  Schema schema({{"ID", DataType::kInteger, false},
                 {"CUST", DataType::kInteger, true},
                 {"AMOUNT", DataType::kDouble, true},
                 {"REGION", DataType::kVarchar, true},
                 {"QTY", DataType::kInteger, true}});
  static const char* kRegions[] = {"NORTH", "SOUTH", "EAST", "WEST"};
  Rng rng(42);
  loader::GeneratorSource source(schema, kRows, [&rng](size_t i) {
    return Row{Value::Integer(static_cast<int64_t>(i)),
               Value::Integer(rng.Uniform(0, 999)),
               Value::Double(rng.UniformDouble(0, 1000)),
               Value::Varchar(kRegions[rng.Uniform(0, 3)]),
               Value::Integer(rng.Uniform(1, 50))};
  });
  loader::LoadOptions options;
  options.batch_size = 8192;
  auto report = system.loader().Load("orders", &source, options);
  if (!report.ok()) {
    std::cerr << "bench seed failed: " << report.status() << "\n";
    std::exit(1);
  }
  Must(system, "CALL SYSPROC.ACCEL_ADD_TABLES('orders')");
  Must(system, "CREATE TABLE noise (id INT NOT NULL, v INT)");
  Must(system, "CALL SYSPROC.ACCEL_ADD_TABLES('noise')");
}

/// The concurrent-stress mix from the stress suite: a DB2 writer with
/// replication flushes and a GROOM thread run for the whole measurement.
class BackgroundLoad {
 public:
  explicit BackgroundLoad(IdaaSystem& system) : system_(system) {
    writer_ = std::thread([this] {
      auto conn = system_.NewConnection();
      int id = 0;
      while (!stop_.load(std::memory_order_relaxed)) {
        (void)conn->Execute(
            StrFormat("INSERT INTO noise VALUES (%d, %d)", id, id % 7));
        ++id;
        (void)system_.replication().Flush();
        std::this_thread::yield();
      }
    });
    groomer_ = std::thread([this] {
      while (!stop_.load(std::memory_order_relaxed)) {
        (void)system_.accelerator().GroomAll();
        std::this_thread::yield();
      }
    });
  }
  ~BackgroundLoad() {
    stop_.store(true);
    writer_.join();
    groomer_.join();
  }

 private:
  IdaaSystem& system_;
  std::atomic<bool> stop_{false};
  std::thread writer_;
  std::thread groomer_;
};

ShardPoint MeasureShards(size_t shards) {
  SystemOptions options;
  options.accelerator_shards = shards;
  options.replication_batch_size = 64;
  IdaaSystem system(options);
  SeedSharded(system);
  system.SetAccelerationMode(federation::AccelerationMode::kAll);

  ShardPoint point;
  point.shards = shards;
  point.speedup_vs_1shard = 1.0;
  {
    BackgroundLoad load(system);
    // Warm both shapes once (dictionary decode, morsel pool spin-up).
    Must(system, "SELECT COUNT(*), SUM(amount) FROM orders WHERE cust = 1");
    Must(system,
         "SELECT region, COUNT(*), SUM(amount) FROM orders GROUP BY region");

    WallTimer pruned_timer;
    for (int i = 0; i < kPrunedReps; ++i) {
      Must(system, StrFormat("SELECT COUNT(*), SUM(amount), MAX(qty) "
                             "FROM orders WHERE cust = %d",
                             (i * 37) % 1000));
    }
    point.pruned_ms = pruned_timer.Millis() / kPrunedReps;
    point.pruned_qps =
        point.pruned_ms > 0 ? 1000.0 / point.pruned_ms : 0.0;

    WallTimer full_timer;
    for (int i = 0; i < kFullScanReps; ++i) {
      Must(system,
           "SELECT region, COUNT(*), SUM(amount) FROM orders "
           "GROUP BY region");
    }
    point.fullscan_ms = full_timer.Millis() / kFullScanReps;
  }
  return point;
}

/// Kill/recover shards of a 4-shard system while an ENABLE WITH FAILBACK
/// reader runs the scan-aggregate mix; returns user-visible errors (the
/// shard design promises zero: a dead shard fails back per-shard).
uint64_t ShardKillPhase() {
  SystemOptions options;
  options.accelerator_shards = 4;
  options.replication_batch_size = 64;
  IdaaSystem system(options);
  SeedSharded(system);
  auto* shard_accel =
      dynamic_cast<accel::ShardedAccelerator*>(&system.accelerator());
  if (shard_accel == nullptr) {
    std::cerr << "expected a sharded accelerator\n";
    std::exit(1);
  }
  system.SetAccelerationMode(
      federation::AccelerationMode::kEnableWithFailback);

  std::atomic<bool> stop{false};
  std::thread killer([&shard_accel, &stop] {
    size_t victim = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      shard_accel->SetShardState(victim, accel::AcceleratorState::kOffline);
      std::this_thread::yield();
      shard_accel->SetShardState(victim, accel::AcceleratorState::kOnline);
      victim = (victim + 1) % shard_accel->num_shards();
      std::this_thread::yield();
    }
  });

  uint64_t errors = 0;
  for (int i = 0; i < 200; ++i) {
    auto r = system.Execute(
        StrFormat("SELECT COUNT(*), SUM(amount) FROM orders WHERE cust = %d",
                  (i * 37) % 1000),
        RawExecOptions());
    if (!r.ok()) ++errors;
  }
  stop.store(true);
  killer.join();
  return errors;
}

void PrintTable() {
  PrintHeader(
      "E10: shard scale-out on the scan-aggregate mix",
      "Claim: hash-partitioning one logical accelerator across N shards "
      "scales partition-key-pruned scan-aggregate throughput with N (each "
      "query touches ~1/N of the data), stays exact, and a dead shard is "
      "invisible under ENABLE WITH FAILBACK.");

  std::vector<ShardPoint> points;
  std::printf("%7s | %12s %14s %16s %10s\n", "shards", "pruned qps",
              "pruned ms/q", "fullscan ms/q", "speedup");
  for (size_t shards : {1, 2, 4, 8}) {
    ShardPoint point = MeasureShards(shards);
    if (!points.empty() && points.front().pruned_ms > 0) {
      point.speedup_vs_1shard = points.front().pruned_ms / point.pruned_ms;
    }
    points.push_back(point);
    std::printf("%7zu | %12.1f %14.3f %16.3f %9.2fx\n", point.shards,
                point.pruned_qps, point.pruned_ms, point.fullscan_ms,
                point.speedup_vs_1shard);
  }

  uint64_t kill_errors = ShardKillPhase();
  std::printf("\nshard-kill phase (4 shards, failback readers): "
              "%llu user-visible errors\n",
              static_cast<unsigned long long>(kill_errors));
  WriteJson(points, kill_errors);
}

// Micro: a single pruned point-aggregate on a 4-shard system, no
// background load — the floor for the coordinator + one-shard path.
void BM_PrunedPointAggregate4Shards(benchmark::State& state) {
  static IdaaSystem* system = [] {
    auto* s = new IdaaSystem([] {
      SystemOptions o;
      o.accelerator_shards = 4;
      return o;
    }());
    SeedSharded(*s);
    s->SetAccelerationMode(federation::AccelerationMode::kAll);
    return s;
  }();
  int k = 0;
  for (auto _ : state) {
    auto r = system->Execute(
        StrFormat("SELECT COUNT(*), SUM(amount) FROM orders WHERE cust = %d",
                  (k++ * 37) % 1000),
        RawExecOptions());
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
  }
}

BENCHMARK(BM_PrunedPointAggregate4Shards);

}  // namespace
}  // namespace idaa::bench

int main(int argc, char** argv) {
  idaa::bench::PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
