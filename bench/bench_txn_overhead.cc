// E4 — Transaction-context overhead on the accelerator: the paper's AOT
// design forces the accelerator to honour the DB2 transaction context
// (own-uncommitted-visible + snapshot isolation). This bench quantifies
// what that MVCC visibility machinery costs on scans, how it scales with
// dead-version count, and how groom restores scan speed.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace idaa::bench {
namespace {

/// Scan latency as a function of the fraction of dead (deleted but
/// ungroomed) versions, before and after grooming.
void PrintDeadVersionTable() {
  PrintHeader("E4a: MVCC dead versions vs scan latency (and groom)",
              "Claim: correct snapshot semantics are affordable; groom "
              "restores scan speed\nafter heavy DML by physically removing "
              "dead versions.");
  std::printf("%10s %12s | %12s %12s %14s\n", "live rows", "dead rows",
              "scan ms", "groomed ms", "versions after");
  const size_t kLive = 50000;
  for (double dead_fraction : {0.0, 0.5, 1.0, 3.0}) {
    IdaaSystem system;
    size_t dead = static_cast<size_t>(kLive * dead_fraction);
    SeedOrders(system, kLive + dead, /*accelerate=*/false, "staging");
    // Build an AOT holding live+dead rows: delete the high ids.
    Must(system, "CALL SYSPROC.ACCEL_ADD_TABLES('staging')");
    if (dead > 0) {
      Must(system, StrFormat("CREATE TABLE work (id INT NOT NULL, cust INT, "
                             "amount DOUBLE, region VARCHAR, qty INT) "
                             "IN ACCELERATOR"));
      Must(system, "INSERT INTO work SELECT * FROM staging");
      Must(system, StrFormat("DELETE FROM work WHERE id >= %zu", kLive));
    } else {
      Must(system, "CREATE TABLE work (id INT NOT NULL, cust INT, "
                   "amount DOUBLE, region VARCHAR, qty INT) IN ACCELERATOR");
      Must(system, "INSERT INTO work SELECT * FROM staging");
    }
    const char* query = "SELECT COUNT(*), SUM(amount) FROM work";
    Must(system, query);  // warm-up
    WallTimer scan_timer;
    for (int i = 0; i < 3; ++i) Must(system, query);
    double scan_ms = scan_timer.Millis() / 3;

    Must(system, "CALL SYSPROC.ACCEL_GROOM()");
    WallTimer groomed_timer;
    for (int i = 0; i < 3; ++i) Must(system, query);
    double groomed_ms = groomed_timer.Millis() / 3;

    auto table = system.accelerator().GetTable("work");
    std::printf("%10zu %12zu | %12.2f %12.2f %14zu\n", kLive, dead, scan_ms,
                groomed_ms, (*table)->NumVersions());
  }
}

/// Throughput of concurrent snapshot readers while a writer churns an AOT —
/// "concurrent execution of multiple queries in a single transaction".
void PrintConcurrencyTable() {
  PrintHeader("E4b: concurrent readers under writes",
              "Claim: snapshot isolation lets analytical readers proceed "
              "against in-flight DML\nwithout blocking (reader latency "
              "roughly flat as writers are added).");
  std::printf("%9s | %14s %16s\n", "writers", "reader ms/query",
              "final row count");
  for (int writers : {0, 1, 2, 4}) {
    IdaaSystem system;
    Must(system, "CREATE TABLE hot (id INT NOT NULL, v DOUBLE) "
                 "IN ACCELERATOR");
    Must(system, "BEGIN");
    for (int i = 0; i < 200; ++i) {
      Must(system, StrFormat("INSERT INTO hot VALUES (%d, %d.5)", i, i));
    }
    Must(system, "COMMIT");

    auto table = system.accelerator().GetTable("hot");
    // Fixed total write work, split across the writers, so every row of
    // the table ends at the same size and only concurrency varies.
    const int kTotalWrites = 4000;
    std::vector<std::thread> writer_threads;
    for (int w = 0; w < writers; ++w) {
      writer_threads.emplace_back([&, w] {
        int per_writer = kTotalWrites / writers;
        for (int i = 0; i < per_writer; ++i) {
          Transaction* txn = system.txn_manager().Begin();
          (void)(*table)->Insert(
              {{Value::Integer(100000 + w * per_writer + i),
                Value::Double(1.0)}},
              txn->id());
          (void)system.txn_manager().Commit(txn);
        }
      });
    }
    // Measure reader latency while the writers run.
    const int kQueries = 40;
    WallTimer timer;
    for (int q = 0; q < kQueries; ++q) {
      Transaction* txn = system.txn_manager().Begin();
      auto count = (*table)->CountVisible(txn->id(), txn->snapshot_csn(),
                                          system.txn_manager());
      if (!count.ok()) std::exit(1);
      (void)system.txn_manager().Commit(txn);
    }
    double per_query = timer.Millis() / kQueries;
    for (auto& t : writer_threads) t.join();
    Transaction* txn = system.txn_manager().Begin();
    auto final_count = (*table)->CountVisible(txn->id(), txn->snapshot_csn(),
                                              system.txn_manager());
    std::printf("%9d | %14.3f %16zu\n", writers, per_query, *final_count);
  }
}

void BM_VisibilityCheckedScan(benchmark::State& state) {
  static IdaaSystem* system = [] {
    auto* s = new IdaaSystem();
    Must(*s, "CREATE TABLE t (id INT NOT NULL, v DOUBLE) IN ACCELERATOR");
    Must(*s, "BEGIN");
    for (int i = 0; i < 2000; ++i) {
      Must(*s, StrFormat("INSERT INTO t VALUES (%d, %d.0)", i, i));
    }
    Must(*s, "COMMIT");
    return s;
  }();
  for (auto _ : state) {
    auto r = system->Execute("SELECT SUM(v) FROM t", RawExecOptions());
    if (!r.ok()) state.SkipWithError("query failed");
    benchmark::DoNotOptimize(r);
  }
}

BENCHMARK(BM_VisibilityCheckedScan)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace idaa::bench

int main(int argc, char** argv) {
  idaa::bench::PrintDeadVersionTable();
  idaa::bench::PrintConcurrencyTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
