// E9 — Workload management: plan cache, result cache and admission control
// under a many-session mixed workload. Three phases:
//   1. Point-lookup latency, cold (both caches off) vs warm (plan cache on)
//      vs prepared statements vs plan+result caches — the per-statement
//      parse cost the plan cache removes and the execution cost the result
//      cache removes.
//   2. Sustained mixed workload: 100 OLTP sessions + 20 analytics sessions
//      for a fixed wall budget per cache configuration; per-class QPS and
//      tail latency plus observed cache hit rates.
//   3. Overload: a deliberately tiny slot pool under a 64-session analytics
//      storm — shed statements must fail fast with a retryable Status.

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace idaa::bench {
namespace {

double Percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  size_t idx = static_cast<size_t>(p * (v.size() - 1));
  return v[idx];
}

struct LookupStats {
  double p50_us = 0;
  double p99_us = 0;
};

LookupStats TimeLookups(IdaaSystem& system, const federation::ExecOptions& opts,
                        int reps) {
  std::vector<double> lat;
  lat.reserve(reps);
  for (int i = 0; i < reps; ++i) {
    std::string sql =
        "SELECT amount FROM orders WHERE id = " + std::to_string(i % 500);
    WallTimer t;
    auto r = system.Execute(sql, opts);
    if (!r.ok()) {
      std::cerr << "lookup failed: " << r.status() << "\n";
      std::exit(1);
    }
    lat.push_back(t.Millis() * 1000.0);
  }
  return {Percentile(lat, 0.5), Percentile(lat, 0.99)};
}

LookupStats TimePreparedLookups(IdaaSystem& system, int reps) {
  auto prepared = system.Prepare("SELECT amount FROM orders WHERE id = ?");
  if (!prepared.ok()) {
    std::cerr << "prepare failed: " << prepared.status() << "\n";
    std::exit(1);
  }
  std::vector<double> lat;
  lat.reserve(reps);
  for (int i = 0; i < reps; ++i) {
    WallTimer t;
    auto r = prepared->Execute({Value::Integer(i % 500)});
    if (!r.ok()) std::exit(1);
    lat.push_back(t.Millis() * 1000.0);
  }
  return {Percentile(lat, 0.5), Percentile(lat, 0.99)};
}

struct MixedResult {
  double oltp_qps = 0;
  double oltp_p99_us = 0;
  double analytics_qps = 0;
  double analytics_p99_us = 0;
  double plan_hit_rate = 0;
  double result_hit_rate = 0;
};

MixedResult RunMixed(bool use_plan_cache, bool use_result_cache) {
  SystemOptions options;
  options.wlm.total_slots = 8;
  options.wlm.max_queue_depth = 512;
  options.wlm.default_queue_deadline_us = 5'000'000;
  options.wlm.result_cache_entries = 1024;
  IdaaSystem system(options);
  SeedOrders(system, 20'000, /*accelerate=*/true);
  SeedCustomers(system, 1'000, /*accelerate=*/true);

  constexpr int kOltpSessions = 100;
  constexpr int kAnalyticsSessions = 20;
  constexpr double kBudgetMs = 400.0;

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> oltp_done{0};
  std::atomic<uint64_t> analytics_done{0};
  std::mutex lat_mu;
  std::vector<double> oltp_lat, analytics_lat;

  federation::ExecOptions opts;
  opts.use_plan_cache = use_plan_cache;
  opts.use_result_cache = use_result_cache;

  MetricsDelta delta(system.metrics());

  std::vector<std::thread> threads;
  for (int s = 0; s < kOltpSessions; ++s) {
    threads.emplace_back([&, s] {
      auto conn = system.NewConnection();
      conn->SetTenant("oltp");
      std::vector<double> local;
      int i = s;
      while (!stop.load(std::memory_order_relaxed)) {
        // Small id pool so repeated lookups actually re-hit cache entries.
        std::string sql = "SELECT amount FROM orders WHERE id = " +
                          std::to_string(i++ % 200);
        WallTimer t;
        auto r = conn->Execute(sql, opts);
        if (r.ok()) {
          local.push_back(t.Millis() * 1000.0);
          oltp_done.fetch_add(1, std::memory_order_relaxed);
        }
      }
      std::lock_guard<std::mutex> lock(lat_mu);
      oltp_lat.insert(oltp_lat.end(), local.begin(), local.end());
    });
  }
  static const char* kAnalytics[] = {
      "SELECT region, COUNT(*), SUM(amount) FROM orders GROUP BY region",
      "SELECT c.tier, COUNT(*), SUM(o.amount) FROM orders o "
      "JOIN customers c ON o.cust = c.cid GROUP BY c.tier",
      "SELECT COUNT(*), AVG(amount) FROM orders WHERE qty > 25",
  };
  for (int s = 0; s < kAnalyticsSessions; ++s) {
    threads.emplace_back([&, s] {
      auto conn = system.NewConnection();
      conn->SetTenant("analytics");
      std::vector<double> local;
      int i = s;
      while (!stop.load(std::memory_order_relaxed)) {
        WallTimer t;
        auto r = conn->Execute(kAnalytics[i++ % 3], opts);
        if (r.ok()) {
          local.push_back(t.Millis() * 1000.0);
          analytics_done.fetch_add(1, std::memory_order_relaxed);
        }
      }
      std::lock_guard<std::mutex> lock(lat_mu);
      analytics_lat.insert(analytics_lat.end(), local.begin(), local.end());
    });
  }

  WallTimer budget;
  while (budget.Millis() < kBudgetMs) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true);
  for (auto& t : threads) t.join();
  double secs = budget.Millis() / 1000.0;

  MixedResult out;
  out.oltp_qps = oltp_done.load() / secs;
  out.analytics_qps = analytics_done.load() / secs;
  out.oltp_p99_us = Percentile(oltp_lat, 0.99);
  out.analytics_p99_us = Percentile(analytics_lat, 0.99);
  uint64_t plan_hits = delta.Delta(metric::kPlanCacheHits);
  uint64_t plan_misses = delta.Delta(metric::kPlanCacheMisses);
  uint64_t result_hits = delta.Delta(metric::kResultCacheHits);
  uint64_t result_misses = delta.Delta(metric::kResultCacheMisses);
  if (plan_hits + plan_misses > 0) {
    out.plan_hit_rate =
        static_cast<double>(plan_hits) / (plan_hits + plan_misses);
  }
  if (result_hits + result_misses > 0) {
    out.result_hit_rate =
        static_cast<double>(result_hits) / (result_hits + result_misses);
  }
  return out;
}

struct OverloadResult {
  int ok = 0;
  int shed = 0;
  int non_retryable = 0;
  double shed_p99_us = 0;  ///< how fast a shed statement fails
};

OverloadResult RunOverload() {
  SystemOptions options;
  options.wlm.total_slots = 2;
  options.wlm.max_queue_depth = 4;
  options.wlm.default_queue_deadline_us = 50'000;
  IdaaSystem system(options);
  SeedOrders(system, 20'000, /*accelerate=*/true);

  constexpr int kSessions = 64;
  OverloadResult out;
  std::mutex mu;
  std::vector<double> shed_lat;
  std::vector<std::thread> threads;
  for (int s = 0; s < kSessions; ++s) {
    threads.emplace_back([&] {
      auto conn = system.NewConnection();
      federation::ExecOptions opts;
      opts.use_result_cache = false;  // force real execution per statement
      for (int q = 0; q < 10; ++q) {
        WallTimer t;
        auto r = conn->Execute(
            "SELECT region, COUNT(*), SUM(amount) FROM orders "
            "GROUP BY region",
            opts);
        double us = t.Millis() * 1000.0;
        std::lock_guard<std::mutex> lock(mu);
        if (r.ok()) {
          ++out.ok;
        } else {
          ++out.shed;
          shed_lat.push_back(us);
          if (!r.status().retryable()) ++out.non_retryable;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  out.shed_p99_us = Percentile(shed_lat, 0.99);
  return out;
}

void RunExperiment() {
  PrintHeader(
      "E9: workload management — plan cache, result cache, admission",
      "Claim: a shared-nothing accelerator deployment serves many "
      "concurrent sessions;\nthe plan cache removes per-statement parse "
      "cost, the result cache removes repeat\nexecution, and admission "
      "control sheds overload fast with retryable errors.");

  // Phase 1: point lookups, one session. The id pool (500) must fit the
  // result cache or LRU cycling drops the hit rate to zero.
  SystemOptions options;
  options.wlm.result_cache_entries = 1024;
  IdaaSystem system(options);
  SeedOrders(system, 50'000, /*accelerate=*/true);
  constexpr int kReps = 2'000;

  federation::ExecOptions cold;
  cold.use_plan_cache = false;
  cold.use_result_cache = false;
  federation::ExecOptions plan_only;
  plan_only.use_result_cache = false;
  federation::ExecOptions both;

  LookupStats cold_s = TimeLookups(system, cold, kReps);
  LookupStats plan_s = TimeLookups(system, plan_only, kReps);
  LookupStats prepared_s = TimePreparedLookups(system, kReps);
  // "Warm" = the default statement path (plan + result cache) in steady
  // state — what a repeated dashboard / OLTP lookup actually pays.
  LookupStats warm_s = TimeLookups(system, both, kReps);

  double plan_only_speedup =
      plan_s.p50_us > 0 ? cold_s.p50_us / plan_s.p50_us : 0;
  double prepared_speedup =
      prepared_s.p50_us > 0 ? cold_s.p50_us / prepared_s.p50_us : 0;
  double warm_speedup = warm_s.p50_us > 0 ? cold_s.p50_us / warm_s.p50_us : 0;
  std::printf("%-34s %10s %10s %10s\n", "point lookup (50k rows)", "p50 us",
              "p99 us", "speedup");
  std::printf("%-34s %10.1f %10.1f %10s\n", "  cold (no caches)", cold_s.p50_us,
              cold_s.p99_us, "1.00x");
  std::printf("%-34s %10.1f %10.1f %9.2fx\n", "  plan cache only",
              plan_s.p50_us, plan_s.p99_us, plan_only_speedup);
  std::printf("%-34s %10.1f %10.1f %9.2fx\n", "  prepared statement",
              prepared_s.p50_us, prepared_s.p99_us, prepared_speedup);
  std::printf("%-34s %10.1f %10.1f %9.2fx\n", "  warm (plan + result cache)",
              warm_s.p50_us, warm_s.p99_us, warm_speedup);

  // Phase 2: mixed 120-session workload across cache configurations.
  std::printf("\n%-26s %10s %12s %12s %14s %9s %9s\n", "mixed 120 sessions",
              "oltp qps", "oltp p99 us", "analyt qps", "analyt p99 us",
              "plan hit", "res hit");
  MixedResult none = RunMixed(false, false);
  MixedResult plan = RunMixed(true, false);
  MixedResult full = RunMixed(true, true);
  auto print_mixed = [](const char* label, const MixedResult& m) {
    std::printf("%-26s %10.0f %12.1f %12.1f %14.1f %8.1f%% %8.1f%%\n", label,
                m.oltp_qps, m.oltp_p99_us, m.analytics_qps, m.analytics_p99_us,
                m.plan_hit_rate * 100, m.result_hit_rate * 100);
  };
  print_mixed("  no caches", none);
  print_mixed("  plan cache", plan);
  print_mixed("  plan + result cache", full);

  // Phase 3: overload shedding.
  OverloadResult overload = RunOverload();
  std::printf(
      "\noverload (2 slots, 64 analytics sessions): ok=%d shed=%d "
      "non_retryable=%d shed_p99=%.0fus\n",
      overload.ok, overload.shed, overload.non_retryable,
      overload.shed_p99_us);
  if (overload.non_retryable > 0) {
    std::cerr << "FATAL: shed statements must be retryable\n";
    std::exit(1);
  }

  // JSON artifact (schema differs from the scan benches — WLM metrics).
  const char* dir = std::getenv("IDAA_BENCH_JSON_DIR");
  std::string path =
      (dir != nullptr && *dir != '\0' ? std::string(dir) + "/"
                                      : std::string()) +
      "BENCH_wlm.json";
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::cerr << "cannot write " << path << "\n";
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"experiment\": \"wlm\",\n");
  std::fprintf(f,
               "  \"point_lookup\": {\"cold_p50_us\": %.1f, "
               "\"plan_only_p50_us\": %.1f, \"prepared_p50_us\": %.1f, "
               "\"warm_p50_us\": %.1f, \"plan_only_speedup\": %.2f, "
               "\"prepared_speedup\": %.2f, \"warm_speedup\": %.2f},\n",
               cold_s.p50_us, plan_s.p50_us, prepared_s.p50_us, warm_s.p50_us,
               plan_only_speedup, prepared_speedup, warm_speedup);
  auto mixed_json = [f](const char* name, const MixedResult& m, bool comma) {
    std::fprintf(f,
                 "    {\"config\": \"%s\", \"oltp_qps\": %.0f, "
                 "\"oltp_p99_us\": %.1f, \"analytics_qps\": %.1f, "
                 "\"analytics_p99_us\": %.1f, \"plan_cache_hit_rate\": %.3f, "
                 "\"result_cache_hit_rate\": %.3f}%s\n",
                 name, m.oltp_qps, m.oltp_p99_us, m.analytics_qps,
                 m.analytics_p99_us, m.plan_hit_rate, m.result_hit_rate,
                 comma ? "," : "");
  };
  std::fprintf(f, "  \"mixed_workload\": [\n");
  mixed_json("no_caches", none, true);
  mixed_json("plan_cache", plan, true);
  mixed_json("plan_and_result_cache", full, false);
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"overload\": {\"sessions\": 64, \"slots\": 2, \"ok\": %d, "
               "\"shed\": %d, \"non_retryable\": %d, \"shed_p99_us\": %.0f}\n",
               overload.ok, overload.shed, overload.non_retryable,
               overload.shed_p99_us);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::cout << "wrote " << path << "\n";
}

// Micro benchmarks: per-statement cost of each cache layer.
void BM_PointLookupNoCaches(benchmark::State& state) {
  IdaaSystem system;
  SeedOrders(system, 10'000, true);
  federation::ExecOptions opts;
  opts.use_plan_cache = false;
  opts.use_result_cache = false;
  int i = 0;
  for (auto _ : state) {
    auto r = system.Execute(
        "SELECT amount FROM orders WHERE id = " + std::to_string(i++ % 100),
        opts);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_PointLookupNoCaches);

void BM_PointLookupPlanCache(benchmark::State& state) {
  IdaaSystem system;
  SeedOrders(system, 10'000, true);
  federation::ExecOptions opts;
  opts.use_result_cache = false;
  int i = 0;
  for (auto _ : state) {
    auto r = system.Execute(
        "SELECT amount FROM orders WHERE id = " + std::to_string(i++ % 100),
        opts);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_PointLookupPlanCache);

void BM_PointLookupPrepared(benchmark::State& state) {
  IdaaSystem system;
  SeedOrders(system, 10'000, true);
  auto prepared = system.Prepare("SELECT amount FROM orders WHERE id = ?");
  if (!prepared.ok()) std::exit(1);
  int i = 0;
  for (auto _ : state) {
    auto r = prepared->Execute({Value::Integer(i++ % 100)});
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_PointLookupPrepared);

void BM_PointLookupResultCache(benchmark::State& state) {
  IdaaSystem system;
  SeedOrders(system, 10'000, true);
  int i = 0;
  for (auto _ : state) {
    auto r = system.Execute(
        "SELECT amount FROM orders WHERE id = " + std::to_string(i++ % 100));
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_PointLookupResultCache);

}  // namespace
}  // namespace idaa::bench

int main(int argc, char** argv) {
  idaa::bench::RunExperiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
