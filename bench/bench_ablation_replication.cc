// A2 — Replication apply batching: the incremental-update pipeline applies
// captured changes in batches; this ablation sweeps the batch size to show
// the per-batch overhead amortization (each batch pays one boundary round
// trip and one replication transaction).

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace idaa::bench {
namespace {

struct ApplyRun {
  double millis = 0;
  uint64_t batches = 0;
  uint64_t round_trips = 0;
};

ApplyRun RunApply(size_t changes, size_t batch_size) {
  SystemOptions options;
  options.replication_batch_size = 0;  // manual flush
  IdaaSystem system(options);
  Must(system, "CREATE TABLE t (id INT NOT NULL, v DOUBLE)");
  Must(system, "CALL SYSPROC.ACCEL_ADD_TABLES('t')");

  // Produce the change stream: inserts plus some updates/deletes.
  Must(system, "BEGIN");
  for (size_t i = 0; i < changes; ++i) {
    Must(system, StrFormat("INSERT INTO t VALUES (%zu, %zu.5)", i, i));
  }
  Must(system, "COMMIT");
  system.replication().set_batch_size(batch_size);

  MetricsDelta delta(system.metrics());
  WallTimer timer;
  auto stats = system.replication().Flush();
  if (!stats.ok()) std::exit(1);
  ApplyRun run;
  run.millis = timer.Millis();
  run.batches = delta.Delta(metric::kReplicationBatches);
  run.round_trips = delta.Delta(metric::kFederationRoundTrips);
  return run;
}

void PrintTable() {
  PrintHeader("A2: replication apply batch size",
              "Claim: batching amortizes the per-apply round trip; tiny "
              "batches pay per-change overhead.");
  std::printf("%9s %10s | %12s %9s %12s %14s\n", "changes", "batch",
              "apply ms", "batches", "round trips", "changes/ms");
  const size_t kChanges = 8000;
  for (size_t batch : {1u, 16u, 128u, 1024u, 8192u}) {
    ApplyRun run = RunApply(kChanges, batch);
    std::printf("%9zu %10zu | %12.1f %9llu %12llu %14.1f\n", kChanges, batch,
                run.millis, (unsigned long long)run.batches,
                (unsigned long long)run.round_trips,
                kChanges / std::max(0.001, run.millis));
  }
}

void BM_ReplicationApply(benchmark::State& state) {
  for (auto _ : state) {
    ApplyRun run = RunApply(2000, static_cast<size_t>(state.range(0)));
    state.counters["batches"] = static_cast<double>(run.batches);
  }
}

BENCHMARK(BM_ReplicationApply)->Arg(16)->Arg(1024)
    ->Unit(benchmark::kMillisecond)->Iterations(2);

}  // namespace
}  // namespace idaa::bench

int main(int argc, char** argv) {
  idaa::bench::PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
