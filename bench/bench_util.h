// Shared helpers for the experiment benchmarks (see DESIGN.md §4 and
// EXPERIMENTS.md). Each bench binary prints its experiment table(s) —
// the reproduction of the paper's claims — and then runs google-benchmark
// micro timings.

#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/rng.h"
#include "common/string_util.h"
#include "idaa/system.h"

namespace idaa::bench {

/// Statement options for measurement loops: both statement caches off, so a
/// repeated query times the engine (parse + route + execute), not a cache
/// hit. Benches that measure the caches themselves (bench_wlm) opt back in.
inline federation::ExecOptions RawExecOptions() {
  federation::ExecOptions opts;
  opts.use_plan_cache = false;
  opts.use_result_cache = false;
  return opts;
}

/// Execute-or-die. Used for both setup and timing loops, so it runs with
/// the statement caches off (RawExecOptions) — a bench repeating the same
/// SELECT must measure the engine, not the result cache.
inline void Must(IdaaSystem& system, const std::string& sql) {
  auto r = system.Execute(sql, RawExecOptions());
  if (!r.ok()) {
    std::cerr << "bench statement failed: " << sql << "\n  " << r.status()
              << "\n";
    std::exit(1);
  }
}

/// Bulk-load `rows` synthetic order rows into a DB2 table via the loader
/// (much faster than per-row INSERT) and optionally accelerate it.
inline void SeedOrders(IdaaSystem& system, size_t rows, bool accelerate,
                       const std::string& table = "orders") {
  Must(system, "CREATE TABLE " + table +
                   " (id INT NOT NULL, cust INT, amount DOUBLE, "
                   "region VARCHAR, qty INT)");
  Schema schema({{"ID", DataType::kInteger, false},
                 {"CUST", DataType::kInteger, true},
                 {"AMOUNT", DataType::kDouble, true},
                 {"REGION", DataType::kVarchar, true},
                 {"QTY", DataType::kInteger, true}});
  static const char* kRegions[] = {"NORTH", "SOUTH", "EAST", "WEST"};
  Rng rng(42);
  loader::GeneratorSource source(schema, rows, [&rng](size_t i) {
    return Row{Value::Integer(static_cast<int64_t>(i)),
               Value::Integer(rng.Uniform(0, 999)),
               Value::Double(rng.UniformDouble(0, 1000)),
               Value::Varchar(kRegions[rng.Uniform(0, 3)]),
               Value::Integer(rng.Uniform(1, 50))};
  });
  loader::LoadOptions options;
  options.batch_size = 8192;
  auto report = system.loader().Load(table, &source, options);
  if (!report.ok()) {
    std::cerr << "bench seed failed: " << report.status() << "\n";
    std::exit(1);
  }
  if (accelerate) {
    Must(system, "CALL SYSPROC.ACCEL_ADD_TABLES('" + table + "')");
  }
}

/// Seed a small dimension table (customers) on both sides.
inline void SeedCustomers(IdaaSystem& system, size_t rows, bool accelerate) {
  Must(system,
       "CREATE TABLE customers (cid INT NOT NULL, tier VARCHAR, "
       "score DOUBLE)");
  Schema schema({{"CID", DataType::kInteger, false},
                 {"TIER", DataType::kVarchar, true},
                 {"SCORE", DataType::kDouble, true}});
  static const char* kTiers[] = {"GOLD", "SILVER", "BRONZE"};
  Rng rng(7);
  loader::GeneratorSource source(schema, rows, [&rng](size_t i) {
    return Row{Value::Integer(static_cast<int64_t>(i)),
               Value::Varchar(kTiers[i % 3]),
               Value::Double(rng.UniformDouble(0, 1))};
  });
  auto report = system.loader().Load("customers", &source);
  if (!report.ok()) {
    std::cerr << "bench seed failed: " << report.status() << "\n";
    std::exit(1);
  }
  if (accelerate) {
    Must(system, "CALL SYSPROC.ACCEL_ADD_TABLES('customers')");
  }
}

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double Millis() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void PrintHeader(const std::string& experiment,
                        const std::string& claim) {
  std::cout << "\n=== " << experiment << " ===\n" << claim << "\n\n";
}

/// Toggle the accelerator's vectorized batch path (all attached
/// accelerators) — lets a bench time the row-at-a-time fallback on the
/// same seeded system.
inline void SetBatchPath(IdaaSystem& system, bool enabled) {
  for (size_t i = 0; i < system.num_accelerators(); ++i) {
    system.accelerator(i).SetBatchPathEnabled(enabled);
  }
}

/// Accumulates per-query timings and writes `BENCH_<name>.json` — the
/// machine-readable perf trajectory tracked across PRs (CI uploads it as
/// an artifact). `accel_row_ms` is the accelerator's row-at-a-time
/// fallback, so batch_speedup isolates the vectorized engine's win.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  void Add(const std::string& query, size_t table_rows, double db2_ms,
           double accel_ms, double accel_row_ms) {
    entries_.push_back({query, table_rows, db2_ms, accel_ms, accel_row_ms});
  }

  /// Write BENCH_<name>.json into $IDAA_BENCH_JSON_DIR (default: cwd).
  void Write() const {
    const char* dir = std::getenv("IDAA_BENCH_JSON_DIR");
    std::string path = (dir != nullptr && *dir != '\0'
                            ? std::string(dir) + "/"
                            : std::string()) +
                       "BENCH_" + name_ + ".json";
    FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::cerr << "cannot write " << path << "\n";
      return;
    }
    std::fprintf(f, "{\n  \"experiment\": \"%s\",\n  \"entries\": [\n",
                 name_.c_str());
    for (size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      double accel_rows_per_sec =
          e.accel_ms > 0 ? e.table_rows / (e.accel_ms / 1000.0) : 0.0;
      // Sub-0.1ms accelerator timings are dominated by per-statement fixed
      // cost (parse + route + snapshot), not scan throughput: zone-map
      // pruning can finish a "scan" in microseconds, making ratio metrics
      // (batch_speedup, speedup_vs_db2) noise. Label them so consumers —
      // including the CI perf gate — treat the ratios as non-significant.
      bool fixed_cost_dominated = e.accel_ms > 0 && e.accel_ms < 0.1;
      std::fprintf(
          f,
          "    {\"query\": \"%s\", \"rows\": %zu, \"db2_ms\": %.3f, "
          "\"accel_ms\": %.3f, \"accel_row_path_ms\": %.3f, "
          "\"accel_rows_per_sec\": %.0f, \"speedup_vs_db2\": %.2f, "
          "\"batch_speedup\": %.2f, \"fixed_cost_dominated\": %s}%s\n",
          e.query.c_str(), e.table_rows, e.db2_ms, e.accel_ms, e.accel_row_ms,
          accel_rows_per_sec, e.accel_ms > 0 ? e.db2_ms / e.accel_ms : 0.0,
          e.accel_ms > 0 ? e.accel_row_ms / e.accel_ms : 0.0,
          fixed_cost_dominated ? "true" : "false",
          i + 1 < entries_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::cout << "wrote " << path << "\n";
  }

 private:
  struct Entry {
    std::string query;
    size_t table_rows;
    double db2_ms;
    double accel_ms;
    double accel_row_ms;
  };
  std::string name_;
  std::vector<Entry> entries_;
};

}  // namespace idaa::bench
