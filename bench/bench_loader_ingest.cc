// E3 — IDAA Loader ingestion: loading external data directly into an
// accelerator-only table vs. the legacy route (DB2 insert + incremental
// re-replication to the accelerator). Sweeps row count and batch size,
// then sweeps the pipelined loader's worker count over a pre-rendered
// CSV feed to isolate the parse/convert parallelism win.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/csv.h"
#include "loader/record_source.h"

namespace idaa::bench {
namespace {

Schema FeedSchema() {
  return Schema({{"ID", DataType::kInteger, false},
                 {"USERNAME", DataType::kVarchar, true},
                 {"SENTIMENT", DataType::kDouble, true}});
}

loader::GeneratorSource MakeFeed(size_t rows, Rng* rng) {
  return loader::GeneratorSource(FeedSchema(), rows, [rng](size_t i) {
    return Row{Value::Integer(static_cast<int64_t>(i)),
               Value::Varchar("user_" + std::to_string(rng->Uniform(1, 999))),
               Value::Double(rng->UniformDouble(-1, 1))};
  });
}

struct IngestStats {
  double millis = 0;
  uint64_t boundary_bytes = 0;
  uint64_t db2_rows = 0;
};

/// direct=true: AOT target (loader -> accelerator).
/// direct=false: accelerated DB2 table (loader -> DB2 -> replication).
IngestStats RunIngest(size_t rows, size_t batch_size, bool direct) {
  IdaaSystem system;
  if (direct) {
    Must(system, "CREATE TABLE feed (id INT NOT NULL, username VARCHAR, "
                 "sentiment DOUBLE) IN ACCELERATOR");
  } else {
    Must(system, "CREATE TABLE feed (id INT NOT NULL, username VARCHAR, "
                 "sentiment DOUBLE)");
    Must(system, "CALL SYSPROC.ACCEL_ADD_TABLES('feed')");
  }
  Rng rng(5);
  auto feed = MakeFeed(rows, &rng);
  loader::LoadOptions options;
  options.batch_size = batch_size;

  MetricsDelta delta(system.metrics());
  WallTimer timer;
  auto report = system.loader().Load("feed", &feed, options);
  if (!report.ok()) std::exit(1);
  if (!direct) {
    // The replica only converges once incremental update ran.
    auto flushed = system.replication().Flush();
    if (!flushed.ok()) std::exit(1);
  }
  IngestStats stats;
  stats.millis = timer.Millis();
  stats.boundary_bytes = delta.Delta(metric::kFederationBytesToAccel) +
                         delta.Delta(metric::kFederationBytesFromAccel);
  stats.db2_rows = delta.Delta(metric::kDb2RowsMaterialized);
  return stats;
}

/// Pre-rendered CSV body for the parallel sweep: quoted usernames with an
/// embedded delimiter every few rows so the parse stage does real
/// quote-handling work, occasional NULL sentiment.
std::string RenderFeedCsv(size_t rows) {
  Rng rng(7);
  std::string body;
  body.reserve(rows * 32);
  for (size_t i = 0; i < rows; ++i) {
    Row row{Value::Integer(static_cast<int64_t>(i)),
            i % 5 == 0
                ? Value::Varchar("user, " + std::to_string(rng.Uniform(1, 999)))
                : Value::Varchar("user_" + std::to_string(rng.Uniform(1, 999))),
            i % 11 == 0 ? Value::Null()
                        : Value::Double(rng.UniformDouble(-1, 1))};
    body += FormatCsvRow(row);
    body += '\n';
  }
  return body;
}

/// Times one CSV load of `body` into a fresh AOT (direct) or accelerated
/// DB2 table (via replication). num_workers=0 selects the serial loader.
double RunCsvIngest(const std::string& body, size_t batch_size,
                    size_t num_workers, bool direct) {
  IdaaSystem system;
  if (direct) {
    Must(system, "CREATE TABLE feed (id INT NOT NULL, username VARCHAR, "
                 "sentiment DOUBLE) IN ACCELERATOR");
  } else {
    Must(system, "CREATE TABLE feed (id INT NOT NULL, username VARCHAR, "
                 "sentiment DOUBLE)");
    Must(system, "CALL SYSPROC.ACCEL_ADD_TABLES('feed')");
  }
  loader::CsvStringSource source(body, FeedSchema());
  loader::LoadOptions options;
  options.batch_size = batch_size;
  options.num_workers = num_workers;

  WallTimer timer;
  auto report = system.loader().Load("feed", &source, options);
  if (!report.ok()) std::exit(1);
  if (!direct) {
    auto flushed = system.replication().Flush();
    if (!flushed.ok()) std::exit(1);
  }
  return timer.Millis();
}

void PrintParallelTable(BenchJson* json) {
  PrintHeader("E3b: pipelined CSV ingestion (parse/convert parallelism)",
              "Claim: splitting the load into reader -> N parse workers -> "
              "ordered commit\nscales CSV ingestion with cores while keeping "
              "the loaded state bit-identical.");
  std::printf("%8s %8s | %10s | %10s %8s\n", "rows", "workers", "direct ms",
              "rows/s", "speedup");
  for (size_t rows : {10000u, 50000u}) {
    const std::string body = RenderFeedCsv(rows);
    double serial_ms = 0;
    double best_parallel_ms = 0;
    for (size_t workers : {0u, 1u, 2u, 4u, 8u}) {
      // Best of three runs — fresh system each, so allocator noise and
      // first-touch costs don't masquerade as pipeline overhead.
      double ms = 1e300;
      for (int rep = 0; rep < 3; ++rep) {
        double m = RunCsvIngest(body, 2048, workers, /*direct=*/true);
        if (m < ms) ms = m;
      }
      if (workers == 0) serial_ms = ms;
      if (workers == 4) best_parallel_ms = ms;
      std::printf("%8zu %8zu | %10.1f | %10.0f | %7.2fx\n", rows, workers, ms,
                  rows / (ms / 1000.0), serial_ms / ms);
    }
    if (json != nullptr) {
      double via_db2_ms = RunCsvIngest(body, 2048, 4, /*direct=*/false);
      // db2_ms = legacy via-DB2 route, accel_ms = parallel direct load,
      // accel_row_path_ms = serial direct load — so speedup_vs_db2 is the
      // paper's E3 claim and batch_speedup is the pipeline-parallelism win.
      json->Add("csv_load_" + std::to_string(rows), rows, via_db2_ms,
                best_parallel_ms, serial_ms);
    }
  }
}

void PrintTable() {
  PrintHeader("E3: external data ingestion (IDAA Loader)",
              "Claim: loading external feeds directly into AOTs avoids the "
              "DB2 write\npath and the re-replication pass entirely.");
  std::printf("%8s %7s | %12s %10s | %12s %10s | %9s\n", "rows", "batch",
              "via-db2 ms", "db2 rows", "direct ms", "db2 rows", "speedup");
  for (size_t rows : {10000u, 50000u}) {
    for (size_t batch : {256u, 2048u, 8192u}) {
      IngestStats via_db2 = RunIngest(rows, batch, /*direct=*/false);
      IngestStats direct = RunIngest(rows, batch, /*direct=*/true);
      std::printf("%8zu %7zu | %12.1f %10llu | %12.1f %10llu | %8.2fx\n",
                  rows, batch, via_db2.millis,
                  (unsigned long long)via_db2.db2_rows, direct.millis,
                  (unsigned long long)direct.db2_rows,
                  via_db2.millis / direct.millis);
    }
  }
}

void BM_LoaderDirect(benchmark::State& state) {
  for (auto _ : state) {
    IngestStats stats = RunIngest(static_cast<size_t>(state.range(0)),
                                  2048, /*direct=*/true);
    state.counters["db2_rows"] = static_cast<double>(stats.db2_rows);
  }
}

void BM_LoaderViaDb2(benchmark::State& state) {
  for (auto _ : state) {
    IngestStats stats = RunIngest(static_cast<size_t>(state.range(0)),
                                  2048, /*direct=*/false);
    state.counters["db2_rows"] = static_cast<double>(stats.db2_rows);
  }
}

BENCHMARK(BM_LoaderDirect)->Arg(20000)->Unit(benchmark::kMillisecond)
    ->Iterations(2);
BENCHMARK(BM_LoaderViaDb2)->Arg(20000)->Unit(benchmark::kMillisecond)
    ->Iterations(2);

}  // namespace
}  // namespace idaa::bench

int main(int argc, char** argv) {
  idaa::bench::PrintTable();
  idaa::bench::BenchJson json("loader_ingest");
  idaa::bench::PrintParallelTable(&json);
  json.Write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
