// E11 — Compressed columnar storage with direct execution on encodings:
// the same scan-heavy queries on the same accelerator-only table, first
// with every zone as flat arrays, then after GROOM compacted the zones
// into RLE / frame-of-reference form (see DESIGN.md §11). Claims pinned
// by CI: the encoded zones cost >= 3x less column memory, and the
// scan-heavy shapes run >= 2x faster because predicates and aggregates
// evaluate per run / per packed word instead of per row.

#include <benchmark/benchmark.h>

#include <cmath>
#include <vector>

#include "bench_util.h"

namespace idaa::bench {
namespace {

struct QueryDef {
  const char* name;
  const char* sql;
  /// Counts toward the headline scan_speedup geomean. Gated shapes are
  /// the two canonical analytical scans (full-scan aggregation, grouped
  /// aggregation) where run-folded execution on encodings pays. The
  /// filter shapes are reported but not gated: their cycles are dominated
  /// by the per-row visibility check and selection-vector fill that both
  /// arms share, so the encoded win there is bytes, not time — see
  /// EXPERIMENTS.md E11.
  bool scan_heavy;
};

// The day/price/amount/status columns are run-heavy the way a fact table
// clustered on its load date is: long stretches of identical values. id,
// region, qty and cust have no runs and land in frame-of-reference zones,
// so the table exercises both encodings (and the plain fallback is covered
// by the hot tail left after groom).
const QueryDef kQueries[] = {
    {"C1 full scan fold agg",
     "SELECT COUNT(*), SUM(price), MIN(price), MAX(price) FROM comp", true},
    {"C2 run filter count",
     "SELECT COUNT(*) FROM comp WHERE status = 'SHIPPED'", false},
    {"C3 range + sum",
     "SELECT COUNT(*), SUM(qty) FROM comp WHERE day BETWEEN 200 AND 1400",
     false},
    {"C4 group by day",
     "SELECT day, COUNT(*), SUM(amount) FROM comp GROUP BY day", true},
    {"C5 point lookup", "SELECT amount FROM comp WHERE id = 123457", false},
};

void SeedComp(IdaaSystem& system, size_t rows) {
  // Accelerator-only: the loader writes straight into the columnar store,
  // so a 10M-row arm never materializes a DB2-side row copy.
  Must(system,
       "CREATE TABLE comp (id INT NOT NULL, day INT, price INT, "
       "amount DOUBLE, status VARCHAR, region VARCHAR, qty INT) "
       "IN ACCELERATOR");
  Schema schema({{"ID", DataType::kInteger, false},
                 {"DAY", DataType::kInteger, true},
                 {"PRICE", DataType::kInteger, true},
                 {"AMOUNT", DataType::kDouble, true},
                 {"STATUS", DataType::kVarchar, true},
                 {"REGION", DataType::kVarchar, true},
                 {"QTY", DataType::kInteger, true}});
  static const char* kStatuses[] = {"NEW", "PAID", "SHIPPED", "DONE"};
  static const char* kRegions[] = {"NORTH", "SOUTH", "EAST", "WEST"};
  loader::GeneratorSource source(schema, rows, [](size_t i) {
    const int64_t day = static_cast<int64_t>(i / 5000);
    return Row{Value::Integer(static_cast<int64_t>(i)),
               Value::Integer(day),
               Value::Integer(100 + day % 20),
               Value::Double(static_cast<double>(day % 100) + 0.25),
               Value::Varchar(kStatuses[(i / 300) % 4]),
               Value::Varchar(kRegions[i % 4]),
               Value::Integer(static_cast<int64_t>(i % 50) + 1)};
  });
  loader::LoadOptions options;
  options.batch_size = 8192;
  auto report = system.loader().Load("comp", &source, options);
  if (!report.ok()) {
    std::cerr << "bench seed failed: " << report.status() << "\n";
    std::exit(1);
  }
}

double TimeQuery(IdaaSystem& system, const std::string& sql, int reps) {
  auto warm = system.Execute(sql, RawExecOptions());
  if (!warm.ok()) {
    std::cerr << "query failed: " << sql << ": " << warm.status() << "\n";
    std::exit(1);
  }
  // Best-of-three groups, same rationale as bench_offload_speedup: the
  // fastest group is the least-disturbed measurement of identical work.
  double best = 0;
  for (int group = 0; group < 3; ++group) {
    WallTimer timer;
    for (int i = 0; i < reps; ++i) {
      auto r = system.Execute(sql, RawExecOptions());
      if (!r.ok()) std::exit(1);
    }
    double ms = timer.Millis() / reps;
    if (group == 0 || ms < best) best = ms;
  }
  return best;
}

struct ArmResult {
  size_t rows = 0;
  double raw_ms[std::size(kQueries)] = {};
  double encoded_ms[std::size(kQueries)] = {};
  double memory_ratio = 0;
  double scan_speedup = 0;
  size_t raw_col_bytes = 0;
  size_t encoded_col_bytes = 0;
  size_t hot_rows = 0;
};

ArmResult RunArm(size_t rows) {
  ArmResult arm;
  arm.rows = rows;

  SystemOptions options;
  // Encoding stays off while the raw arm is timed; the toggle only affects
  // future grooms, so flipping it on afterwards measures the identical
  // data through the identical plans — only the storage format differs.
  options.accelerator.enable_encoding = false;
  IdaaSystem system(options);
  SeedComp(system, rows);

  const int reps = rows > 2000000 ? 3 : 5;
  for (size_t q = 0; q < std::size(kQueries); ++q) {
    arm.raw_ms[q] = TimeQuery(system, kQueries[q].sql, reps);
  }

  system.accelerator().SetEncodingEnabled(true);
  auto groom = system.accelerator().GroomAll();
  if (groom.zones_compacted == 0) {
    std::cerr << "groom compacted no zones; encoded arm is meaningless\n";
    std::exit(1);
  }
  auto table = system.accelerator().GetTable("comp");
  if (!table.ok()) {
    std::cerr << "comp missing after groom: " << table.status() << "\n";
    std::exit(1);
  }
  const accel::TableEncodingStats enc = (*table)->EncodingStats();
  arm.raw_col_bytes = enc.columns.raw_bytes;
  arm.encoded_col_bytes = enc.columns.encoded_bytes;
  arm.hot_rows = enc.hot_rows;
  arm.memory_ratio =
      enc.columns.encoded_bytes > 0
          ? static_cast<double>(enc.columns.raw_bytes) /
                static_cast<double>(enc.columns.encoded_bytes)
          : 0.0;

  for (size_t q = 0; q < std::size(kQueries); ++q) {
    arm.encoded_ms[q] = TimeQuery(system, kQueries[q].sql, reps);
  }

  double log_sum = 0;
  size_t scan_heavy = 0;
  for (size_t q = 0; q < std::size(kQueries); ++q) {
    if (!kQueries[q].scan_heavy || arm.encoded_ms[q] <= 0) continue;
    log_sum += std::log(arm.raw_ms[q] / arm.encoded_ms[q]);
    ++scan_heavy;
  }
  arm.scan_speedup = scan_heavy > 0 ? std::exp(log_sum / scan_heavy) : 0.0;
  return arm;
}

/// BenchJson carries only the fixed db2/accel/row-path schema, so this
/// bench writes its own file: the CI gate reads the top-level
/// memory_ratio and scan_speedup (taken from the largest arm).
void WriteJson(const std::vector<ArmResult>& arms) {
  const ArmResult& head = arms.back();
  const char* dir = std::getenv("IDAA_BENCH_JSON_DIR");
  std::string path =
      (dir != nullptr && *dir != '\0' ? std::string(dir) + "/"
                                      : std::string()) +
      "BENCH_compression.json";
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::cerr << "cannot write " << path << "\n";
    return;
  }
  std::fprintf(f,
               "{\n  \"experiment\": \"compression\",\n"
               "  \"rows\": %zu,\n"
               "  \"memory_ratio\": %.2f,\n"
               "  \"scan_speedup\": %.2f,\n"
               "  \"raw_col_bytes\": %zu,\n"
               "  \"encoded_col_bytes\": %zu,\n"
               "  \"hot_rows\": %zu,\n"
               "  \"entries\": [\n",
               head.rows, head.memory_ratio, head.scan_speedup,
               head.raw_col_bytes, head.encoded_col_bytes, head.hot_rows);
  bool first = true;
  for (const ArmResult& arm : arms) {
    for (size_t q = 0; q < std::size(kQueries); ++q) {
      std::fprintf(
          f,
          "%s    {\"query\": \"%s @%zu\", \"rows\": %zu, "
          "\"raw_ms\": %.3f, \"encoded_ms\": %.3f, \"speedup\": %.2f, "
          "\"scan_heavy\": %s}",
          first ? "" : ",\n", kQueries[q].name, arm.rows, arm.rows,
          arm.raw_ms[q], arm.encoded_ms[q],
          arm.encoded_ms[q] > 0 ? arm.raw_ms[q] / arm.encoded_ms[q] : 0.0,
          kQueries[q].scan_heavy ? "true" : "false");
      first = false;
    }
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::cout << "wrote " << path << "\n";
}

void PrintTable() {
  PrintHeader(
      "E11: compressed columnar storage, direct execution on encodings",
      "Claim: GROOM-compacted RLE/FOR zones cost >= 3x less column memory "
      "and\nscan-heavy shapes run >= 2x faster by evaluating per run "
      "instead of per row.");
  std::vector<ArmResult> arms;
  for (size_t rows : {size_t{1000000}, size_t{10000000}}) {
    ArmResult arm = RunArm(rows);
    std::printf("rows = %zu   (raw %zu bytes -> encoded %zu bytes, "
                "%.2fx smaller; hot tail %zu rows)\n",
                arm.rows, arm.raw_col_bytes, arm.encoded_col_bytes,
                arm.memory_ratio, arm.hot_rows);
    std::printf("  %-24s %12s %12s %9s\n", "query", "raw ms", "encoded ms",
                "speedup");
    for (size_t q = 0; q < std::size(kQueries); ++q) {
      std::printf("  %-24s %12.3f %12.3f %8.2fx%s\n", kQueries[q].name,
                  arm.raw_ms[q], arm.encoded_ms[q],
                  arm.encoded_ms[q] > 0 ? arm.raw_ms[q] / arm.encoded_ms[q]
                                        : 0.0,
                  kQueries[q].scan_heavy ? "" : "  (not gated)");
    }
    std::printf("  scan-heavy geomean speedup: %.2fx\n\n", arm.scan_speedup);
    arms.push_back(arm);
  }
  WriteJson(arms);
}

void BM_EncodedScan(benchmark::State& state) {
  static IdaaSystem* system = [] {
    SystemOptions options;
    options.accelerator.enable_encoding = true;
    auto* s = new IdaaSystem(options);
    SeedComp(*s, 1000000);
    s->accelerator().GroomAll();
    return s;
  }();
  const QueryDef& q = kQueries[state.range(0)];
  for (auto _ : state) {
    auto r = system->Execute(q.sql, RawExecOptions());
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(std::string(q.name) + " encoded");
}

BENCHMARK(BM_EncodedScan)
    ->Arg(0)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace idaa::bench

int main(int argc, char** argv) {
  idaa::bench::PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
