// E1 — Multi-stage ELT: accelerator-only tables vs. the legacy
// materialize-in-DB2-and-recopy flow (the paper's core claim: "minimize
// data movement while still exploiting the accelerator").
//
// Sweep: number of pipeline stages k, base table size. For each variant we
// report wall time, bytes crossing the DB2<->accelerator boundary, and rows
// materialized in DB2.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace idaa::bench {
namespace {

/// One transformation stage: filter+project from the previous stage table.
/// Legacy lands the result in DB2 and re-copies it to the accelerator;
/// AOT keeps it on the accelerator.
struct PipelineStats {
  double millis = 0;
  uint64_t boundary_bytes = 0;
  uint64_t db2_rows = 0;
};

PipelineStats RunPipeline(size_t rows, int stages, bool use_aot) {
  IdaaSystem system;
  SeedOrders(system, rows, /*accelerate=*/true);
  MetricsDelta delta(system.metrics());
  WallTimer timer;

  std::string prev = "orders";
  for (int s = 0; s < stages; ++s) {
    std::string table = "stage" + std::to_string(s);
    std::string filter =
        s == 0 ? StrFormat("SELECT cust, SUM(amount) FROM %s GROUP BY cust",
                           prev.c_str())
               : StrFormat("SELECT cust, spend * 1.01 FROM %s "
                           "WHERE spend > %d",
                           prev.c_str(), 5 * s);
    if (use_aot) {
      Must(system, StrFormat("CREATE TABLE %s (cust INT, spend DOUBLE) "
                             "IN ACCELERATOR",
                             table.c_str()));
      Must(system, "INSERT INTO " + table + " " + filter);
    } else {
      Must(system, StrFormat("CREATE TABLE %s (cust INT, spend DOUBLE)",
                             table.c_str()));
      Must(system, "INSERT INTO " + table + " " + filter);
      Must(system, "CALL SYSPROC.ACCEL_ADD_TABLES('" + table + "')");
    }
    prev = table;
  }
  // Final consumption query (always offloaded).
  Must(system, "SELECT COUNT(*), SUM(spend) FROM " + prev);

  PipelineStats stats;
  stats.millis = timer.Millis();
  stats.boundary_bytes = delta.Delta(metric::kFederationBytesToAccel) +
                         delta.Delta(metric::kFederationBytesFromAccel);
  stats.db2_rows = delta.Delta(metric::kDb2RowsMaterialized);
  return stats;
}

void PrintTable() {
  PrintHeader("E1: multi-stage ELT pipeline (legacy vs AOT)",
              "Claim: AOTs eliminate per-stage DB2 materialization and "
              "re-replication;\ndata movement should stay flat with stage "
              "count instead of growing.");
  std::printf("%6s %7s | %12s %16s %10s | %12s %16s %10s | %9s\n", "rows",
              "stages", "legacy ms", "legacy bytes", "db2 rows", "aot ms",
              "aot bytes", "db2 rows", "byte red.");
  for (size_t rows : {10000u, 50000u}) {
    for (int stages : {1, 2, 4, 8}) {
      PipelineStats legacy = RunPipeline(rows, stages, /*use_aot=*/false);
      PipelineStats aot = RunPipeline(rows, stages, /*use_aot=*/true);
      std::printf(
          "%6zu %7d | %12.1f %16llu %10llu | %12.1f %16llu %10llu | %8.1fx\n",
          rows, stages, legacy.millis,
          (unsigned long long)legacy.boundary_bytes,
          (unsigned long long)legacy.db2_rows, aot.millis,
          (unsigned long long)aot.boundary_bytes,
          (unsigned long long)aot.db2_rows,
          legacy.boundary_bytes / std::max<double>(1.0, aot.boundary_bytes));
    }
  }
}

void BM_PipelineLegacy(benchmark::State& state) {
  for (auto _ : state) {
    PipelineStats stats =
        RunPipeline(static_cast<size_t>(state.range(0)),
                    static_cast<int>(state.range(1)), /*use_aot=*/false);
    state.counters["boundary_bytes"] = static_cast<double>(stats.boundary_bytes);
  }
}

void BM_PipelineAot(benchmark::State& state) {
  for (auto _ : state) {
    PipelineStats stats =
        RunPipeline(static_cast<size_t>(state.range(0)),
                    static_cast<int>(state.range(1)), /*use_aot=*/true);
    state.counters["boundary_bytes"] = static_cast<double>(stats.boundary_bytes);
  }
}

BENCHMARK(BM_PipelineLegacy)
    ->Args({10000, 4})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);
BENCHMARK(BM_PipelineAot)
    ->Args({10000, 4})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

}  // namespace
}  // namespace idaa::bench

int main(int argc, char** argv) {
  idaa::bench::PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
