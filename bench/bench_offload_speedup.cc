// E2 — Query offload: analytical queries on the accelerator's columnar,
// zone-map-pruned engine vs. DB2's row-at-a-time volcano engine ("extremely
// fast execution of complex, analytical queries"), plus the crossover for
// short transactional lookups that the ENABLE-mode heuristic protects.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace idaa::bench {
namespace {

struct QueryDef {
  const char* name;
  const char* sql;
};

const QueryDef kQueries[] = {
    {"Q1 full scan agg",
     "SELECT COUNT(*), SUM(amount), AVG(amount) FROM orders"},
    {"Q2 selective filter",
     "SELECT COUNT(*) FROM orders WHERE id BETWEEN 1000 AND 1100"},
    {"Q3 group by region",
     "SELECT region, COUNT(*), SUM(amount) FROM orders GROUP BY region"},
    {"Q4 join + group",
     "SELECT c.tier, COUNT(*), SUM(o.amount) FROM orders o "
     "JOIN customers c ON o.cust = c.cid GROUP BY c.tier"},
    {"Q5 point lookup", "SELECT amount FROM orders WHERE id = 77"},
};

double TimeQuery(IdaaSystem& system, const std::string& sql,
                 federation::AccelerationMode mode, int reps) {
  system.SetAccelerationMode(mode);
  // Warm up once. Caches stay off throughout: this bench times the engine.
  auto warm = system.Execute(sql, RawExecOptions());
  if (!warm.ok()) {
    std::cerr << "query failed: " << sql << ": " << warm.status() << "\n";
    std::exit(1);
  }
  // Best-of-three groups: the single shared CPU makes any one group
  // vulnerable to a scheduling hiccup inflating the mean; the fastest
  // group is the least-disturbed measurement of the same work.
  double best = 0;
  for (int group = 0; group < 3; ++group) {
    WallTimer timer;
    for (int i = 0; i < reps; ++i) {
      auto r = system.Execute(sql, RawExecOptions());
      if (!r.ok()) std::exit(1);
    }
    double ms = timer.Millis() / reps;
    if (group == 0 || ms < best) best = ms;
  }
  return best;
}

void PrintTable() {
  PrintHeader("E2: analytical query offload speedup",
              "Claim: the accelerator wins on analytical shapes (scans, "
              "grouping, joins);\nshort point lookups are better off in "
              "DB2 (the ENABLE heuristic's crossover).");
  BenchJson json("offload");
  for (size_t rows : {20000u, 100000u, 400000u}) {
    IdaaSystem system;
    SeedOrders(system, rows, /*accelerate=*/true);
    SeedCustomers(system, 1000, /*accelerate=*/true);
    std::printf("rows = %zu\n", rows);
    std::printf("  %-22s %12s %12s %12s %9s %9s\n", "query", "db2 ms",
                "accel ms", "row-path ms", "vs db2", "vs row");
    for (const QueryDef& q : kQueries) {
      int reps = rows > 100000 ? 3 : 5;
      double db2 = TimeQuery(system, q.sql,
                             federation::AccelerationMode::kNone, reps);
      // The accelerator paths are orders of magnitude faster than DB2;
      // more reps keep the batch-vs-row ratio from jittering with the host.
      int accel_reps = rows > 100000 ? 10 : 15;
      double accel = TimeQuery(
          system, q.sql, federation::AccelerationMode::kEligible, accel_reps);
      SetBatchPath(system, false);
      double row_path = TimeQuery(
          system, q.sql, federation::AccelerationMode::kEligible, accel_reps);
      SetBatchPath(system, true);
      std::printf("  %-22s %12.3f %12.3f %12.3f %8.2fx %8.2fx\n", q.name, db2,
                  accel, row_path, db2 / accel, row_path / accel);
      json.Add(std::string(q.name) + " @" + std::to_string(rows), rows, db2,
               accel, row_path);
    }
    std::printf("\n");
  }
  json.Write();
}

void BM_OffloadQuery(benchmark::State& state) {
  static IdaaSystem* system = [] {
    auto* s = new IdaaSystem();
    SeedOrders(*s, 100000, true);
    SeedCustomers(*s, 1000, true);
    return s;
  }();
  const QueryDef& q = kQueries[state.range(0)];
  auto mode = state.range(1) ? federation::AccelerationMode::kEligible
                             : federation::AccelerationMode::kNone;
  system->SetAccelerationMode(mode);
  for (auto _ : state) {
    auto r = system->Execute(q.sql, RawExecOptions());
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(std::string(q.name) + (state.range(1) ? " accel" : " db2"));
}

BENCHMARK(BM_OffloadQuery)
    ->Args({0, 0})->Args({0, 1})
    ->Args({2, 0})->Args({2, 1})
    ->Args({3, 0})->Args({3, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace idaa::bench

int main(int argc, char** argv) {
  idaa::bench::PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
