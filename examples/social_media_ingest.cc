// External-data ingestion example: the IDAA Loader streams "social media"
// records (a synthetic tweet feed, standing in for data from applications
// not running on System z) directly into an accelerator-only table, where
// it is joined with enterprise data — the paper's "ingest data from any
// other source directly to the accelerator to enrich analytics" use case.
//
//   $ ./example_social_media_ingest

#include <cstdlib>
#include <iostream>

#include "common/rng.h"
#include "common/string_util.h"
#include "idaa/system.h"
#include "loader/record_source.h"

using idaa::IdaaSystem;
using idaa::Rng;
using idaa::Row;
using idaa::Schema;
using idaa::StrFormat;
using idaa::Value;

namespace {

void Must(IdaaSystem& system, const std::string& sql) {
  auto r = system.Execute(sql);
  if (!r.ok()) {
    std::cerr << "FAILED: " << sql << "\n  " << r.status() << "\n";
    std::exit(1);
  }
}

}  // namespace

int main() {
  IdaaSystem system;

  // Enterprise data lives in DB2 and is accelerated the classic way.
  Must(system, "CREATE TABLE products (pid INT NOT NULL, name VARCHAR, "
               "revenue DOUBLE)");
  const char* names[] = {"espresso", "latte", "muffin", "bagel", "juice"};
  Rng seed_rng(3);
  for (int p = 0; p < 5; ++p) {
    Must(system, StrFormat("INSERT INTO products VALUES (%d, '%s', %.2f)", p,
                           names[p], seed_rng.UniformDouble(1000, 9000)));
  }
  Must(system, "CALL SYSPROC.ACCEL_ADD_TABLES('products')");

  // The social feed table is accelerator-only: the mainframe never stores
  // (or pays for) this data.
  Must(system, "CREATE TABLE mentions (pid INT, username VARCHAR, "
               "sentiment DOUBLE, posted TIMESTAMP) IN ACCELERATOR "
               "DISTRIBUTE BY (pid)");

  // Stream 20k synthetic mentions through the loader, batch-committed.
  Schema feed_schema({{"PID", idaa::DataType::kInteger, true},
                      {"USERNAME", idaa::DataType::kVarchar, true},
                      {"SENTIMENT", idaa::DataType::kDouble, true},
                      {"POSTED", idaa::DataType::kTimestamp, true}});
  Rng rng(11);
  idaa::loader::GeneratorSource feed(feed_schema, 20000, [&](size_t i) {
    int64_t pid = rng.Uniform(0, 4);
    // Product 2 (muffin) is having a bad week on social media.
    double sentiment = pid == 2 ? rng.Gaussian(-0.4, 0.3)
                                : rng.Gaussian(0.3, 0.3);
    return Row{Value::Integer(pid),
               Value::Varchar("user_" + std::to_string(rng.Uniform(1, 5000))),
               Value::Double(sentiment),
               Value::Timestamp(1456000000000000LL +
                                static_cast<int64_t>(i) * 1000000)};
  });
  idaa::loader::LoadOptions options;
  options.batch_size = 2048;
  auto report = system.loader().Load("mentions", &feed, options);
  if (!report.ok()) {
    std::cerr << "load failed: " << report.status() << "\n";
    return 1;
  }
  std::cout << StrFormat(
      "loader: %zu rows in %zu batches (%zu payload bytes), "
      "db2 rows touched: %llu\n\n",
      report->rows_loaded, report->batches, report->bytes,
      (unsigned long long)system.metrics().Get(
          idaa::metric::kDb2RowsMaterialized));

  // Join the external feed with enterprise data — on the accelerator.
  auto rs = system.Query(
      "SELECT p.name, COUNT(*) AS mentions, AVG(m.sentiment) AS avg_sent, "
      "p.revenue "
      "FROM mentions m JOIN products p ON m.pid = p.pid "
      "GROUP BY p.name, p.revenue ORDER BY avg_sent");
  if (!rs.ok()) {
    std::cerr << "join failed: " << rs.status() << "\n";
    return 1;
  }
  std::cout << "brand sentiment vs revenue (accelerator join):\n"
            << rs->ToString() << "\n";

  // Distill the feed into a compact AOT for downstream dashboards.
  Must(system, "CREATE TABLE sentiment_daily (pid INT, n INT, avg_sent "
               "DOUBLE) IN ACCELERATOR");
  Must(system, "INSERT INTO sentiment_daily SELECT pid, COUNT(*), "
               "AVG(sentiment) FROM mentions GROUP BY pid");
  auto compact = system.Query(
      "SELECT * FROM sentiment_daily ORDER BY avg_sent");
  std::cout << "distilled AOT:\n" << compact->ToString() << "\n";

  std::cout << "boundary bytes to accelerator: "
            << system.metrics().Get(idaa::metric::kFederationBytesToAccel)
            << " (loader payload only — nothing re-replicated)\n";
  return 0;
}
