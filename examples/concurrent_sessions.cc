// Concurrent sessions example: two connections against one IDAA deployment
// demonstrate the paper's transaction-context rules through plain SQL —
// an ELT writer building AOT stages inside one long transaction (seeing its
// own uncommitted intermediates) while a dashboard reader keeps getting a
// stable snapshot, and a rollback that erases the writer's work from both
// engines.
//
//   $ ./example_concurrent_sessions

#include <cstdlib>
#include <iostream>

#include "idaa/system.h"

using idaa::Connection;
using idaa::IdaaSystem;

namespace {

void Must(Connection& conn, const std::string& sql, const char* who) {
  auto r = conn.Execute(sql);
  if (!r.ok()) {
    std::cerr << who << " FAILED: " << sql << "\n  " << r.status() << "\n";
    std::exit(1);
  }
  std::cout << "[" << who << "] " << sql << "\n";
}

int64_t Count(Connection& conn, const std::string& table, const char* who) {
  auto rs = conn.Query("SELECT COUNT(*) FROM " + table);
  if (!rs.ok()) {
    std::cerr << who << " count failed: " << rs.status() << "\n";
    std::exit(1);
  }
  int64_t n = rs->At(0, 0).AsInteger();
  std::cout << "[" << who << "] COUNT(*) FROM " << table << " -> " << n
            << "\n";
  return n;
}

}  // namespace

int main() {
  IdaaSystem system;
  auto etl = system.NewConnection();       // the pipeline writer
  auto dashboard = system.NewConnection(); // a concurrent reader

  Must(*etl, "CREATE TABLE events (id INT NOT NULL, kind VARCHAR, "
             "amount DOUBLE) IN ACCELERATOR", "etl");
  Must(*etl, "INSERT INTO events VALUES (1, 'order', 10.0), "
             "(2, 'order', 20.0), (3, 'refund', -5.0)", "etl");

  std::cout << "\n-- the ETL transaction builds a staging AOT; its own\n"
               "-- uncommitted rows are visible to it, but not to the "
               "dashboard --\n";
  Must(*etl, "BEGIN", "etl");
  Must(*etl, "CREATE TABLE staging (kind VARCHAR, total DOUBLE) "
             "IN ACCELERATOR", "etl");
  Must(*etl, "INSERT INTO staging SELECT kind, SUM(amount) FROM events "
             "GROUP BY kind", "etl");
  int64_t writer_sees = Count(*etl, "staging", "etl");
  int64_t reader_sees = Count(*dashboard, "staging", "dashboard");
  std::cout << "   (writer sees " << writer_sees << ", dashboard sees "
            << reader_sees << " — snapshot isolation)\n\n";

  std::cout << "-- more rows arrive while the ETL transaction is open; the\n"
               "-- transaction's snapshot stays stable --\n";
  Must(*dashboard, "INSERT INTO events VALUES (4, 'order', 40.0)",
       "dashboard");
  Must(*etl, "INSERT INTO staging SELECT kind, SUM(amount) FROM events "
             "WHERE id = 4 GROUP BY kind", "etl");
  // The id=4 row committed after the ETL snapshot: the stage adds nothing.
  Count(*etl, "staging", "etl");

  std::cout << "\n-- something went wrong: roll back; the staging rows "
               "vanish --\n";
  Must(*etl, "ROLLBACK", "etl");
  Count(*dashboard, "staging", "dashboard");

  std::cout << "\n-- second attempt with a fresh snapshot commits --\n";
  Must(*etl, "BEGIN", "etl");
  Must(*etl, "INSERT INTO staging SELECT kind, SUM(amount) FROM events "
             "GROUP BY kind", "etl");
  Must(*etl, "COMMIT", "etl");
  Count(*dashboard, "staging", "dashboard");
  auto rs = dashboard->Query("SELECT kind, total FROM staging ORDER BY kind");
  std::cout << "\nfinal staging contents:\n" << rs->ToString();

  std::cout << "\n-- the dashboard's repeated query is a prepared statement;\n"
               "-- after the first execution the result cache serves it --\n";
  auto panel = dashboard->Prepare(
      "SELECT total FROM staging WHERE kind = ?");
  if (!panel.ok()) {
    std::cerr << "prepare failed: " << panel.status() << "\n";
    return 1;
  }
  for (int refresh = 0; refresh < 3; ++refresh) {
    auto r = panel->Execute({idaa::Value::Varchar("order")});
    if (!r.ok()) {
      std::cerr << "panel refresh failed: " << r.status() << "\n";
      return 1;
    }
    std::cout << "[dashboard] refresh " << refresh << ": total="
              << r->rows.At(0, 0).AsDouble()
              << " (result_cache=" << r->result_cache << ")\n";
  }
  return 0;
}
