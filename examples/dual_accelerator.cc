// Dual-accelerator example: a DB2 with two attached accelerators —
// explicit and balanced table placement, queries routed to the hosting
// accelerator, cross-accelerator data movement costs, and taking an
// accelerator offline for maintenance.
//
//   $ ./example_dual_accelerator

#include <cstdlib>
#include <iostream>

#include "idaa/system.h"

using idaa::IdaaSystem;

namespace {

void Run(IdaaSystem& system, const std::string& sql) {
  auto r = system.Execute(sql);
  if (!r.ok()) {
    std::cout << "   !! " << sql << "\n      -> " << r.status() << "\n";
    return;
  }
  std::cout << "   ok " << sql;
  if (!r->detail.empty()) std::cout << "   [" << r->detail << "]";
  std::cout << "\n";
  if (r->rows.NumRows() > 0) std::cout << r->rows.ToString();
}

}  // namespace

int main() {
  idaa::SystemOptions options;
  options.num_accelerators = 2;
  IdaaSystem system(options);

  std::cout << "== placement: explicit targets and balancing ==\n";
  Run(system, "CREATE TABLE eu_sales (id INT NOT NULL, amount DOUBLE) "
              "IN ACCELERATOR accel1");
  Run(system, "CREATE TABLE us_sales (id INT NOT NULL, amount DOUBLE) "
              "IN ACCELERATOR accel2");
  Run(system, "INSERT INTO eu_sales VALUES (1, 100.0), (2, 150.0)");
  Run(system, "INSERT INTO us_sales VALUES (1, 300.0), (2, 250.0)");
  std::cout << "   ACCEL1 hosts " << system.accelerator(0).NumTables()
            << " table(s), ACCEL2 hosts " << system.accelerator(1).NumTables()
            << "\n\n";

  std::cout << "== queries run on the hosting accelerator ==\n";
  Run(system, "SELECT SUM(amount) AS eu_total FROM eu_sales");
  Run(system, "SELECT SUM(amount) AS us_total FROM us_sales");

  std::cout << "\n== joining across accelerators is rejected (as in the "
               "product) ==\n";
  Run(system, "SELECT COUNT(*) FROM eu_sales e JOIN us_sales u "
              "ON e.id = u.id");

  std::cout << "\n== but INSERT ... SELECT can move data between them "
               "(two boundary crossings) ==\n";
  Run(system, "CREATE TABLE world_sales (id INT NOT NULL, amount DOUBLE) "
              "IN ACCELERATOR accel1");
  Run(system, "INSERT INTO world_sales SELECT id, amount FROM eu_sales");
  Run(system, "INSERT INTO world_sales SELECT id, amount FROM us_sales");
  Run(system, "SELECT COUNT(*) AS rows_combined, SUM(amount) FROM world_sales");

  std::cout << "\n== maintenance: take ACCEL2 offline ==\n";
  Run(system, "CALL SYSPROC.ACCEL_CONTROL('ACCEL2', 'OFFLINE')");
  Run(system, "SELECT COUNT(*) FROM us_sales");
  Run(system, "SELECT COUNT(*) FROM eu_sales");  // unaffected
  Run(system, "CALL SYSPROC.ACCEL_CONTROL('ACCEL2', 'ONLINE')");
  Run(system, "SELECT COUNT(*) FROM us_sales");

  std::cout << "\n== catalog view ==\n";
  Run(system, "CALL SYSPROC.ACCEL_GET_TABLES_INFO()");
  return 0;
}
