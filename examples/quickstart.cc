// Quickstart: bring up an embedded IDAA deployment, create tables, add one
// to the accelerator, create an accelerator-only table, and run queries —
// watching where each statement executes.
//
//   $ ./example_quickstart

#include <cstdlib>
#include <iostream>

#include "idaa/system.h"

namespace {

void Run(idaa::IdaaSystem& system, const std::string& sql) {
  auto result = system.Execute(sql);
  if (!result.ok()) {
    std::cerr << "FAILED: " << sql << "\n  " << result.status() << "\n";
    std::exit(1);
  }
  const char* where =
      result->routed_to == idaa::federation::Target::kAccelerator
          ? "[accelerator]"
          : "[DB2]       ";
  std::cout << where << " " << sql << "\n";
  if (result->rows.NumRows() > 0) {
    std::cout << result->rows.ToString() << "\n";
  }
}

}  // namespace

int main() {
  idaa::IdaaSystem system;

  std::cout << "== 1. Regular DB2 tables ==\n";
  Run(system, "CREATE TABLE sales (id INT NOT NULL, region VARCHAR, "
              "amount DOUBLE, sold DATE)");
  Run(system, "INSERT INTO sales VALUES "
              "(1, 'NORTH', 120.0, DATE '2016-01-10'), "
              "(2, 'SOUTH', 340.5, DATE '2016-01-11'), "
              "(3, 'NORTH', 98.25, DATE '2016-02-01'), "
              "(4, 'EAST',  410.0, DATE '2016-02-03'), "
              "(5, 'SOUTH', 77.7,  DATE '2016-02-05')");
  Run(system, "SELECT * FROM sales WHERE amount > 100 ORDER BY amount DESC");

  std::cout << "\n== 2. Accelerate the table (snapshot copied over) ==\n";
  Run(system, "CALL SYSPROC.ACCEL_ADD_TABLES('sales')");
  Run(system, "SELECT region, COUNT(*) AS n, SUM(amount) AS total "
              "FROM sales GROUP BY region ORDER BY total DESC");

  std::cout << "\n== 3. Accelerator-only table (AOT): DB2 keeps only a "
               "proxy ==\n";
  Run(system, "CREATE TABLE region_totals IN ACCELERATOR AS "
              "SELECT region, SUM(amount) AS total FROM sales "
              "GROUP BY region");
  Run(system, "SELECT * FROM region_totals ORDER BY total DESC");

  std::cout << "\n== 3b. EXPLAIN shows routing and access paths ==\n";
  Run(system, "EXPLAIN SELECT region, AVG(amount) FROM sales GROUP BY region");
  Run(system, "SET CURRENT QUERY ACCELERATION = ENABLE");
  Run(system, "EXPLAIN SELECT amount FROM sales WHERE id = 3");
  Run(system, "SET CURRENT QUERY ACCELERATION = ELIGIBLE");

  std::cout << "\n== 4. Transactions span both engines ==\n";
  Run(system, "BEGIN");
  Run(system, "INSERT INTO region_totals VALUES ('ONLINE', 999.0)");
  Run(system, "SELECT COUNT(*) AS visible_inside_txn FROM region_totals");
  Run(system, "ROLLBACK");
  Run(system, "SELECT COUNT(*) AS visible_after_rollback FROM region_totals");

  std::cout << "\n== 5. Prepared statements and the statement caches ==\n";
  // Prepare parses once; every Execute binds new parameters against the
  // cached template. Repeated SELECTs are also served from the result cache
  // until a write to the table evicts them.
  auto lookup = system.Prepare("SELECT amount FROM sales WHERE id = ?");
  if (!lookup.ok()) {
    std::cerr << "prepare failed: " << lookup.status() << "\n";
    return 1;
  }
  for (int id : {1, 3, 5, 3}) {
    auto r = lookup->Execute({idaa::Value::Integer(id)});
    if (!r.ok()) {
      std::cerr << "execute failed: " << r.status() << "\n";
      return 1;
    }
    std::cout << "  id=" << id << " amount=" << r->rows.At(0, 0).AsDouble()
              << "  (plan_cache=" << r->plan_cache
              << ", result_cache=" << r->result_cache << ")\n";
  }

  std::cout << "\n== 6. Data-movement accounting ==\n";
  std::cout << system.metrics().ToString();
  return 0;
}
