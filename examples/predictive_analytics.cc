// Predictive-analytics example: an SPSS-style pipeline executed entirely
// in-database on the accelerator — data preparation (impute, normalize),
// clustering (k-means), then a regression per the discovered segments,
// with every intermediate result held in accelerator-only tables and
// governance enforced for a non-admin analyst user.
//
//   $ ./example_predictive_analytics

#include <cstdlib>
#include <iostream>

#include "common/rng.h"
#include "common/string_util.h"
#include "idaa/system.h"

using idaa::IdaaSystem;
using idaa::Rng;
using idaa::StrFormat;

namespace {

void Must(IdaaSystem& system, const std::string& sql,
          bool print_result = false) {
  auto r = system.Execute(sql);
  if (!r.ok()) {
    std::cerr << "FAILED: " << sql << "\n  " << r.status() << "\n";
    std::exit(1);
  }
  if (print_result && r->rows.NumRows() > 0) {
    std::cout << r->rows.ToString() << "\n";
  }
}

}  // namespace

int main() {
  IdaaSystem system;

  // --- admin: land customer behaviour data and accelerate it --------------
  Must(system, "CREATE TABLE customers (cid INT NOT NULL, visits DOUBLE, "
               "basket DOUBLE, tenure DOUBLE)");
  Rng rng(7);
  for (int i = 0; i < 600; ++i) {
    // Two behavioural segments + 5% missing visit counts.
    bool loyal = i % 2 == 0;
    double visits = loyal ? rng.Gaussian(40, 5) : rng.Gaussian(5, 2);
    double basket = loyal ? rng.Gaussian(80, 10) : rng.Gaussian(25, 8);
    double tenure = loyal ? rng.Gaussian(48, 12) : rng.Gaussian(8, 4);
    std::string visits_text =
        i % 20 == 19 ? "NULL" : StrFormat("%.2f", visits);
    Must(system, StrFormat("INSERT INTO customers VALUES (%d, %s, %.2f, %.2f)",
                           i, visits_text.c_str(), basket, tenure));
  }
  Must(system, "CALL SYSPROC.ACCEL_ADD_TABLES('customers')");

  // --- admin: provision the analyst -----------------------------------------
  Must(system, "GRANT SELECT ON customers TO analyst");
  for (const char* op : {"IMPUTE", "NORMALIZE", "KMEANS", "LINREG"}) {
    Must(system, StrFormat("GRANT EXECUTE ON IDAA.%s TO analyst", op));
  }

  // --- analyst: multi-stage mining pipeline, all on the accelerator --------
  system.SetUser("analyst");
  std::cout << "stage 1: impute missing visit counts\n";
  Must(system,
       "CALL IDAA.IMPUTE('input=customers', 'output=c_filled', "
       "'columns=visits')",
       true);

  std::cout << "stage 2: z-score normalize the features\n";
  Must(system,
       "CALL IDAA.NORMALIZE('input=c_filled', 'output=c_norm', "
       "'columns=visits,basket,tenure')",
       true);

  std::cout << "stage 3: discover behavioural segments (k-means, k=2)\n";
  Must(system,
       "CALL IDAA.KMEANS('input=c_norm', 'output=segments', "
       "'columns=visits,basket,tenure', 'k=2', 'seed=13', "
       "'centroids_output=centers')",
       true);
  Must(system,
       "SELECT cluster, COUNT(*) AS customers FROM segments "
       "GROUP BY cluster ORDER BY cluster",
       true);

  std::cout << "stage 4: basket value model per segment (OLS)\n";
  Must(system, "CREATE TABLE seg0 (visits DOUBLE, basket DOUBLE, "
               "tenure DOUBLE) IN ACCELERATOR");
  Must(system, "INSERT INTO seg0 SELECT visits, basket, tenure FROM segments "
               "WHERE cluster = 0");
  Must(system,
       "CALL IDAA.LINREG('input=seg0', 'target=basket', "
       "'columns=visits,tenure', 'output=seg0_preds')",
       true);

  // --- the analyst cannot escape governance --------------------------------
  std::cout << "governance check: analyst reading an unauthorized table\n";
  auto denied = system.Execute("SELECT * FROM centers");
  if (denied.ok()) {
    // centers was created by the analyst via KMEANS, so this succeeds;
    // try a table the analyst never got access to instead.
  }
  system.SetUser(idaa::governance::AuthorizationManager::kAdmin);
  Must(system, "CREATE TABLE payroll (cid INT, salary DOUBLE)");
  system.SetUser("analyst");
  auto forbidden = system.Execute("SELECT * FROM payroll");
  std::cout << "  SELECT * FROM payroll -> "
            << forbidden.status().ToString() << "\n\n";

  system.SetUser(idaa::governance::AuthorizationManager::kAdmin);
  std::cout << "audit trail (last 5 entries):\n";
  auto entries = system.audit().Entries();
  size_t start = entries.size() > 5 ? entries.size() - 5 : 0;
  for (size_t i = start; i < entries.size(); ++i) {
    std::cout << StrFormat("  #%llu %-8s %-20s %-14s %s\n",
                           (unsigned long long)entries[i].sequence,
                           entries[i].user.c_str(), entries[i].action.c_str(),
                           entries[i].object.c_str(),
                           entries[i].allowed ? "ALLOWED" : "DENIED");
  }
  return 0;
}
