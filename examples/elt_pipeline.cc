// ELT pipeline example: the paper's headline use case. A four-stage
// transformation chain runs twice —
//   (a) legacy style: every intermediate result materializes in a DB2 table
//       and is re-replicated to the accelerator before the next stage;
//   (b) AOT style: every intermediate lives in an accelerator-only table,
//       so stages chain on the accelerator with no data movement.
// The example prints the wall time and the bytes that crossed the
// DB2 <-> accelerator boundary for each variant.
//
//   $ ./example_elt_pipeline

#include <chrono>
#include <cstdlib>
#include <iostream>

#include "common/rng.h"
#include "common/string_util.h"
#include "idaa/system.h"

using idaa::IdaaSystem;
using idaa::MetricsDelta;
using idaa::Rng;
using idaa::StrFormat;

namespace {

void Must(IdaaSystem& system, const std::string& sql) {
  auto r = system.Execute(sql);
  if (!r.ok()) {
    std::cerr << "FAILED: " << sql << "\n  " << r.status() << "\n";
    std::exit(1);
  }
}

void SeedOrders(IdaaSystem& system, int rows) {
  Must(system, "CREATE TABLE orders (id INT NOT NULL, cust INT, "
               "amount DOUBLE, region VARCHAR)");
  Rng rng(42);
  const char* regions[] = {"NORTH", "SOUTH", "EAST", "WEST"};
  for (int i = 0; i < rows; ++i) {
    Must(system, StrFormat("INSERT INTO orders VALUES (%d, %d, %.2f, '%s')",
                           i, static_cast<int>(rng.Uniform(0, 200)),
                           rng.UniformDouble(1, 1000),
                           regions[rng.Uniform(0, 3)]));
  }
  Must(system, "CALL SYSPROC.ACCEL_ADD_TABLES('orders')");
}

/// Legacy: stages land in DB2 tables; each must be ACCEL_ADD'ed (full
/// re-copy) before the accelerator can read it for the next stage.
void RunLegacy(IdaaSystem& system) {
  Must(system, "CREATE TABLE s1 (cust INT, spend DOUBLE)");
  Must(system, "INSERT INTO s1 SELECT cust, SUM(amount) FROM orders "
               "GROUP BY cust");
  Must(system, "CALL SYSPROC.ACCEL_ADD_TABLES('s1')");

  Must(system, "CREATE TABLE s2 (cust INT, spend DOUBLE)");
  Must(system, "INSERT INTO s2 SELECT cust, spend FROM s1 WHERE spend > 500");
  Must(system, "CALL SYSPROC.ACCEL_ADD_TABLES('s2')");

  Must(system, "CREATE TABLE s3 (bucket INT, n INT, total DOUBLE)");
  Must(system, "INSERT INTO s3 SELECT CAST(spend / 1000 AS INTEGER), "
               "COUNT(*), SUM(spend) FROM s2 GROUP BY "
               "CAST(spend / 1000 AS INTEGER)");
}

/// AOT: stages are accelerator-only tables; INSERT ... SELECT never leaves
/// the accelerator.
void RunAot(IdaaSystem& system) {
  Must(system, "CREATE TABLE a1 (cust INT, spend DOUBLE) IN ACCELERATOR");
  Must(system, "INSERT INTO a1 SELECT cust, SUM(amount) FROM orders "
               "GROUP BY cust");
  Must(system, "CREATE TABLE a2 (cust INT, spend DOUBLE) IN ACCELERATOR");
  Must(system, "INSERT INTO a2 SELECT cust, spend FROM a1 WHERE spend > 500");
  Must(system, "CREATE TABLE a3 (bucket INT, n INT, total DOUBLE) "
               "IN ACCELERATOR");
  Must(system, "INSERT INTO a3 SELECT CAST(spend / 1000 AS INTEGER), "
               "COUNT(*), SUM(spend) FROM a2 GROUP BY "
               "CAST(spend / 1000 AS INTEGER)");
}

struct RunStats {
  double millis;
  uint64_t boundary_bytes;
  uint64_t db2_rows_materialized;
};

template <typename Fn>
RunStats Measure(IdaaSystem& system, Fn fn) {
  MetricsDelta delta(system.metrics());
  auto start = std::chrono::steady_clock::now();
  fn(system);
  auto end = std::chrono::steady_clock::now();
  RunStats stats;
  stats.millis =
      std::chrono::duration<double, std::milli>(end - start).count();
  stats.boundary_bytes =
      delta.Delta(idaa::metric::kFederationBytesToAccel) +
      delta.Delta(idaa::metric::kFederationBytesFromAccel);
  stats.db2_rows_materialized =
      delta.Delta(idaa::metric::kDb2RowsMaterialized);
  return stats;
}

}  // namespace

int main() {
  const int kRows = 5000;
  IdaaSystem system;
  SeedOrders(system, kRows);

  RunStats legacy = Measure(system, RunLegacy);
  RunStats aot = Measure(system, RunAot);

  // Both variants must compute the same final answer.
  auto legacy_rs = system.Query("SELECT COUNT(*), SUM(total) FROM s3");
  auto aot_rs = system.Query("SELECT COUNT(*), SUM(total) FROM a3");
  if (!legacy_rs.ok() || !aot_rs.ok()) {
    std::cerr << "verification query failed\n";
    return 1;
  }
  std::cout << "final stage (legacy): " << legacy_rs->ToString();
  std::cout << "final stage (AOT):    " << aot_rs->ToString() << "\n";

  std::cout << StrFormat(
      "%-28s %12s %18s %16s\n", "pipeline variant", "wall ms",
      "boundary bytes", "db2 rows mat.");
  std::cout << StrFormat("%-28s %12.2f %18llu %16llu\n",
                         "legacy (materialize+recopy)", legacy.millis,
                         (unsigned long long)legacy.boundary_bytes,
                         (unsigned long long)legacy.db2_rows_materialized);
  std::cout << StrFormat("%-28s %12.2f %18llu %16llu\n", "AOT (stay on accel)",
                         aot.millis, (unsigned long long)aot.boundary_bytes,
                         (unsigned long long)aot.db2_rows_materialized);
  std::cout << StrFormat(
      "\nAOT moved %.1fx fewer bytes across the DB2<->accelerator link.\n",
      legacy.boundary_bytes / std::max(1.0, (double)aot.boundary_bytes));
  return 0;
}
