// Concurrent-session stress suite: several connections hammer one
// IdaaSystem with mixed DML on an accelerated table, AOT writes, reads,
// concurrent GROOM passes and replication batch applies. Invariants:
// no lost updates (final counts equal the number of successful writes on
// both the DB2 and the accelerator route) and snapshot-consistent reads
// (two COUNT(*) in one transaction agree). Built to run clean under
// -DIDAA_SANITIZE=thread.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "accel/sharded_accelerator.h"
#include "common/string_util.h"
#include "idaa/system.h"
#include "loader/record_source.h"

namespace idaa {
namespace {

using federation::AccelerationMode;

// Retry kConflict (lock timeouts under contention) and the retryable fault
// codes (kUnavailable/kChannelError/kTimeout — accelerator outages); any
// terminal error is fatal. Returns whether the statement eventually
// succeeded.
bool ExecuteWithRetry(Connection* conn, const std::string& sql,
                      int max_attempts = 20) {
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    auto result = conn->Execute(sql);
    if (result.ok()) return true;
    if (result.status().code() != StatusCode::kConflict &&
        !result.status().retryable()) {
      ADD_FAILURE() << "unexpected failure for '" << sql
                    << "': " << result.status().ToString();
      return false;
    }
    std::this_thread::yield();
  }
  return false;
}

TEST(ConcurrentStressTest, MixedWorkloadKeepsCountsAndSnapshots) {
  SystemOptions options;
  options.accelerator.num_slices = 4;
  options.replication_batch_size = 8;  // frequent auto-applies under load
  IdaaSystem system(options);

  ASSERT_TRUE(system.Execute("CREATE TABLE acc (id INT, v INT)").ok());
  ASSERT_TRUE(system.Execute("INSERT INTO acc VALUES (0, 0)").ok());
  ASSERT_TRUE(system.Execute("CALL SYSPROC.ACCEL_ADD_TABLES('acc')").ok());
  ASSERT_TRUE(
      system.Execute("CREATE TABLE aot (id INT, v INT) IN ACCELERATOR")
          .ok());
  ASSERT_TRUE(system.Execute("INSERT INTO aot VALUES (0, 0)").ok());

  constexpr int kWriters = 2;
  constexpr int kInsertsPerWriter = 40;
  constexpr int kAotInserts = 60;
  constexpr int kReaderIterations = 25;

  std::atomic<size_t> acc_inserted{0};
  std::atomic<size_t> aot_inserted{0};
  std::atomic<size_t> acc_updates{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;

  // Writers: disjoint id ranges into the accelerated (DB2-resident) table.
  // Lock contention surfaces as kConflict and is retried; only successful
  // statements count toward the invariant.
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&system, &acc_inserted, &acc_updates, w] {
      auto conn = system.NewConnection();
      for (int i = 0; i < kInsertsPerWriter; ++i) {
        int id = 1000 * (w + 1) + i;
        if (ExecuteWithRetry(conn.get(),
                             "INSERT INTO acc VALUES (" + std::to_string(id) +
                                 ", " + std::to_string(i) + ")")) {
          acc_inserted.fetch_add(1);
        }
        if (i % 8 == 0 &&
            ExecuteWithRetry(conn.get(),
                             "UPDATE acc SET v = v + 1 WHERE id = " +
                                 std::to_string(id))) {
          acc_updates.fetch_add(1);
        }
      }
    });
  }

  // AOT writer: slice-parallel MVCC path, no DB2 locks involved.
  threads.emplace_back([&system, &aot_inserted] {
    auto conn = system.NewConnection();
    for (int i = 0; i < kAotInserts; ++i) {
      if (ExecuteWithRetry(conn.get(),
                           "INSERT INTO aot VALUES (" + std::to_string(i + 1) +
                               ", " + std::to_string(i) + ")")) {
        aot_inserted.fetch_add(1);
      }
    }
  });

  // Readers: snapshot consistency — two COUNT(*) inside one transaction
  // must agree no matter what commits in between.
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&system] {
      auto conn = system.NewConnection();
      for (int i = 0; i < kReaderIterations; ++i) {
        ASSERT_TRUE(conn->Begin().ok());
        auto first = conn->Query("SELECT COUNT(*) FROM aot");
        auto second = conn->Query("SELECT COUNT(*) FROM aot");
        ASSERT_TRUE(first.ok()) << first.status().ToString();
        ASSERT_TRUE(second.ok()) << second.status().ToString();
        EXPECT_EQ(first->At(0, 0).AsInteger(), second->At(0, 0).AsInteger())
            << "snapshot moved inside one transaction";
        ASSERT_TRUE(conn->Commit().ok());
      }
    });
  }

  // Groomer: space reclamation races the scans and the replication applies.
  threads.emplace_back([&system, &stop] {
    auto conn = system.NewConnection();
    while (!stop.load()) {
      ASSERT_TRUE(conn->Execute("CALL SYSPROC.ACCEL_GROOM()").ok());
      std::this_thread::yield();
    }
  });

  // Flusher: drains captured changes concurrently with the auto-applies
  // triggered from commit listeners.
  threads.emplace_back([&system, &stop] {
    while (!stop.load()) {
      auto stats = system.replication().Flush();
      ASSERT_TRUE(stats.ok()) << stats.status().ToString();
      std::this_thread::yield();
    }
  });

  for (size_t t = 0; t + 2 < threads.size(); ++t) threads[t].join();
  stop.store(true);
  threads[threads.size() - 2].join();
  threads[threads.size() - 1].join();

  // Everything the writers managed to commit (no retries exhausted).
  EXPECT_EQ(acc_inserted.load(), size_t{kWriters * kInsertsPerWriter});
  EXPECT_EQ(aot_inserted.load(), size_t{kAotInserts});

  // Drain replication fully, then check both routes agree with the
  // successful-write counts: no lost updates on either side.
  ASSERT_TRUE(system.replication().Flush().ok());
  EXPECT_EQ(system.replication().PendingChanges(), 0u);

  const auto expected_acc =
      static_cast<int64_t>(1 + acc_inserted.load());  // seed row + inserts
  system.SetAccelerationMode(AccelerationMode::kNone);
  auto db2_count = system.Query("SELECT COUNT(*) FROM acc");
  ASSERT_TRUE(db2_count.ok()) << db2_count.status().ToString();
  EXPECT_EQ(db2_count->At(0, 0).AsInteger(), expected_acc);

  system.SetAccelerationMode(AccelerationMode::kAll);
  auto accel_count = system.Query("SELECT COUNT(*) FROM acc");
  ASSERT_TRUE(accel_count.ok()) << accel_count.status().ToString();
  EXPECT_EQ(accel_count->At(0, 0).AsInteger(), expected_acc);

  // The update increments survived replication too: v sums agree.
  system.SetAccelerationMode(AccelerationMode::kNone);
  auto db2_sum = system.Query("SELECT SUM(v) FROM acc");
  system.SetAccelerationMode(AccelerationMode::kAll);
  auto accel_sum = system.Query("SELECT SUM(v) FROM acc");
  ASSERT_TRUE(db2_sum.ok() && accel_sum.ok());
  EXPECT_EQ(db2_sum->At(0, 0).AsInteger(), accel_sum->At(0, 0).AsInteger());

  auto aot_count = system.Query("SELECT COUNT(*) FROM aot");
  ASSERT_TRUE(aot_count.ok());
  EXPECT_EQ(aot_count->At(0, 0).AsInteger(),
            static_cast<int64_t>(1 + aot_inserted.load()));
}

TEST(ConcurrentStressTest, RandomOutagesUnderFailbackNeverSurfaceErrors) {
  // An outage thread flips the accelerator OFFLINE/ONLINE while writers
  // keep inserting into the DB2 side of an accelerated table and readers
  // run under ENABLE WITH FAILBACK. Invariants: failback readers never see
  // an error, replication never loses the backlog, and after the final
  // ONLINE + Flush both routes agree and ACCEL_VERIFY_TABLES converges.
  SystemOptions options;
  options.accelerator.num_slices = 4;
  options.replication_batch_size = 8;
  IdaaSystem system(options);

  ASSERT_TRUE(system.Execute("CREATE TABLE acc (id INT, v INT)").ok());
  ASSERT_TRUE(system.Execute("INSERT INTO acc VALUES (0, 0)").ok());
  ASSERT_TRUE(system.Execute("CALL SYSPROC.ACCEL_ADD_TABLES('acc')").ok());

  constexpr int kWriters = 2;
  constexpr int kInsertsPerWriter = 40;
  constexpr int kReaderIterations = 40;
  constexpr int kOutageCycles = 12;

  std::atomic<size_t> acc_inserted{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;

  // Writers: the DB2 side stays writable through every outage.
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&system, &acc_inserted, w] {
      auto conn = system.NewConnection();
      for (int i = 0; i < kInsertsPerWriter; ++i) {
        int id = 1000 * (w + 1) + i;
        if (ExecuteWithRetry(conn.get(),
                             "INSERT INTO acc VALUES (" + std::to_string(id) +
                                 ", " + std::to_string(i) + ")")) {
          acc_inserted.fetch_add(1);
        }
      }
    });
  }

  // Failback readers: ENABLE WITH FAILBACK must absorb every outage — an
  // error here is a test failure, not a retry.
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&system] {
      auto conn = system.NewConnection();
      conn->SetAccelerationMode(AccelerationMode::kEnableWithFailback);
      for (int i = 0; i < kReaderIterations; ++i) {
        auto rs = conn->Query("SELECT COUNT(*), SUM(v) FROM acc");
        ASSERT_TRUE(rs.ok()) << "failback reader saw an error: "
                             << rs.status().ToString();
      }
    });
  }

  // Flusher: replication apply may fail with a retryable error while the
  // accelerator is away, but must never lose changes or fail terminally.
  threads.emplace_back([&system, &stop] {
    while (!stop.load()) {
      auto stats = system.replication().Flush();
      if (!stats.ok()) {
        ASSERT_TRUE(stats.status().retryable())
            << "replication failed terminally: " << stats.status().ToString();
      }
      std::this_thread::yield();
    }
  });

  // Outage thread: OFFLINE, let the workload run into it, ONLINE (which
  // replays the backlog through the Recovering state), repeat.
  threads.emplace_back([&system] {
    auto conn = system.NewConnection();
    for (int c = 0; c < kOutageCycles; ++c) {
      ASSERT_TRUE(
          conn->Execute("CALL SYSPROC.ACCEL_CONTROL('ACCEL1', 'OFFLINE')")
              .ok());
      std::this_thread::yield();
      ASSERT_TRUE(
          conn->Execute("CALL SYSPROC.ACCEL_CONTROL('ACCEL1', 'ONLINE')")
              .ok());
      std::this_thread::yield();
    }
  });

  for (size_t t = 0; t + 2 < threads.size(); ++t) threads[t].join();
  threads.back().join();  // outage thread
  stop.store(true);
  threads[threads.size() - 2].join();  // flusher

  EXPECT_EQ(acc_inserted.load(), size_t{kWriters * kInsertsPerWriter});

  // Final recovery: accelerator online, backlog drained, replica converged.
  ASSERT_TRUE(
      system.Execute("CALL SYSPROC.ACCEL_CONTROL('ACCEL1', 'ONLINE')")
          .ok());
  ASSERT_TRUE(system.replication().Flush().ok());
  EXPECT_EQ(system.replication().PendingChanges(), 0u);

  const auto expected = static_cast<int64_t>(1 + acc_inserted.load());
  system.SetAccelerationMode(AccelerationMode::kNone);
  auto db2_count = system.Query("SELECT COUNT(*) FROM acc");
  ASSERT_TRUE(db2_count.ok()) << db2_count.status().ToString();
  EXPECT_EQ(db2_count->At(0, 0).AsInteger(), expected);

  system.SetAccelerationMode(AccelerationMode::kAll);
  auto accel_count = system.Query("SELECT COUNT(*) FROM acc");
  ASSERT_TRUE(accel_count.ok()) << accel_count.status().ToString();
  EXPECT_EQ(accel_count->At(0, 0).AsInteger(), expected);

  auto verify = system.Query("CALL SYSPROC.ACCEL_VERIFY_TABLES('acc')");
  ASSERT_TRUE(verify.ok()) << verify.status().ToString();
  ASSERT_EQ(verify->NumRows(), 1u);
  EXPECT_TRUE(verify->At(0, 3).AsBoolean()) << "replica diverged from DB2";
}

TEST(ConcurrentStressTest, ParallelAnalyticsSessionsShareInputsWithWriters) {
  // Several sessions run CALL IDAA.* concurrently on one shared accelerated
  // input while writers keep mutating the DB2 side (replication applying
  // into the replica mid-scan), a groomer reclaims space, and every analyst
  // materializes its own output AOTs. The morsel-parallel operators pin the
  // input for each fit, so no CALL may ever fail terminally or observe a
  // torn row set. Built to run clean under -DIDAA_SANITIZE=thread.
  SystemOptions options;
  options.accelerator.num_slices = 4;
  options.accelerator.zone_size = 64;
  options.accelerator.morsel_size = 128;  // many morsels on small data
  options.replication_batch_size = 8;
  IdaaSystem system(options);

  ASSERT_TRUE(system
                  .Execute("CREATE TABLE feats (id INT NOT NULL, "
                              "x DOUBLE, y DOUBLE, lbl VARCHAR)")
                  .ok());
  static const char* kLabels[] = {"A", "B", "C"};
  for (int base = 0; base < 600; base += 50) {
    std::string insert = "INSERT INTO feats VALUES ";
    for (int i = base; i < base + 50; ++i) {
      if (i > base) insert += ", ";
      insert += "(" + std::to_string(i) + ", " + std::to_string(i % 40) +
                ".5, " + std::to_string(i % 25) + ".25, '" +
                kLabels[i % 3] + "')";
    }
    ASSERT_TRUE(system.Execute(insert).ok());
  }
  ASSERT_TRUE(
      system.Execute("CALL SYSPROC.ACCEL_ADD_TABLES('feats')").ok());

  constexpr int kAnalysts = 4;
  constexpr int kCallsPerAnalyst = 5;
  constexpr int kWriters = 2;
  constexpr int kInsertsPerWriter = 60;

  std::atomic<size_t> calls_succeeded{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;

  // Analysts: every session fits models off the same shared input, each
  // into its own output AOTs (per-session names, so re-creates never race
  // another session's reads of the same output).
  for (int a = 0; a < kAnalysts; ++a) {
    threads.emplace_back([&system, &calls_succeeded, a] {
      auto conn = system.NewConnection();
      const std::string suffix = "_s" + std::to_string(a);
      const std::string calls[] = {
          "CALL IDAA.NORMALIZE('input=feats', 'output=norm" + suffix +
              "', 'columns=x,y')",
          "CALL IDAA.KMEANS('input=feats', 'output=clus" + suffix +
              "', 'columns=x,y', 'k=3', 'seed=" + std::to_string(a) + "')",
          "CALL IDAA.NAIVEBAYES('input=feats', 'label=lbl', "
          "'columns=x,y', 'output=nb" + suffix + "')",
          "CALL IDAA.SUMMARIZE('input=feats')",
      };
      for (int i = 0; i < kCallsPerAnalyst; ++i) {
        for (const std::string& call : calls) {
          if (ExecuteWithRetry(conn.get(), call)) {
            calls_succeeded.fetch_add(1);
          }
        }
      }
    });
  }

  // Writers: the shared input keeps growing underneath the running fits.
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&system, w] {
      auto conn = system.NewConnection();
      for (int i = 0; i < kInsertsPerWriter; ++i) {
        int id = 10000 * (w + 1) + i;
        ExecuteWithRetry(conn.get(),
                         "INSERT INTO feats VALUES (" + std::to_string(id) +
                             ", " + std::to_string(i % 31) + ".5, " +
                             std::to_string(i % 13) + ".25, '" +
                             kLabels[i % 3] + "')");
      }
    });
  }

  // Groomer: races the pinned analytics scans and output re-creates.
  threads.emplace_back([&system, &stop] {
    auto conn = system.NewConnection();
    while (!stop.load()) {
      ASSERT_TRUE(conn->Execute("CALL SYSPROC.ACCEL_GROOM()").ok());
      std::this_thread::yield();
    }
  });

  // Flusher: replication applies land in the replica mid-fit.
  threads.emplace_back([&system, &stop] {
    while (!stop.load()) {
      auto stats = system.replication().Flush();
      ASSERT_TRUE(stats.ok()) << stats.status().ToString();
      std::this_thread::yield();
    }
  });

  for (size_t t = 0; t + 2 < threads.size(); ++t) threads[t].join();
  stop.store(true);
  threads[threads.size() - 2].join();
  threads[threads.size() - 1].join();

  EXPECT_EQ(calls_succeeded.load(), size_t{kAnalysts * kCallsPerAnalyst * 4});

  // Quiesced differential check: with writers stopped and replication
  // drained, the batch and serial paths agree on the final state.
  ASSERT_TRUE(system.replication().Flush().ok());
  auto batch = system.Query(
      "CALL IDAA.KMEANS('input=feats', 'output=final_k', 'columns=x,y', "
      "'k=3', 'seed=9')");
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  system.accelerator().SetBatchPathEnabled(false);
  auto serial = system.Query(
      "CALL IDAA.KMEANS('input=feats', 'output=final_k', 'columns=x,y', "
      "'k=3', 'seed=9')");
  system.accelerator().SetBatchPathEnabled(true);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_EQ(batch->NumRows(), 1u);
  ASSERT_EQ(serial->NumRows(), 1u);
  for (size_t c : {0u, 1u, 3u, 4u}) {  // K, ITERATIONS, ROWS, SKIPPED
    EXPECT_EQ(batch->At(0, c).AsInteger(), serial->At(0, c).AsInteger());
  }
  EXPECT_NEAR(batch->At(0, 2).AsDouble(), serial->At(0, 2).AsDouble(),
              1e-6 * std::max(1.0, serial->At(0, 2).AsDouble()));

  // Every analyst's outputs are present and consistent with one snapshot.
  for (int a = 0; a < kAnalysts; ++a) {
    const std::string suffix = "_s" + std::to_string(a);
    auto clus = system.Query("SELECT COUNT(*) FROM clus" + suffix);
    auto norm = system.Query("SELECT COUNT(*) FROM norm" + suffix);
    ASSERT_TRUE(clus.ok()) << clus.status().ToString();
    ASSERT_TRUE(norm.ok()) << norm.status().ToString();
    EXPECT_GE(clus->At(0, 0).AsInteger(), int64_t{600});
    EXPECT_GE(norm->At(0, 0).AsInteger(), int64_t{600});
  }
}

TEST(ConcurrentStressTest, ParallelTracedQueriesShareHistograms) {
  // Concurrent traced statements from separate sessions: slice workers
  // write spans into per-statement traces while every session records into
  // the shared histogram registry.
  IdaaSystem system;
  ASSERT_TRUE(
      system.Execute("CREATE TABLE hot (id INT, v DOUBLE) IN ACCELERATOR")
          .ok());
  ASSERT_TRUE(system
                  .Execute("INSERT INTO hot VALUES (1, 1.0), (2, 2.0), "
                              "(3, 3.0), (4, 4.0)")
                  .ok());
  system.slow_query_log().set_threshold_us(0);  // record every statement

  constexpr int kThreads = 4;
  constexpr int kQueries = 25;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&system] {
      auto conn = system.NewConnection();
      for (int i = 0; i < kQueries; ++i) {
        auto rs = conn->Query("SELECT SUM(v) FROM hot");
        ASSERT_TRUE(rs.ok()) << rs.status().ToString();
        EXPECT_EQ(rs->At(0, 0).AsDouble(), 10.0);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_GE(system.histograms().GetOrCreate("sql.latency.select").Count(),
            size_t{kThreads * kQueries});
  EXPECT_GE(system.slow_query_log().Size(), size_t{1});
}

TEST(ConcurrentStressTest, ParallelLoadsShareAcceleratorWithReadersAndGroom) {
  // Several pipelined loads run simultaneously into distinct AOTs on one
  // accelerator — each load spinning up its own reader/worker/commit
  // pipeline — while reader sessions scan both a quiescent table and the
  // tables being loaded, and a maintenance thread grooms continuously.
  // Invariants: every load lands exactly its input (count + id checksum),
  // readers only ever observe committed prefixes, and the whole dance is
  // data-race-free under -DIDAA_SANITIZE=thread.
  SystemOptions options;
  options.accelerator.num_slices = 4;
  options.replication_batch_size = 0;
  IdaaSystem system(options);

  static constexpr int kLoaders = 3;
  static constexpr int kRowsPerLoad = 1500;
  ASSERT_TRUE(system
                  .Execute("CREATE TABLE warm (id INT NOT NULL, v DOUBLE) "
                              "IN ACCELERATOR")
                  .ok());
  ASSERT_TRUE(system
                  .Execute("INSERT INTO warm VALUES (1, 1.5), (2, 2.5), "
                              "(3, 3.5)")
                  .ok());
  std::vector<std::string> bodies(kLoaders);
  for (int t = 0; t < kLoaders; ++t) {
    ASSERT_TRUE(system
                    .Execute("CREATE TABLE ld" + std::to_string(t) +
                                " (id INT NOT NULL, tag VARCHAR, "
                                "score DOUBLE) IN ACCELERATOR")
                    .ok());
    std::string body;
    for (int i = 0; i < kRowsPerLoad; ++i) {
      body += std::to_string(i) + "," +
              (i % 9 == 0 ? std::string() : "tag" + std::to_string(t)) + "," +
              std::to_string(i) + ".25\n";
    }
    bodies[t] = std::move(body);
  }
  const Schema schema({{"ID", DataType::kInteger, false},
                       {"TAG", DataType::kVarchar, true},
                       {"SCORE", DataType::kDouble, true}});

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;

  for (int t = 0; t < kLoaders; ++t) {
    threads.emplace_back([&system, &bodies, &schema, t] {
      loader::CsvStringSource source(bodies[t], schema);
      loader::LoadOptions lo;
      lo.batch_size = 64;
      lo.num_workers = 3;
      lo.queue_depth = 4;
      auto report =
          system.loader().Load("ld" + std::to_string(t), &source, lo);
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      EXPECT_EQ(report->rows_loaded, size_t{kRowsPerLoad});
      EXPECT_EQ(report->rows_rejected, 0u);
    });
  }

  // Readers: scan the quiescent table (stable answer) and the in-flight
  // tables (must see a committed prefix, never a torn batch).
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&system, &stop, r] {
      auto conn = system.NewConnection();
      while (!stop.load()) {
        auto warm = conn->Query("SELECT COUNT(*) FROM warm");
        ASSERT_TRUE(warm.ok()) << warm.status().ToString();
        EXPECT_EQ(warm->At(0, 0).AsInteger(), 3);
        const std::string table = "ld" + std::to_string(r);
        auto rs = conn->Query("SELECT COUNT(*), COUNT(tag) FROM " + table);
        ASSERT_TRUE(rs.ok()) << rs.status().ToString();
        int64_t count = rs->At(0, 0).AsInteger();
        EXPECT_GE(count, 0);
        EXPECT_LE(count, kRowsPerLoad);
        // Loads commit whole 64-row batches; a torn read would surface as
        // a partial batch.
        EXPECT_EQ(count % 64 == 0 || count == kRowsPerLoad, true)
            << "reader saw a partially committed batch: " << count;
        std::this_thread::yield();
      }
    });
  }

  // Maintenance: groom the shared accelerator the whole time.
  threads.emplace_back([&system, &stop] {
    while (!stop.load()) {
      system.accelerator().GroomAll();
      std::this_thread::yield();
    }
  });

  for (int t = 0; t < kLoaders; ++t) threads[t].join();
  stop.store(true);
  for (size_t i = kLoaders; i < threads.size(); ++i) threads[i].join();

  for (int t = 0; t < kLoaders; ++t) {
    auto rs = system.Query("SELECT COUNT(*), SUM(id) FROM ld" +
                           std::to_string(t));
    ASSERT_TRUE(rs.ok()) << rs.status().ToString();
    EXPECT_EQ(rs->At(0, 0).AsInteger(), kRowsPerLoad);
    EXPECT_EQ(rs->At(0, 1).AsInteger(),
              int64_t{kRowsPerLoad} * (kRowsPerLoad - 1) / 2);
  }
}

TEST(ConcurrentStressTest, ConcurrentJoinsSurviveGroomAndWriters) {
  // Star joins on the batch-native join path race AOT writers and a
  // continuous GROOM loop. Each reader takes one snapshot and checks join
  // invariants that only hold if build and probe see the same consistent
  // row set: the dimension covers every non-NULL key, so an inner join
  // returns exactly COUNT(dk) rows, a LEFT JOIN exactly COUNT(*) rows, and
  // a duplicate-heavy dimension (two rows per key) exactly 2 * COUNT(dk).
  // VARCHAR equi-keys and VARCHAR scan predicates ride along because they
  // bake slice-local dictionary codes into the probe's dict-code maps and
  // compiled predicates — a groom re-interning dictionaries between
  // compilation and the probe scan would silently corrupt them. A torn
  // scan, a groom moving rows mid-probe, or a stale Bloom filter would
  // break the equalities. Built to run clean under -DIDAA_SANITIZE=thread.
  SystemOptions options;
  options.accelerator.num_slices = 4;
  options.accelerator.zone_size = 64;
  options.accelerator.morsel_size = 128;
  IdaaSystem system(options);

  constexpr int kDimKeys = 12;
  ASSERT_TRUE(system
                  .Execute("CREATE TABLE jfact (id INT NOT NULL, dk INT, "
                              "dn VARCHAR, v DOUBLE) IN ACCELERATOR")
                  .ok());
  ASSERT_TRUE(system
                  .Execute("CREATE TABLE jdim (k INT NOT NULL, "
                              "g VARCHAR) IN ACCELERATOR")
                  .ok());
  ASSERT_TRUE(system
                  .Execute("CREATE TABLE jtag (k INT NOT NULL, "
                              "t VARCHAR) IN ACCELERATOR")
                  .ok());
  // VARCHAR-keyed dimension: the probe compares dictionary codes via the
  // per-slice code maps, never strings.
  ASSERT_TRUE(system
                  .Execute("CREATE TABLE jname (n VARCHAR NOT NULL, "
                              "label VARCHAR) IN ACCELERATOR")
                  .ok());
  for (int k = 0; k < kDimKeys; ++k) {
    ASSERT_TRUE(system
                    .Execute("INSERT INTO jdim VALUES (" +
                                std::to_string(k) + ", 'g" +
                                std::to_string(k % 3) + "')")
                    .ok());
    // Two tag rows per key: probes must walk duplicate chains correctly.
    ASSERT_TRUE(system
                    .Execute("INSERT INTO jtag VALUES (" +
                                std::to_string(k) + ", 'a'), (" +
                                std::to_string(k) + ", 'b')")
                    .ok());
    ASSERT_TRUE(system
                    .Execute("INSERT INTO jname VALUES ('k" +
                                std::to_string(k) + "', 'name" +
                                std::to_string(k) + "')")
                    .ok());
  }
  // dn mirrors dk as 'k<dk>' (NULL together), so COUNT(dn) == COUNT(dk)
  // and jname covers every non-NULL dn.
  for (int i = 0; i < 200; ++i) {
    const bool null_key = i % 11 == 0;
    ASSERT_TRUE(system
                    .Execute("INSERT INTO jfact VALUES (" +
                                std::to_string(i) + ", " +
                                (null_key ? std::string("NULL")
                                          : std::to_string(i % kDimKeys)) +
                                ", " +
                                (null_key
                                     ? std::string("NULL")
                                     : "'k" + std::to_string(i % kDimKeys) +
                                           "'") +
                                ", " + std::to_string(i % 7) + ".5)")
                    .ok());
  }

  constexpr int kWriters = 2;
  constexpr int kInsertsPerWriter = 50;
  constexpr int kReaderIterations = 20;

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;

  // Writers keep the fact table growing (including NULL keys) while probes
  // are in flight.
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&system, w] {
      auto conn = system.NewConnection();
      for (int i = 0; i < kInsertsPerWriter; ++i) {
        int id = 10000 * (w + 1) + i;
        const bool null_key = i % 13 == 0;
        ExecuteWithRetry(conn.get(),
                         "INSERT INTO jfact VALUES (" + std::to_string(id) +
                             ", " +
                             (null_key ? std::string("NULL")
                                       : std::to_string(i % kDimKeys)) +
                             ", " +
                             (null_key
                                  ? std::string("NULL")
                                  : "'k" + std::to_string(i % kDimKeys) + "'") +
                             ", " + std::to_string(i % 5) + ".25)");
      }
    });
  }

  // Readers: snapshot-consistent join invariants.
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&system] {
      auto conn = system.NewConnection();
      for (int i = 0; i < kReaderIterations; ++i) {
        ASSERT_TRUE(conn->Begin().ok());
        auto keyed = conn->Query("SELECT COUNT(dk), COUNT(*) FROM jfact");
        ASSERT_TRUE(keyed.ok()) << keyed.status().ToString();
        const int64_t nonnull = keyed->At(0, 0).AsInteger();
        const int64_t total = keyed->At(0, 1).AsInteger();
        auto inner = conn->Query(
            "SELECT COUNT(*) FROM jfact f JOIN jdim d ON f.dk = d.k");
        ASSERT_TRUE(inner.ok()) << inner.status().ToString();
        EXPECT_EQ(inner->At(0, 0).AsInteger(), nonnull)
            << "inner join lost or duplicated probe rows";
        auto left = conn->Query(
            "SELECT COUNT(*) FROM jfact f LEFT JOIN jdim d ON f.dk = d.k");
        ASSERT_TRUE(left.ok()) << left.status().ToString();
        EXPECT_EQ(left->At(0, 0).AsInteger(), total)
            << "left join dropped unmatched probe rows";
        auto dup = conn->Query(
            "SELECT COUNT(*) FROM jfact f JOIN jtag t ON f.dk = t.k");
        ASSERT_TRUE(dup.ok()) << dup.status().ToString();
        EXPECT_EQ(dup->At(0, 0).AsInteger(), 2 * nonnull)
            << "duplicate build chain walked incorrectly";
        // VARCHAR equi-key: jname covers every non-NULL dn and dn is NULL
        // exactly when dk is, so the code-mapped probe must agree with the
        // INT-keyed count. A groom re-interning a slice dictionary after
        // the probe-code maps were built would break this.
        auto vkey = conn->Query(
            "SELECT COUNT(*) FROM jfact f JOIN jname n ON f.dn = n.n");
        ASSERT_TRUE(vkey.ok()) << vkey.status().ToString();
        EXPECT_EQ(vkey->At(0, 0).AsInteger(), nonnull)
            << "dictionary-code key map went stale under groom";
        // VARCHAR scan predicate on the probe side: the compiled per-slice
        // predicate bakes in the dictionary code of 'k3'; the single-table
        // count and the joined count (jdim has one row per key) must match
        // within one snapshot.
        auto pred_scan =
            conn->Query("SELECT COUNT(*) FROM jfact WHERE dn = 'k3'");
        ASSERT_TRUE(pred_scan.ok()) << pred_scan.status().ToString();
        auto pred_join = conn->Query(
            "SELECT COUNT(*) FROM jfact f JOIN jdim d ON f.dk = d.k "
            "WHERE f.dn = 'k3'");
        ASSERT_TRUE(pred_join.ok()) << pred_join.status().ToString();
        EXPECT_EQ(pred_join->At(0, 0).AsInteger(),
                  pred_scan->At(0, 0).AsInteger())
            << "compiled VARCHAR predicate went stale under groom";
        // VARCHAR scan predicate on the build side: the three g-partitions
        // tile the key space, so the filtered joins must sum to the
        // unfiltered inner count.
        int64_t by_g = 0;
        for (int g = 0; g < 3; ++g) {
          auto part = conn->Query(
              "SELECT COUNT(*) FROM jfact f JOIN jdim d ON f.dk = d.k "
              "WHERE d.g = 'g" +
              std::to_string(g) + "'");
          ASSERT_TRUE(part.ok()) << part.status().ToString();
          by_g += part->At(0, 0).AsInteger();
        }
        EXPECT_EQ(by_g, nonnull)
            << "build-side VARCHAR scan predicate went stale under groom";
        auto grouped = conn->Query(
            "SELECT d.g, COUNT(*) FROM jfact f JOIN jdim d ON f.dk = d.k "
            "GROUP BY d.g");
        ASSERT_TRUE(grouped.ok()) << grouped.status().ToString();
        int64_t grouped_total = 0;
        for (size_t row = 0; row < grouped->NumRows(); ++row) {
          grouped_total += grouped->At(row, 1).AsInteger();
        }
        EXPECT_EQ(grouped_total, nonnull)
            << "aggregate-mode join disagreed with the scalar count";
        ASSERT_TRUE(conn->Commit().ok());
      }
    });
  }

  // Groomer: space reclamation races builds and probes continuously.
  threads.emplace_back([&system, &stop] {
    auto conn = system.NewConnection();
    while (!stop.load()) {
      ASSERT_TRUE(conn->Execute("CALL SYSPROC.ACCEL_GROOM()").ok());
      std::this_thread::yield();
    }
  });

  for (size_t t = 0; t + 1 < threads.size(); ++t) threads[t].join();
  stop.store(true);
  threads.back().join();

  // Quiesced differential: batch join and the row-path fallback agree on
  // the final state, on both the INT-keyed and the VARCHAR-keyed joins.
  const std::vector<std::string> differential_queries = {
      "SELECT d.g, COUNT(*), SUM(f.v) FROM jfact f "
      "JOIN jdim d ON f.dk = d.k GROUP BY d.g ORDER BY d.g",
      "SELECT n.label, COUNT(*), SUM(f.v) FROM jfact f "
      "JOIN jname n ON f.dn = n.n GROUP BY n.label ORDER BY n.label"};
  for (const std::string& query : differential_queries) {
    auto batch = system.Query(query);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    system.accelerator().SetBatchPathEnabled(false);
    auto row_path = system.Query(query);
    system.accelerator().SetBatchPathEnabled(true);
    ASSERT_TRUE(row_path.ok()) << row_path.status().ToString();
    ASSERT_EQ(batch->NumRows(), row_path->NumRows()) << query;
    for (size_t r = 0; r < batch->NumRows(); ++r) {
      EXPECT_EQ(batch->At(r, 0).AsVarchar(), row_path->At(r, 0).AsVarchar());
      EXPECT_EQ(batch->At(r, 1).AsInteger(), row_path->At(r, 1).AsInteger());
      EXPECT_DOUBLE_EQ(batch->At(r, 2).AsDouble(),
                       row_path->At(r, 2).AsDouble());
    }
  }
}

TEST(ConcurrentStressTest, ShardKillRecoverRebalanceKeepsWorkloadLive) {
  // A killer thread flips individual shards of a 4-shard accelerator
  // OFFLINE/ONLINE while failback readers, DB2 writers and a GROOM thread
  // keep running, and the topology grows by one shard mid-run. Invariants:
  // a single dead shard is a per-shard failure domain — failback readers
  // never surface an error, writers lose nothing, GROOM keeps running on
  // the surviving shards — and after recovery both routes agree and
  // ACCEL_VERIFY_TABLES converges. Built to run clean under TSan.
  SystemOptions options;
  options.accelerator_shards = 4;
  options.replication_batch_size = 8;
  IdaaSystem system(options);
  auto* shard_accel =
      dynamic_cast<accel::ShardedAccelerator*>(&system.accelerator());
  ASSERT_NE(shard_accel, nullptr);

  ASSERT_TRUE(system
                  .Execute("CREATE TABLE spart (id INT NOT NULL, grp INT, "
                           "v INT) DISTRIBUTE BY (grp)")
                  .ok());
  ASSERT_TRUE(
      system.Execute("CREATE TABLE sdim (k INT NOT NULL, t VARCHAR)").ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(system
                    .Execute(StrFormat("INSERT INTO sdim VALUES (%d, 'd%d')",
                                       i, i % 3))
                    .ok());
  }
  ASSERT_TRUE(system.Execute("INSERT INTO spart VALUES (0, 0, 0)").ok());
  ASSERT_TRUE(
      system.Execute("CALL SYSPROC.ACCEL_ADD_TABLES('spart')").ok());
  ASSERT_TRUE(system.Execute("CALL SYSPROC.ACCEL_ADD_TABLES('sdim')").ok());
  ASSERT_TRUE(system.replication().Flush().ok());

  constexpr int kWriters = 2;
  constexpr int kInsertsPerWriter = 40;
  constexpr int kReaderIterations = 40;
  constexpr int kKillCycles = 10;

  std::atomic<size_t> inserted{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;

  // Writers: DB2 stays writable no matter which shard is dead.
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&system, &inserted, w] {
      auto conn = system.NewConnection();
      for (int i = 0; i < kInsertsPerWriter; ++i) {
        int id = 1000 * (w + 1) + i;
        if (ExecuteWithRetry(conn.get(),
                             StrFormat("INSERT INTO spart VALUES (%d, %d, %d)",
                                       id, id % 6, i))) {
          inserted.fetch_add(1);
        }
      }
    });
  }

  // Failback readers: scatter-gather shapes fail over to DB2 while a shard
  // is away; broadcast shapes keep being served by a surviving shard. An
  // error here is a test failure, not a retry.
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&system, r] {
      auto conn = system.NewConnection();
      conn->SetAccelerationMode(AccelerationMode::kEnableWithFailback);
      for (int i = 0; i < kReaderIterations; ++i) {
        const char* sql = (i + r) % 3 == 0
                              ? "SELECT COUNT(*), SUM(v) FROM spart"
                              : ((i + r) % 3 == 1
                                     ? "SELECT COUNT(*) FROM spart "
                                       "WHERE grp = 3"
                                     : "SELECT COUNT(*) FROM sdim");
        auto rs = conn->Query(sql);
        ASSERT_TRUE(rs.ok()) << "failback reader saw an error: "
                             << rs.status().ToString();
      }
    });
  }

  // Flusher: a dead shard makes the apply retryable, never terminal.
  threads.emplace_back([&system, &stop] {
    while (!stop.load()) {
      auto stats = system.replication().Flush();
      if (!stats.ok()) {
        ASSERT_TRUE(stats.status().retryable())
            << "replication failed terminally: " << stats.status().ToString();
      }
      std::this_thread::yield();
    }
  });

  // GROOM keeps running on the surviving shards throughout.
  threads.emplace_back([&shard_accel, &stop] {
    while (!stop.load()) {
      (void)shard_accel->GroomAll();
      std::this_thread::yield();
    }
  });

  // Killer: one shard at a time goes away and comes back.
  threads.emplace_back([&shard_accel] {
    for (int c = 0; c < kKillCycles; ++c) {
      size_t victim = static_cast<size_t>(c) % shard_accel->num_shards();
      shard_accel->SetShardState(victim, accel::AcceleratorState::kOffline);
      std::this_thread::yield();
      shard_accel->SetShardState(victim, accel::AcceleratorState::kOnline);
      std::this_thread::yield();
    }
    // Online rebalance while readers/writers/GROOM are still running.
    Status added = shard_accel->AddShard();
    ASSERT_TRUE(added.ok()) << added.ToString();
  });

  for (size_t t = 0; t < threads.size() - 3; ++t) threads[t].join();
  threads.back().join();  // killer
  stop.store(true);
  threads[threads.size() - 2].join();  // groomer
  threads[threads.size() - 3].join();  // flusher

  EXPECT_EQ(inserted.load(), size_t{kWriters * kInsertsPerWriter});
  EXPECT_EQ(shard_accel->num_shards(), 5u);
  for (size_t i = 0; i < shard_accel->num_shards(); ++i) {
    shard_accel->SetShardState(i, accel::AcceleratorState::kOnline);
  }
  // Scatter shapes that raced a dead shard tripped breakers (that is the
  // failback mechanism working); reset them like an operator bringing the
  // appliance back, then verify convergence.
  ASSERT_TRUE(
      system.Execute("CALL SYSPROC.ACCEL_CONTROL('ACCEL1', 'ONLINE')").ok());
  ASSERT_TRUE(system.replication().Flush().ok());
  EXPECT_EQ(system.replication().PendingChanges(), 0u);

  const auto expected = static_cast<int64_t>(1 + inserted.load());
  system.SetAccelerationMode(AccelerationMode::kNone);
  auto db2_count = system.Query("SELECT COUNT(*), SUM(v) FROM spart");
  ASSERT_TRUE(db2_count.ok()) << db2_count.status().ToString();
  EXPECT_EQ(db2_count->At(0, 0).AsInteger(), expected);

  system.SetAccelerationMode(AccelerationMode::kAll);
  auto accel_count = system.Query("SELECT COUNT(*), SUM(v) FROM spart");
  ASSERT_TRUE(accel_count.ok()) << accel_count.status().ToString();
  EXPECT_EQ(accel_count->At(0, 0).AsInteger(), expected);
  EXPECT_EQ(db2_count->At(0, 1).AsInteger(),
            accel_count->At(0, 1).AsInteger());

  auto verify = system.Query("CALL SYSPROC.ACCEL_VERIFY_TABLES('spart')");
  ASSERT_TRUE(verify.ok()) << verify.status().ToString();
  ASSERT_EQ(verify->NumRows(), 1u);
  EXPECT_TRUE(verify->At(0, 3).AsBoolean()) << "replica diverged from DB2";
}

}  // namespace
}  // namespace idaa
