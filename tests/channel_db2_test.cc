// TransferChannel wire-codec tests and DB2 engine tests (row store, undo,
// cursor stability locking).

#include <gtest/gtest.h>

#include "common/rng.h"
#include "db2/db2_engine.h"
#include "federation/transfer_channel.h"
#include "idaa/system.h"
#include "sql/parser.h"

namespace idaa {
namespace {

// ---------------------------------------------------------------------------
// Wire codec
// ---------------------------------------------------------------------------

TEST(WireCodecTest, RoundTripAllTypes) {
  Row row = {Value::Null(),
             Value::Boolean(true),
             Value::Integer(-123456789),
             Value::Double(3.14159),
             Value::Varchar("hello \"world\" with, commas"),
             Value::Date(-7),
             Value::Timestamp(999999999999LL)};
  std::vector<uint8_t> wire;
  federation::EncodeRow(row, &wire);
  size_t offset = 0;
  auto decoded = federation::DecodeRow(wire, &offset);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, row);
  EXPECT_EQ(offset, wire.size());
}

TEST(WireCodecTest, RandomizedRoundTripProperty) {
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    Row row;
    size_t arity = static_cast<size_t>(rng.Uniform(0, 8));
    for (size_t i = 0; i < arity; ++i) {
      switch (rng.Uniform(0, 5)) {
        case 0: row.push_back(Value::Null()); break;
        case 1: row.push_back(Value::Boolean(rng.Bernoulli(0.5))); break;
        case 2: row.push_back(Value::Integer(rng.Uniform(-1000000, 1000000)));
          break;
        case 3: row.push_back(Value::Double(rng.UniformDouble(-1e6, 1e6)));
          break;
        case 4: row.push_back(Value::Varchar(
                    rng.RandomString(static_cast<size_t>(rng.Uniform(0, 30)))));
          break;
        default: row.push_back(Value::Date(
                     static_cast<int32_t>(rng.Uniform(-10000, 10000))));
      }
    }
    std::vector<uint8_t> wire;
    federation::EncodeRow(row, &wire);
    size_t offset = 0;
    auto decoded = federation::DecodeRow(wire, &offset);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, row);
  }
}

TEST(WireCodecTest, TruncatedBufferFails) {
  Row row = {Value::Varchar("some string data")};
  std::vector<uint8_t> wire;
  federation::EncodeRow(row, &wire);
  wire.resize(wire.size() - 3);
  size_t offset = 0;
  EXPECT_FALSE(federation::DecodeRow(wire, &offset).ok());
}

TEST(TransferChannelTest, MetersBytesAndRoundTrips) {
  MetricsRegistry metrics;
  federation::TransferChannel channel(&metrics);
  std::vector<Row> rows = {{Value::Integer(1), Value::Varchar("abc")},
                           {Value::Integer(2), Value::Varchar("defg")}};
  auto shipped = channel.SendRowsToAccelerator(rows);
  ASSERT_TRUE(shipped.ok());
  EXPECT_EQ(*shipped, rows);
  EXPECT_GT(channel.bytes_to_accelerator(), 0u);
  EXPECT_EQ(channel.bytes_from_accelerator(), 0u);
  EXPECT_EQ(metrics.Get(metric::kFederationRoundTrips), 1u);

  ResultSet rs(Schema({{"N", DataType::kInteger, true}}),
               {{Value::Integer(5)}});
  auto fetched = channel.FetchResultFromAccelerator(rs);
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched->NumRows(), 1u);
  EXPECT_GT(channel.bytes_from_accelerator(), 0u);
}

// ---------------------------------------------------------------------------
// Row store
// ---------------------------------------------------------------------------

TEST(RowStoreTest, InsertGetUpdateDelete) {
  db2::StoredTable table(Schema({{"A", DataType::kInteger, true}}));
  auto rid = table.Insert({Value::Integer(1)});
  ASSERT_TRUE(rid.ok());
  EXPECT_EQ((*table.Get(*rid))[0].AsInteger(), 1);
  ASSERT_TRUE(table.Update(*rid, {Value::Integer(2)}).ok());
  EXPECT_EQ((*table.Get(*rid))[0].AsInteger(), 2);
  ASSERT_TRUE(table.Delete(*rid).ok());
  EXPECT_FALSE(table.Get(*rid).ok());
  EXPECT_EQ(table.NumLiveRows(), 0u);
  // Undelete restores (undo path).
  ASSERT_TRUE(table.Undelete(*rid).ok());
  EXPECT_EQ(table.NumLiveRows(), 1u);
}

TEST(RowStoreTest, RidsStableAcrossDeletes) {
  db2::StoredTable table(Schema({{"A", DataType::kInteger, true}}));
  auto r1 = table.Insert({Value::Integer(1)});
  auto r2 = table.Insert({Value::Integer(2)});
  auto r3 = table.Insert({Value::Integer(3)});
  ASSERT_TRUE(table.Delete(*r2).ok());
  EXPECT_EQ((*table.Get(*r1))[0].AsInteger(), 1);
  EXPECT_EQ((*table.Get(*r3))[0].AsInteger(), 3);
  auto live = table.ScanLive();
  EXPECT_EQ(live.size(), 2u);
}

TEST(RowStoreTest, SchemaEnforced) {
  db2::StoredTable table(Schema({{"A", DataType::kInteger, false}}));
  EXPECT_FALSE(table.Insert({Value::Null()}).ok());
  EXPECT_FALSE(table.Insert({Value::Varchar("x")}).ok());
  EXPECT_FALSE(table.Insert({}).ok());
}

TEST(RowStoreTest, DoubleDeleteFails) {
  db2::StoredTable table(Schema({{"A", DataType::kInteger, true}}));
  auto rid = table.Insert({Value::Integer(1)});
  ASSERT_TRUE(table.Delete(*rid).ok());
  EXPECT_FALSE(table.Delete(*rid).ok());
}

// ---------------------------------------------------------------------------
// DB2 engine: undo, capture, cursor stability
// ---------------------------------------------------------------------------

TEST(Db2EngineTest, RollbackUndoesAllDmlKinds) {
  IdaaSystem system;
  ASSERT_TRUE(system.Execute("CREATE TABLE t (a INT, b VARCHAR)").ok());
  ASSERT_TRUE(
      system.Execute("INSERT INTO t VALUES (1, 'one'), (2, 'two')").ok());

  ASSERT_TRUE(system.Begin().ok());
  ASSERT_TRUE(system.Execute("INSERT INTO t VALUES (3, 'three')").ok());
  ASSERT_TRUE(system.Execute("UPDATE t SET b = 'ONE' WHERE a = 1").ok());
  ASSERT_TRUE(system.Execute("DELETE FROM t WHERE a = 2").ok());
  auto mid = system.Query("SELECT COUNT(*) FROM t");
  EXPECT_EQ(mid->At(0, 0).AsInteger(), 2);
  ASSERT_TRUE(system.Rollback().ok());

  auto rs = system.Query("SELECT a, b FROM t ORDER BY a");
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->NumRows(), 2u);
  EXPECT_EQ(rs->At(0, 1).AsVarchar(), "one");  // update undone
  EXPECT_EQ(rs->At(1, 0).AsInteger(), 2);      // delete undone
}

TEST(Db2EngineTest, ExplicitTransactionCommitPersists) {
  IdaaSystem system;
  ASSERT_TRUE(system.Execute("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(system.Begin().ok());
  ASSERT_TRUE(system.Execute("INSERT INTO t VALUES (1)").ok());
  ASSERT_TRUE(system.Execute("COMMIT").ok());
  auto rs = system.Query("SELECT COUNT(*) FROM t");
  EXPECT_EQ(rs->At(0, 0).AsInteger(), 1);
}

TEST(Db2EngineTest, WriteLocksBlockConcurrentWriters) {
  IdaaSystem system;
  ASSERT_TRUE(system.Execute("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(system.Execute("INSERT INTO t VALUES (1)").ok());
  // Open transaction holds an X lock after its update.
  ASSERT_TRUE(system.Begin().ok());
  ASSERT_TRUE(system.Execute("UPDATE t SET a = 2").ok());
  // A second "connection" (its own transaction via the component API).
  Transaction* other = system.txn_manager().Begin();
  auto parsed = sql::ParseStatement("DELETE FROM t");
  ASSERT_TRUE(parsed.ok());
  sql::Binder binder(system.catalog());
  auto bound =
      binder.BindDelete(*static_cast<sql::DeleteStatement*>(parsed->get()));
  ASSERT_TRUE(bound.ok());
  auto blocked = system.db2().ExecuteDelete(*bound, other);
  ASSERT_FALSE(blocked.ok());
  EXPECT_TRUE(blocked.status().IsConflict());
  ASSERT_TRUE(system.txn_manager().Abort(other).ok());
  system.db2().lock_manager().ReleaseAll(other->id());
  ASSERT_TRUE(system.Commit().ok());
}

TEST(Db2EngineTest, CursorStabilityReleasesReadLocks) {
  IdaaSystem system;
  ASSERT_TRUE(system.Execute("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(system.Begin().ok());
  ASSERT_TRUE(system.Query("SELECT * FROM t").ok());
  // S lock released at end of statement: another txn may write.
  Transaction* other = system.txn_manager().Begin();
  auto info = system.catalog().GetTable("t");
  auto inserted = system.db2().InsertRows(**info, {{Value::Integer(9)}}, other);
  EXPECT_TRUE(inserted.ok()) << inserted.status().ToString();
  ASSERT_TRUE(system.txn_manager().Commit(other).ok());
  system.db2().lock_manager().ReleaseAll(other->id());
  // Cursor stability (not repeatable read): the open txn sees the new row.
  auto rs = system.Query("SELECT COUNT(*) FROM t");
  EXPECT_EQ(rs->At(0, 0).AsInteger(), 1);
  ASSERT_TRUE(system.Commit().ok());
}

TEST(Db2EngineTest, UpdateWithTypeCoercion) {
  IdaaSystem system;
  ASSERT_TRUE(system.Execute("CREATE TABLE t (a DOUBLE)").ok());
  ASSERT_TRUE(system.Execute("INSERT INTO t VALUES (1.5)").ok());
  ASSERT_TRUE(system.Execute("UPDATE t SET a = 3").ok());  // int -> double
  auto rs = system.Query("SELECT a FROM t");
  EXPECT_TRUE(rs->At(0, 0).is_double());
  EXPECT_DOUBLE_EQ(rs->At(0, 0).AsDouble(), 3.0);
}

TEST(Db2EngineTest, NotNullViolationOnUpdateFails) {
  IdaaSystem system;
  ASSERT_TRUE(system.Execute("CREATE TABLE t (a INT NOT NULL)").ok());
  ASSERT_TRUE(system.Execute("INSERT INTO t VALUES (1)").ok());
  auto r = system.Execute("UPDATE t SET a = NULL");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kConstraintViolation);
}

TEST(Db2EngineTest, FailedAutoCommitStatementRollsBack) {
  IdaaSystem system;
  ASSERT_TRUE(system.Execute("CREATE TABLE t (a INT NOT NULL)").ok());
  // Multi-row insert where a later row violates NOT NULL: nothing persists.
  auto r = system.Execute("INSERT INTO t VALUES (1), (NULL)");
  ASSERT_FALSE(r.ok());
  auto rs = system.Query("SELECT COUNT(*) FROM t");
  EXPECT_EQ(rs->At(0, 0).AsInteger(), 0);
}

}  // namespace
}  // namespace idaa
