// Multiple attached accelerators: placement (explicit + balanced), routing
// to the hosting accelerator, cross-accelerator data movement, offline
// handling (ACCEL_CONTROL) and per-accelerator replication/analytics.

#include <gtest/gtest.h>

#include "idaa/system.h"

namespace idaa {
namespace {

using federation::AccelerationMode;
using federation::Target;

class MultiAccelTest : public ::testing::Test {
 protected:
  MultiAccelTest() : system_(MakeOptions()) {}

  static SystemOptions MakeOptions() {
    SystemOptions options;
    options.num_accelerators = 2;
    options.replication_batch_size = 0;
    return options;
  }

  IdaaSystem system_;
};

TEST_F(MultiAccelTest, ExplicitPlacement) {
  ASSERT_TRUE(system_
                  .Execute("CREATE TABLE a1 (x INT) IN ACCELERATOR accel1")
                  .ok());
  ASSERT_TRUE(system_
                  .Execute("CREATE TABLE a2 (x INT) IN ACCELERATOR accel2")
                  .ok());
  EXPECT_TRUE(system_.accelerator(0).HasTable("a1"));
  EXPECT_FALSE(system_.accelerator(0).HasTable("a2"));
  EXPECT_TRUE(system_.accelerator(1).HasTable("a2"));
  auto info = system_.catalog().GetTable("a2");
  EXPECT_EQ((*info)->accelerator_name, "ACCEL2");
}

TEST_F(MultiAccelTest, UnknownAcceleratorFails) {
  auto r = system_.Execute("CREATE TABLE x (a INT) IN ACCELERATOR accel9");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(system_.catalog().HasTable("x"));
}

TEST_F(MultiAccelTest, BalancedPlacement) {
  // Without explicit targets, AOTs spread across the two accelerators.
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(system_
                    .Execute("CREATE TABLE t" + std::to_string(i) +
                                " (x INT) IN ACCELERATOR")
                    .ok());
  }
  EXPECT_EQ(system_.accelerator(0).NumTables(), 3u);
  EXPECT_EQ(system_.accelerator(1).NumTables(), 3u);
}

TEST_F(MultiAccelTest, QueriesRouteToHostingAccelerator) {
  ASSERT_TRUE(system_
                  .Execute("CREATE TABLE t (x INT) IN ACCELERATOR accel2")
                  .ok());
  ASSERT_TRUE(system_.Execute("INSERT INTO t VALUES (1), (2)").ok());
  auto rs = system_.Query("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->At(0, 0).AsInteger(), 2);
  // Rows physically live on accel2 only.
  EXPECT_EQ((*system_.accelerator(1).GetTable("t"))->NumVersions(), 2u);
}

TEST_F(MultiAccelTest, CrossAcceleratorJoinFails) {
  ASSERT_TRUE(system_
                  .Execute("CREATE TABLE l (x INT) IN ACCELERATOR accel1")
                  .ok());
  ASSERT_TRUE(system_
                  .Execute("CREATE TABLE r (x INT) IN ACCELERATOR accel2")
                  .ok());
  auto q = system_.Execute("SELECT COUNT(*) FROM l JOIN r ON l.x = r.x");
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("different accelerators"),
            std::string::npos);
}

TEST_F(MultiAccelTest, CrossAcceleratorInsertSelectMovesData) {
  ASSERT_TRUE(system_
                  .Execute("CREATE TABLE src (x INT) IN ACCELERATOR accel1")
                  .ok());
  ASSERT_TRUE(
      system_.Execute("INSERT INTO src VALUES (1), (2), (3)").ok());
  ASSERT_TRUE(system_
                  .Execute("CREATE TABLE dst (x INT) IN ACCELERATOR accel2")
                  .ok());
  MetricsDelta delta(system_.metrics());
  auto r = system_.Execute("INSERT INTO dst SELECT x FROM src");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows_affected, 3u);
  EXPECT_NE(r->detail.find("across accelerators"), std::string::npos);
  // Two boundary crossings: accel1 -> DB2 -> accel2.
  EXPECT_GT(delta.Delta(metric::kFederationBytesFromAccel), 0u);
  EXPECT_GT(delta.Delta(metric::kFederationBytesToAccel), 0u);
  auto rs = system_.Query("SELECT COUNT(*) FROM dst");
  EXPECT_EQ(rs->At(0, 0).AsInteger(), 3);
}

TEST_F(MultiAccelTest, SameAcceleratorInsertSelectStaysLocal) {
  ASSERT_TRUE(system_
                  .Execute("CREATE TABLE s1 (x INT) IN ACCELERATOR accel1")
                  .ok());
  ASSERT_TRUE(system_.Execute("INSERT INTO s1 VALUES (1)").ok());
  ASSERT_TRUE(system_
                  .Execute("CREATE TABLE s2 (x INT) IN ACCELERATOR accel1")
                  .ok());
  MetricsDelta delta(system_.metrics());
  auto r = system_.Execute("INSERT INTO s2 SELECT x FROM s1");
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r->detail.find("entirely on the accelerator"), std::string::npos);
  EXPECT_EQ(delta.Delta(metric::kFederationBytesFromAccel), 0u);
}

TEST_F(MultiAccelTest, AddTablesWithExplicitTargetAndBalanced) {
  ASSERT_TRUE(system_.Execute("CREATE TABLE d1 (x INT)").ok());
  ASSERT_TRUE(system_.Execute("CREATE TABLE d2 (x INT)").ok());
  ASSERT_TRUE(
      system_.Execute("CALL SYSPROC.ACCEL_ADD_TABLES('d1', 'ACCEL2')")
          .ok());
  EXPECT_TRUE(system_.accelerator(1).HasTable("d1"));
  // Balanced: d2 goes to the emptier accel1.
  ASSERT_TRUE(
      system_.Execute("CALL SYSPROC.ACCEL_ADD_TABLES('d2')").ok());
  EXPECT_TRUE(system_.accelerator(0).HasTable("d2"));
}

TEST_F(MultiAccelTest, ReplicationAppliesToHostingAccelerator) {
  ASSERT_TRUE(system_.Execute("CREATE TABLE t (x INT)").ok());
  ASSERT_TRUE(
      system_.Execute("CALL SYSPROC.ACCEL_ADD_TABLES('t', 'ACCEL2')")
          .ok());
  ASSERT_TRUE(system_.Execute("INSERT INTO t VALUES (1), (2)").ok());
  ASSERT_TRUE(system_.replication().Flush().ok());
  EXPECT_EQ((*system_.accelerator(1).GetTable("t"))->NumVersions(), 2u);
  auto rs = system_.Query("SELECT COUNT(*) FROM t");
  EXPECT_EQ(rs->At(0, 0).AsInteger(), 2);
}

TEST_F(MultiAccelTest, OfflineAcceleratorRejectsWork) {
  ASSERT_TRUE(system_
                  .Execute("CREATE TABLE t (x INT) IN ACCELERATOR accel2")
                  .ok());
  ASSERT_TRUE(system_.Execute("INSERT INTO t VALUES (1)").ok());
  ASSERT_TRUE(
      system_.Execute("CALL SYSPROC.ACCEL_CONTROL('ACCEL2', 'OFFLINE')")
          .ok());
  auto q = system_.Execute("SELECT COUNT(*) FROM t");
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("offline"), std::string::npos);
  // New AOTs avoid the offline accelerator under balanced placement.
  ASSERT_TRUE(
      system_.Execute("CREATE TABLE fresh (x INT) IN ACCELERATOR").ok());
  EXPECT_TRUE(system_.accelerator(0).HasTable("fresh"));
  // Back online: queries work again.
  ASSERT_TRUE(
      system_.Execute("CALL SYSPROC.ACCEL_CONTROL('ACCEL2', 'ONLINE')")
          .ok());
  auto rs = system_.Query("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->At(0, 0).AsInteger(), 1);
}

TEST_F(MultiAccelTest, AnalyticsRunOnHostingAccelerator) {
  ASSERT_TRUE(system_
                  .Execute("CREATE TABLE feats (x DOUBLE) "
                              "IN ACCELERATOR accel2")
                  .ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(system_
                    .Execute("INSERT INTO feats VALUES (" +
                                std::to_string(i) + ".0)")
                    .ok());
  }
  ASSERT_TRUE(system_
                  .Execute("CALL IDAA.KMEANS('input=feats', "
                              "'output=clusters', 'columns=x', 'k=2')")
                  .ok());
  // The output AOT lives next to its input on accel2.
  auto info = system_.catalog().GetTable("clusters");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ((*info)->accelerator_name, "ACCEL2");
  EXPECT_TRUE(system_.accelerator(1).HasTable("clusters"));
}

TEST_F(MultiAccelTest, TablesInfoShowsAccelerator) {
  ASSERT_TRUE(system_
                  .Execute("CREATE TABLE t (x INT) IN ACCELERATOR accel2")
                  .ok());
  auto rs = system_.Query("CALL SYSPROC.ACCEL_GET_TABLES_INFO()");
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->NumRows(), 1u);
  EXPECT_EQ(rs->At(0, 5).AsVarchar(), "ACCEL2");
}

TEST_F(MultiAccelTest, GroomSweepsAllAccelerators) {
  ASSERT_TRUE(system_
                  .Execute("CREATE TABLE g1 (x INT) IN ACCELERATOR accel1")
                  .ok());
  ASSERT_TRUE(system_
                  .Execute("CREATE TABLE g2 (x INT) IN ACCELERATOR accel2")
                  .ok());
  ASSERT_TRUE(system_.Execute("INSERT INTO g1 VALUES (1)").ok());
  ASSERT_TRUE(system_.Execute("INSERT INTO g2 VALUES (1)").ok());
  ASSERT_TRUE(system_.Execute("DELETE FROM g1").ok());
  ASSERT_TRUE(system_.Execute("DELETE FROM g2").ok());
  ASSERT_TRUE(system_.Execute("CALL SYSPROC.ACCEL_GROOM()").ok());
  EXPECT_EQ((*system_.accelerator(0).GetTable("g1"))->NumVersions(), 0u);
  EXPECT_EQ((*system_.accelerator(1).GetTable("g2"))->NumVersions(), 0u);
}

TEST_F(MultiAccelTest, ResultCacheInvalidatesPerAcceleratorNotGlobally) {
  // A write to a table hosted on accel1 must evict only cached results
  // that read that table; cached results for accel2-hosted tables survive.
  ASSERT_TRUE(system_
                  .Execute("CREATE TABLE rc1 (x INT) IN ACCELERATOR accel1")
                  .ok());
  ASSERT_TRUE(system_
                  .Execute("CREATE TABLE rc2 (x INT) IN ACCELERATOR accel2")
                  .ok());
  ASSERT_TRUE(system_.Execute("INSERT INTO rc1 VALUES (1), (2)").ok());
  ASSERT_TRUE(system_.Execute("INSERT INTO rc2 VALUES (10), (20)").ok());

  auto read1 = system_.Prepare("SELECT SUM(x) FROM rc1");
  ASSERT_TRUE(read1.ok()) << read1.status().ToString();
  auto read2 = system_.Prepare("SELECT SUM(x) FROM rc2");
  ASSERT_TRUE(read2.ok()) << read2.status().ToString();

  ASSERT_TRUE(read1->Execute().ok());
  ASSERT_TRUE(read2->Execute().ok());
  auto warm1 = read1->Execute();
  auto warm2 = read2->Execute();
  ASSERT_TRUE(warm1.ok());
  ASSERT_TRUE(warm2.ok());
  EXPECT_EQ(warm1->result_cache, "hit");
  EXPECT_EQ(warm2->result_cache, "hit");

  ASSERT_TRUE(system_.Execute("INSERT INTO rc1 VALUES (3)").ok());

  auto after1 = read1->Execute();
  ASSERT_TRUE(after1.ok());
  EXPECT_NE(after1->result_cache, "hit")
      << "write to rc1 must evict cached rc1 reads";
  EXPECT_EQ(after1->rows.At(0, 0).AsInteger(), 6);
  auto after2 = read2->Execute();
  ASSERT_TRUE(after2.ok());
  EXPECT_EQ(after2->result_cache, "hit")
      << "write on accel1 must not evict accel2-hosted results";
  EXPECT_EQ(after2->rows.At(0, 0).AsInteger(), 30);
}

}  // namespace
}  // namespace idaa
