// Plan-cache normalization and template tests: the cache key must identify
// exactly the statements that share a parse shape, string/numeric literal
// edge cases must never leak into the key, and instantiating a cached
// template must reproduce the fresh parse bit-for-bit.

#include "sql/plan_cache.h"

#include <gtest/gtest.h>

#include "sql/parser.h"

namespace idaa::sql {
namespace {

std::string KeyOf(const std::string& sql) {
  auto norm = NormalizeForCache(sql, /*parameterize_literals=*/true);
  EXPECT_TRUE(norm.ok()) << norm.status().ToString();
  EXPECT_TRUE(norm->cacheable) << sql;
  return norm->key;
}

TEST(PlanCacheTest, SameShapeDifferentLiteralsShareKey) {
  EXPECT_EQ(KeyOf("SELECT a FROM t WHERE b = 5"),
            KeyOf("SELECT a FROM t WHERE b = 99"));
  EXPECT_EQ(KeyOf("SELECT a FROM t WHERE s = 'x'"),
            KeyOf("SELECT a FROM t WHERE s = 'completely different'"));
  EXPECT_EQ(KeyOf("SELECT a FROM t WHERE b = 1.5"),
            KeyOf("SELECT a FROM t WHERE b = 2.25"));
}

TEST(PlanCacheTest, DifferentShapesGetDifferentKeys) {
  EXPECT_NE(KeyOf("SELECT a FROM t WHERE b = 5"),
            KeyOf("SELECT a FROM t WHERE b > 5"));
  EXPECT_NE(KeyOf("SELECT a FROM t WHERE b = 5"),
            KeyOf("SELECT a FROM u WHERE b = 5"));
  EXPECT_NE(KeyOf("SELECT a FROM t WHERE b = 5"),
            KeyOf("SELECT a, c FROM t WHERE b = 5"));
}

TEST(PlanCacheTest, CaseAndWhitespaceNormalize) {
  EXPECT_EQ(KeyOf("select a from t where b = 5"),
            KeyOf("SELECT   a\nFROM t\tWHERE b = 7"));
}

TEST(PlanCacheTest, StringLiteralContainingQuestionMarkIsData) {
  // The '?' inside the string must be captured as a parameter *value*, not
  // mistaken for a marker; both spellings share the template.
  auto norm = NormalizeForCache("SELECT a FROM t WHERE s = 'what?'",
                                /*parameterize_literals=*/true);
  ASSERT_TRUE(norm.ok());
  ASSERT_EQ(norm->params.size(), 1u);
  EXPECT_EQ(norm->params[0].AsVarchar(), "what?");
  EXPECT_FALSE(norm->has_explicit_params);
  EXPECT_EQ(norm->key, KeyOf("SELECT a FROM t WHERE s = 'plain'"));
}

TEST(PlanCacheTest, StringLiteralWithEscapedQuotes) {
  auto norm = NormalizeForCache("SELECT a FROM t WHERE s = 'it''s ?'",
                                /*parameterize_literals=*/true);
  ASSERT_TRUE(norm.ok());
  ASSERT_EQ(norm->params.size(), 1u);
  EXPECT_EQ(norm->params[0].AsVarchar(), "it's ?");
}

TEST(PlanCacheTest, NegativeLiteralsKeepTheUnaryMinusInTheKey) {
  // The parser does not fold unary minus into the literal, so `-5` is
  // (minus, param) while `5` is (param): different shapes, different keys —
  // but two negative literals share one.
  EXPECT_NE(KeyOf("SELECT a FROM t WHERE b = -5"),
            KeyOf("SELECT a FROM t WHERE b = 5"));
  EXPECT_EQ(KeyOf("SELECT a FROM t WHERE b = -5"),
            KeyOf("SELECT a FROM t WHERE b = -7"));
}

TEST(PlanCacheTest, InListArityIsPartOfTheShape) {
  EXPECT_EQ(KeyOf("SELECT a FROM t WHERE b IN (1, 2)"),
            KeyOf("SELECT a FROM t WHERE b IN (3, 4)"));
  EXPECT_NE(KeyOf("SELECT a FROM t WHERE b IN (1, 2)"),
            KeyOf("SELECT a FROM t WHERE b IN (1, 2, 3)"));
}

TEST(PlanCacheTest, StructuralLiteralsStayInline) {
  // LIMIT N is parsed structurally (not an expression), so it must stay in
  // the key: LIMIT 5 and LIMIT 10 are different plans.
  EXPECT_NE(KeyOf("SELECT a FROM t LIMIT 5"), KeyOf("SELECT a FROM t LIMIT 10"));
  // DATE 'literal' folds into a Date value at parse time — inline too.
  EXPECT_NE(KeyOf("SELECT a FROM t WHERE d = DATE '2020-01-01'"),
            KeyOf("SELECT a FROM t WHERE d = DATE '2021-06-15'"));
  // CAST type length is structure, not data.
  EXPECT_NE(KeyOf("SELECT CAST(a AS VARCHAR(10)) FROM t"),
            KeyOf("SELECT CAST(a AS VARCHAR(20)) FROM t"));
}

TEST(PlanCacheTest, QuotedIdentifiersCannotCollideWithSyntax) {
  EXPECT_NE(KeyOf("SELECT a FROM t"), KeyOf("SELECT \"a from t\" FROM t"));
}

TEST(PlanCacheTest, NonDmlStatementsAreNotCacheable) {
  for (const char* sql :
       {"CREATE TABLE t (a INT)", "DROP TABLE t",
        "CALL SYSPROC.ACCEL_ADD_TABLES('t')", "EXPLAIN SELECT a FROM t"}) {
    auto norm = NormalizeForCache(sql, /*parameterize_literals=*/true);
    ASSERT_TRUE(norm.ok()) << sql;
    EXPECT_FALSE(norm->cacheable) << sql;
  }
}

TEST(PlanCacheTest, ExplicitMarkersAreDetected) {
  auto norm = NormalizeForCache("SELECT a FROM t WHERE b = ?",
                                /*parameterize_literals=*/true);
  ASSERT_TRUE(norm.ok());
  EXPECT_TRUE(norm->has_explicit_params);
  // But a '?' inside a string literal is not a marker.
  auto data = NormalizeForCache("SELECT a FROM t WHERE s = '?'",
                                /*parameterize_literals=*/true);
  ASSERT_TRUE(data.ok());
  EXPECT_FALSE(data->has_explicit_params);
}

TEST(PlanCacheTest, ParameterizeSubstituteRoundTrip) {
  const std::string sql =
      "SELECT a, b + 2 FROM t WHERE s = 'x' AND b IN (10, 20) AND c > 1.5";
  auto fresh = ParseStatement(sql);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  StatementPtr tmpl = CloneStatement(**fresh);
  ASSERT_NE(tmpl, nullptr);
  std::vector<Value> params;
  size_t n = ParameterizeStatement(*tmpl, &params);
  EXPECT_EQ(n, 5u);
  ASSERT_EQ(params.size(), 5u);
  EXPECT_EQ(CountParams(*tmpl), 5u);
  // Token-side extraction must agree with the AST walk.
  auto norm = NormalizeForCache(sql, /*parameterize_literals=*/true);
  ASSERT_TRUE(norm.ok());
  ASSERT_EQ(norm->params.size(), params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    EXPECT_TRUE(params[i] == norm->params[i]) << "param " << i;
  }
  // Substituting the extracted values reproduces the original statement.
  ASSERT_TRUE(SubstituteParams(*tmpl, params).ok());
  EXPECT_EQ(tmpl->ToSql(), (*fresh)->ToSql());
}

TEST(PlanCacheTest, SubstituteRejectsCountMismatch) {
  auto stmt = ParseStatement("SELECT a FROM t WHERE b = ? AND c = ?");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(CountParams(**stmt), 2u);
  EXPECT_FALSE(SubstituteParams(**stmt, {Value::Integer(1)}).ok());
  EXPECT_TRUE(
      SubstituteParams(**stmt, {Value::Integer(1), Value::Integer(2)}).ok());
}

TEST(PlanCacheTest, CachedPlanInstantiateMatchesFreshParse) {
  const std::string tmpl_sql = "SELECT a FROM t WHERE b = ? AND s = ?";
  auto stmt = ParseStatement(tmpl_sql);
  ASSERT_TRUE(stmt.ok());
  CachedPlan plan;
  plan.template_stmt = std::move(*stmt);
  plan.num_params = 2;
  auto inst = plan.Instantiate({Value::Integer(7), Value::Varchar("hi")});
  ASSERT_TRUE(inst.ok()) << inst.status().ToString();
  auto fresh = ParseStatement("SELECT a FROM t WHERE b = 7 AND s = 'hi'");
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ((*inst)->ToSql(), (*fresh)->ToSql());
  // The shared template must be untouched by instantiation.
  auto tmpl_fresh = ParseStatement(tmpl_sql);
  ASSERT_TRUE(tmpl_fresh.ok());
  EXPECT_EQ(plan.template_stmt->ToSql(), (*tmpl_fresh)->ToSql());
  auto again = plan.Instantiate({Value::Integer(8), Value::Varchar("yo")});
  ASSERT_TRUE(again.ok());
  EXPECT_NE((*again)->ToSql(), (*inst)->ToSql());
}

TEST(PlanCacheTest, LruEvictionAndStats) {
  PlanCache cache(2);
  for (int i = 0; i < 3; ++i) {
    auto plan = std::make_shared<CachedPlan>();
    plan->key = "k" + std::to_string(i);
    cache.Put(plan);
  }
  EXPECT_EQ(cache.stats().size, 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.Get("k0"), nullptr);  // evicted (oldest)
  EXPECT_NE(cache.Get("k2"), nullptr);
  // Touch k1, insert k3: k2 is now the LRU victim.
  EXPECT_NE(cache.Get("k1"), nullptr);
  auto plan = std::make_shared<CachedPlan>();
  plan->key = "k3";
  cache.Put(plan);
  EXPECT_EQ(cache.Get("k2"), nullptr);
  EXPECT_NE(cache.Get("k1"), nullptr);
  auto stats = cache.stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.misses, 0u);
  cache.Clear();
  EXPECT_EQ(cache.stats().size, 0u);
}

}  // namespace
}  // namespace idaa::sql
