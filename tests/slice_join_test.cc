// Targeted tests for the slice-side (broadcast) star join: duplicate
// dimension keys (cross products), NULL join keys, transaction visibility
// through the fast path, and fallback equivalence.

#include <gtest/gtest.h>

#include "idaa/system.h"

namespace idaa {
namespace {

class SliceJoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(system_
                    .ExecuteSql("CREATE TABLE fact (id INT NOT NULL, k INT, "
                                "v DOUBLE) IN ACCELERATOR")
                    .ok());
    ASSERT_TRUE(system_
                    .ExecuteSql("CREATE TABLE dim (k INT, label VARCHAR) "
                                "IN ACCELERATOR")
                    .ok());
    ASSERT_TRUE(system_
                    .ExecuteSql("INSERT INTO fact VALUES (1, 10, 1.0), "
                                "(2, 20, 2.0), (3, 10, 3.0), (4, NULL, 4.0), "
                                "(5, 99, 5.0)")
                    .ok());
    // Key 10 appears TWICE in the dimension (cross product expected);
    // key 30 matches nothing; one dim row has a NULL key.
    ASSERT_TRUE(system_
                    .ExecuteSql("INSERT INTO dim VALUES (10, 'ten-a'), "
                                "(10, 'ten-b'), (20, 'twenty'), (30, 'lonely'), "
                                "(NULL, 'void')")
                    .ok());
  }

  IdaaSystem system_;
};

TEST_F(SliceJoinTest, DuplicateDimKeysProduceCrossProduct) {
  auto rs = system_.Query(
      "SELECT f.id, d.label FROM fact f JOIN dim d ON f.k = d.k "
      "ORDER BY f.id, d.label");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  // fact 1 (k=10) -> ten-a, ten-b; fact 2 (k=20) -> twenty;
  // fact 3 (k=10) -> ten-a, ten-b; fact 4 (NULL) and 5 (99) -> dropped.
  ASSERT_EQ(rs->NumRows(), 5u);
  EXPECT_EQ(rs->At(0, 1).AsVarchar(), "ten-a");
  EXPECT_EQ(rs->At(1, 1).AsVarchar(), "ten-b");
  EXPECT_EQ(rs->At(2, 1).AsVarchar(), "twenty");
  EXPECT_EQ(rs->At(3, 0).AsInteger(), 3);
}

TEST_F(SliceJoinTest, AggregationThroughSliceJoin) {
  auto rs = system_.Query(
      "SELECT d.label, COUNT(*), SUM(f.v) FROM fact f "
      "JOIN dim d ON f.k = d.k GROUP BY d.label ORDER BY d.label");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->NumRows(), 3u);
  // ten-a: facts 1,3 -> sum 4.0; ten-b same; twenty: fact 2 -> 2.0.
  EXPECT_EQ(rs->At(0, 0).AsVarchar(), "ten-a");
  EXPECT_EQ(rs->At(0, 1).AsInteger(), 2);
  EXPECT_DOUBLE_EQ(rs->At(0, 2).AsDouble(), 4.0);
  EXPECT_DOUBLE_EQ(rs->At(2, 2).AsDouble(), 2.0);
}

TEST_F(SliceJoinTest, UncommittedFactRowsVisibleToOwner) {
  ASSERT_TRUE(system_.Begin().ok());
  ASSERT_TRUE(
      system_.ExecuteSql("INSERT INTO fact VALUES (6, 20, 6.0)").ok());
  auto inside = system_.Query(
      "SELECT COUNT(*) FROM fact f JOIN dim d ON f.k = d.k");
  ASSERT_TRUE(inside.ok());
  EXPECT_EQ(inside->At(0, 0).AsInteger(), 6);  // 5 + the new match
  ASSERT_TRUE(system_.Rollback().ok());
  auto after = system_.Query(
      "SELECT COUNT(*) FROM fact f JOIN dim d ON f.k = d.k");
  EXPECT_EQ(after->At(0, 0).AsInteger(), 5);
}

TEST_F(SliceJoinTest, FallbackPathsAgreeWithFastPath) {
  // Residual join conjunct forces the coordinator join; the result must
  // match the broadcast-join answer for the pure equi version.
  auto fast = system_.Query(
      "SELECT COUNT(*) FROM fact f JOIN dim d ON f.k = d.k");
  auto slow = system_.Query(
      "SELECT COUNT(*) FROM fact f JOIN dim d ON f.k = d.k AND f.v > -1e9");
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  EXPECT_EQ(fast->At(0, 0).AsInteger(), slow->At(0, 0).AsInteger());
}

TEST_F(SliceJoinTest, DimScanPredicateAppliedBeforeBroadcast) {
  auto rs = system_.Query(
      "SELECT COUNT(*) FROM fact f JOIN dim d ON f.k = d.k "
      "WHERE d.label LIKE 'ten%'");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->At(0, 0).AsInteger(), 4);  // facts 1,3 x (ten-a, ten-b)
}

}  // namespace
}  // namespace idaa
