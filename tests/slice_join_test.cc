// Targeted tests for the accelerator star join (the batch-native hash join
// and the slice broadcast fallback): duplicate dimension keys (cross
// products), NULL join keys, left-outer padding, empty build sides,
// dictionary-code VARCHAR keys spanning slices, transaction visibility
// through the fast path, and batch = row = DB2 equivalence.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "idaa/system.h"

namespace idaa {
namespace {

/// The agreement checks re-run the same SELECT with only the batch join
/// toggled; the result cache would serve the re-run from the first
/// execution and make the comparison vacuous, so it stays off here.
federation::ExecOptions NoResultCache() {
  federation::ExecOptions opts;
  opts.use_result_cache = false;
  return opts;
}

std::vector<std::string> Canon(const ResultSet& rs, bool keep_order) {
  std::vector<std::string> lines;
  for (const Row& row : rs.rows()) {
    std::string line;
    for (const Value& v : row) {
      line += v.ToString();
      line += "|";
    }
    lines.push_back(std::move(line));
  }
  if (!keep_order) std::sort(lines.begin(), lines.end());
  return lines;
}

/// Runs `sql` with the batch join on and off; both answers must match
/// (bit-identical canonical rows). Works on accelerator-only tables.
void ExpectBatchRowAgreement(IdaaSystem& system, const std::string& sql) {
  const bool ordered = sql.find("ORDER BY") != std::string::npos;
  system.accelerator().SetBatchPathEnabled(true);
  auto batch = system.Execute(sql, NoResultCache());
  ASSERT_TRUE(batch.ok()) << sql << "\n" << batch.status().ToString();
  system.accelerator().SetBatchPathEnabled(false);
  auto row = system.Execute(sql, NoResultCache());
  system.accelerator().SetBatchPathEnabled(true);
  ASSERT_TRUE(row.ok()) << sql << "\n" << row.status().ToString();
  EXPECT_EQ(Canon(row->rows, ordered), Canon(batch->rows, ordered))
      << sql;
}

/// Runs `sql` on the batch join, the row-path join, and DB2; all three
/// answers must match (bit-identical canonical rows). Requires replicated
/// tables (a DB2 copy must exist).
void ExpectThreeWayAgreement(IdaaSystem& system, const std::string& sql) {
  const bool ordered = sql.find("ORDER BY") != std::string::npos;
  system.SetAccelerationMode(federation::AccelerationMode::kNone);
  auto db2 = system.Execute(sql, NoResultCache());
  ASSERT_TRUE(db2.ok()) << sql << "\n" << db2.status().ToString();

  system.SetAccelerationMode(federation::AccelerationMode::kEligible);
  system.accelerator().SetBatchPathEnabled(true);
  auto batch = system.Execute(sql, NoResultCache());
  ASSERT_TRUE(batch.ok()) << sql << "\n" << batch.status().ToString();
  EXPECT_EQ(batch->routed_to, federation::Target::kAccelerator) << sql;

  system.accelerator().SetBatchPathEnabled(false);
  auto row = system.Execute(sql, NoResultCache());
  system.accelerator().SetBatchPathEnabled(true);
  ASSERT_TRUE(row.ok()) << sql << "\n" << row.status().ToString();

  EXPECT_EQ(Canon(db2->rows, ordered), Canon(batch->rows, ordered))
      << sql;
  EXPECT_EQ(Canon(row->rows, ordered), Canon(batch->rows, ordered))
      << sql;
}

class SliceJoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(system_
                    .Execute("CREATE TABLE fact (id INT NOT NULL, k INT, "
                                "v DOUBLE) IN ACCELERATOR")
                    .ok());
    ASSERT_TRUE(system_
                    .Execute("CREATE TABLE dim (k INT, label VARCHAR) "
                                "IN ACCELERATOR")
                    .ok());
    ASSERT_TRUE(system_
                    .Execute("INSERT INTO fact VALUES (1, 10, 1.0), "
                                "(2, 20, 2.0), (3, 10, 3.0), (4, NULL, 4.0), "
                                "(5, 99, 5.0)")
                    .ok());
    // Key 10 appears TWICE in the dimension (cross product expected);
    // key 30 matches nothing; one dim row has a NULL key.
    ASSERT_TRUE(system_
                    .Execute("INSERT INTO dim VALUES (10, 'ten-a'), "
                                "(10, 'ten-b'), (20, 'twenty'), (30, 'lonely'), "
                                "(NULL, 'void')")
                    .ok());
  }

  IdaaSystem system_;
};

TEST_F(SliceJoinTest, DuplicateDimKeysProduceCrossProduct) {
  auto rs = system_.Query(
      "SELECT f.id, d.label FROM fact f JOIN dim d ON f.k = d.k "
      "ORDER BY f.id, d.label");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  // fact 1 (k=10) -> ten-a, ten-b; fact 2 (k=20) -> twenty;
  // fact 3 (k=10) -> ten-a, ten-b; fact 4 (NULL) and 5 (99) -> dropped.
  ASSERT_EQ(rs->NumRows(), 5u);
  EXPECT_EQ(rs->At(0, 1).AsVarchar(), "ten-a");
  EXPECT_EQ(rs->At(1, 1).AsVarchar(), "ten-b");
  EXPECT_EQ(rs->At(2, 1).AsVarchar(), "twenty");
  EXPECT_EQ(rs->At(3, 0).AsInteger(), 3);
}

TEST_F(SliceJoinTest, AggregationThroughSliceJoin) {
  auto rs = system_.Query(
      "SELECT d.label, COUNT(*), SUM(f.v) FROM fact f "
      "JOIN dim d ON f.k = d.k GROUP BY d.label ORDER BY d.label");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->NumRows(), 3u);
  // ten-a: facts 1,3 -> sum 4.0; ten-b same; twenty: fact 2 -> 2.0.
  EXPECT_EQ(rs->At(0, 0).AsVarchar(), "ten-a");
  EXPECT_EQ(rs->At(0, 1).AsInteger(), 2);
  EXPECT_DOUBLE_EQ(rs->At(0, 2).AsDouble(), 4.0);
  EXPECT_DOUBLE_EQ(rs->At(2, 2).AsDouble(), 2.0);
}

TEST_F(SliceJoinTest, UncommittedFactRowsVisibleToOwner) {
  ASSERT_TRUE(system_.Begin().ok());
  ASSERT_TRUE(
      system_.Execute("INSERT INTO fact VALUES (6, 20, 6.0)").ok());
  auto inside = system_.Query(
      "SELECT COUNT(*) FROM fact f JOIN dim d ON f.k = d.k");
  ASSERT_TRUE(inside.ok());
  EXPECT_EQ(inside->At(0, 0).AsInteger(), 6);  // 5 + the new match
  ASSERT_TRUE(system_.Rollback().ok());
  auto after = system_.Query(
      "SELECT COUNT(*) FROM fact f JOIN dim d ON f.k = d.k");
  EXPECT_EQ(after->At(0, 0).AsInteger(), 5);
}

TEST_F(SliceJoinTest, FallbackPathsAgreeWithFastPath) {
  // Residual join conjunct forces the coordinator join; the result must
  // match the broadcast-join answer for the pure equi version.
  auto fast = system_.Query(
      "SELECT COUNT(*) FROM fact f JOIN dim d ON f.k = d.k");
  auto slow = system_.Query(
      "SELECT COUNT(*) FROM fact f JOIN dim d ON f.k = d.k AND f.v > -1e9");
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  EXPECT_EQ(fast->At(0, 0).AsInteger(), slow->At(0, 0).AsInteger());
}

TEST_F(SliceJoinTest, DimScanPredicateAppliedBeforeBroadcast) {
  auto rs = system_.Query(
      "SELECT COUNT(*) FROM fact f JOIN dim d ON f.k = d.k "
      "WHERE d.label LIKE 'ten%'");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->At(0, 0).AsInteger(), 4);  // facts 1,3 x (ten-a, ten-b)
}

TEST_F(SliceJoinTest, LeftOuterJoinPadsUnmatchedAndNullKeys) {
  auto rs = system_.Query(
      "SELECT f.id, d.label FROM fact f LEFT JOIN dim d ON f.k = d.k "
      "ORDER BY f.id, d.label");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  // facts 1,3 match twice each; fact 2 once; facts 4 (NULL key) and 5
  // (no match) survive with a NULL label.
  ASSERT_EQ(rs->NumRows(), 7u);
  EXPECT_EQ(rs->At(5, 0).AsInteger(), 4);
  EXPECT_TRUE(rs->At(5, 1).is_null());
  EXPECT_EQ(rs->At(6, 0).AsInteger(), 5);
  EXPECT_TRUE(rs->At(6, 1).is_null());
  ExpectBatchRowAgreement(
      system_,
      "SELECT f.id, d.label FROM fact f LEFT JOIN dim d ON f.k = d.k "
      "ORDER BY f.id, d.label");
}

TEST_F(SliceJoinTest, EmptyBuildSide) {
  ASSERT_TRUE(
      system_.Execute("CREATE TABLE nodim (k INT, tag VARCHAR) "
                         "IN ACCELERATOR")
          .ok());
  auto inner = system_.Query(
      "SELECT COUNT(*) FROM fact f JOIN nodim n ON f.k = n.k");
  ASSERT_TRUE(inner.ok()) << inner.status().ToString();
  EXPECT_EQ(inner->At(0, 0).AsInteger(), 0);
  auto left = system_.Query(
      "SELECT f.id, n.tag FROM fact f LEFT JOIN nodim n ON f.k = n.k "
      "ORDER BY f.id");
  ASSERT_TRUE(left.ok()) << left.status().ToString();
  ASSERT_EQ(left->NumRows(), 5u);  // every fact row, NULL-padded
  for (size_t i = 0; i < 5; ++i) EXPECT_TRUE(left->At(i, 1).is_null());
  ExpectBatchRowAgreement(
      system_, "SELECT COUNT(*) FROM fact f JOIN nodim n ON f.k = n.k");
  ExpectBatchRowAgreement(
      system_,
      "SELECT f.id, n.tag FROM fact f LEFT JOIN nodim n ON f.k = n.k "
      "ORDER BY f.id");
}

TEST_F(SliceJoinTest, DuplicateHeavyBuildKeys) {
  // 30 more dim rows all carrying key 10: facts 1 and 3 each match the two
  // original 'ten' rows plus all 30 duplicates.
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(system_
                    .Execute("INSERT INTO dim VALUES (10, 'dup-" +
                                std::to_string(i) + "')")
                    .ok());
  }
  auto rs = system_.Query(
      "SELECT COUNT(*) FROM fact f JOIN dim d ON f.k = d.k");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->At(0, 0).AsInteger(), 2 * 32 + 1);
  ExpectBatchRowAgreement(
      system_,
      "SELECT f.id, d.label FROM fact f JOIN dim d ON f.k = d.k "
      "ORDER BY f.id, d.label");
}

TEST_F(SliceJoinTest, ResidualPredicateOnBatchJoin) {
  ExpectBatchRowAgreement(
      system_,
      "SELECT f.id, d.label FROM fact f JOIN dim d "
      "ON f.k = d.k AND f.v > 1.5 ORDER BY f.id, d.label");
  ExpectBatchRowAgreement(
      system_,
      "SELECT f.id, d.label FROM fact f LEFT JOIN dim d "
      "ON f.k = d.k AND f.v > 1.5 ORDER BY f.id, d.label");
}

// Replicated copies of the same star (DB2 + accelerator), so the DB2
// engine can serve as the reference in three-way equivalence checks.
class ReplicatedJoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        system_.Execute("CREATE TABLE fact (id INT NOT NULL, k INT, "
                           "v DOUBLE)")
            .ok());
    ASSERT_TRUE(
        system_.Execute("CREATE TABLE dim (k INT, label VARCHAR)").ok());
    ASSERT_TRUE(system_
                    .Execute("INSERT INTO fact VALUES (1, 10, 1.0), "
                                "(2, 20, 2.0), (3, 10, 3.0), (4, NULL, 4.0), "
                                "(5, 99, 5.0)")
                    .ok());
    ASSERT_TRUE(system_
                    .Execute("INSERT INTO dim VALUES (10, 'ten-a'), "
                                "(10, 'ten-b'), (20, 'twenty'), (30, 'lonely'), "
                                "(NULL, 'void')")
                    .ok());
    ASSERT_TRUE(
        system_.Execute("CALL SYSPROC.ACCEL_ADD_TABLES('fact')").ok());
    ASSERT_TRUE(
        system_.Execute("CALL SYSPROC.ACCEL_ADD_TABLES('dim')").ok());
  }

  IdaaSystem system_;
};

TEST_F(ReplicatedJoinTest, ThreeWayEquivalenceOnJoinShapes) {
  ExpectThreeWayAgreement(
      system_, "SELECT COUNT(*) FROM fact f JOIN dim d ON f.k = d.k");
  ExpectThreeWayAgreement(
      system_,
      "SELECT d.label, COUNT(*), SUM(f.v) FROM fact f "
      "JOIN dim d ON f.k = d.k GROUP BY d.label ORDER BY d.label");
  ExpectThreeWayAgreement(
      system_,
      "SELECT f.id, d.label FROM fact f JOIN dim d ON f.k = d.k "
      "WHERE f.v < 3.5 ORDER BY f.id, d.label");
  ExpectThreeWayAgreement(system_,
                          "SELECT COUNT(*) FROM fact f CROSS JOIN dim d");
  ExpectThreeWayAgreement(
      system_,
      "SELECT f.id, d.label FROM fact f LEFT JOIN dim d ON f.k = d.k "
      "ORDER BY f.id, d.label");
}

// Dictionary-encoded VARCHAR join keys with the fact table spread over
// several slices: slice-local codes differ per slice (each slice interns
// strings in its own arrival order), so the batch join must remap probe
// codes into the build table's dictionary before comparing.
class VarcharKeyJoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SystemOptions options;
    options.accelerator.num_slices = 3;
    options.accelerator.zone_size = 8;
    system_ = std::make_unique<IdaaSystem>(options);
    ASSERT_TRUE(system_
                    ->Execute("CREATE TABLE sales (id INT NOT NULL, "
                                 "cat VARCHAR, amount INT)")
                    .ok());
    ASSERT_TRUE(system_
                    ->Execute("CREATE TABLE cats (cat VARCHAR, boost INT)")
                    .ok());
    // Round-robin placement interleaves the categories across slices in
    // different first-seen orders, so slice-local codes disagree.
    static const char* kCats[] = {"delta", "alpha", "echo", "bravo",
                                  "charlie"};
    std::string ins = "INSERT INTO sales VALUES ";
    for (int i = 0; i < 60; ++i) {
      if (i != 0) ins += ", ";
      ins += "(" + std::to_string(i) + ", '" +
             kCats[(i * 7 + i / 9) % 5] + "', " + std::to_string(i % 13) + ")";
    }
    ASSERT_TRUE(system_->Execute(ins).ok());
    ASSERT_TRUE(system_
                    ->Execute("INSERT INTO sales VALUES (60, NULL, 1), "
                                 "(61, 'zulu', 2)")
                    .ok());
    ASSERT_TRUE(system_
                    ->Execute("INSERT INTO cats VALUES ('alpha', 1), "
                                 "('bravo', 2), ('charlie', 3), ('delta', 4), "
                                 "('foxtrot', 6), (NULL, 0)")
                    .ok());
    ASSERT_TRUE(
        system_->Execute("CALL SYSPROC.ACCEL_ADD_TABLES('sales')").ok());
    ASSERT_TRUE(
        system_->Execute("CALL SYSPROC.ACCEL_ADD_TABLES('cats')").ok());
  }

  std::unique_ptr<IdaaSystem> system_;
};

TEST_F(VarcharKeyJoinTest, DictionaryCodeKeysAcrossSlices) {
  // 'echo' sales match nothing; 'zulu' and the NULL key drop out; every
  // other category matches exactly one cats row.
  ExpectThreeWayAgreement(
      *system_,
      "SELECT s.id, c.boost FROM sales s JOIN cats c ON s.cat = c.cat "
      "ORDER BY s.id");
  ExpectThreeWayAgreement(
      *system_,
      "SELECT c.cat, COUNT(*), SUM(s.amount) FROM sales s "
      "JOIN cats c ON s.cat = c.cat GROUP BY c.cat ORDER BY c.cat");
  ExpectThreeWayAgreement(
      *system_,
      "SELECT s.id, s.cat, c.boost FROM sales s LEFT JOIN cats c "
      "ON s.cat = c.cat ORDER BY s.id");
}

TEST_F(VarcharKeyJoinTest, BatchJoinHandlesVarcharKeys) {
  // The dictionary-code path must actually engage (not fall back).
  auto rs = system_->Query(
      "EXPLAIN ANALYZE SELECT COUNT(*) FROM sales s "
      "JOIN cats c ON s.cat = c.cat");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  bool saw_probe = false;
  for (const Row& row : rs->rows()) {
    for (const Value& v : row) {
      if (!v.is_null() && v.is_varchar() &&
          v.AsVarchar().find("batch_join_probe") != std::string::npos) {
        saw_probe = true;
      }
    }
  }
  EXPECT_TRUE(saw_probe);
}

}  // namespace
}  // namespace idaa
