// IDAA Loader tests (direct AOT ingestion vs DB2 path) and governance
// tests (privileges at the DB2 front door, audit log).

#include <gtest/gtest.h>

#include "idaa/system.h"
#include "loader/record_source.h"

namespace idaa {
namespace {

// ---------------------------------------------------------------------------
// Loader
// ---------------------------------------------------------------------------

class LoaderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SystemOptions options;
    options.replication_batch_size = 0;
    system_ = std::make_unique<IdaaSystem>(options);
  }

  Schema TweetSchema() {
    return Schema({{"ID", DataType::kInteger, false},
                   {"USERNAME", DataType::kVarchar, true},
                   {"SENTIMENT", DataType::kDouble, true}});
  }

  std::unique_ptr<IdaaSystem> system_;
};

TEST_F(LoaderTest, CsvIntoAotDirectly) {
  ASSERT_TRUE(system_
                  ->Execute("CREATE TABLE tweets (id INT NOT NULL, "
                               "username VARCHAR, sentiment DOUBLE) "
                               "IN ACCELERATOR")
                  .ok());
  loader::CsvStringSource source(
      "1,alice,0.9\n2,bob,-0.3\n3,,0.1\n", TweetSchema());
  auto report = system_->loader().Load("tweets", &source);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->rows_loaded, 3u);
  auto rs = system_->Query("SELECT COUNT(*) FROM tweets");
  EXPECT_EQ(rs->At(0, 0).AsInteger(), 3);
  // NULL username parsed from empty CSV field.
  rs = system_->Query("SELECT COUNT(*) FROM tweets WHERE username IS NULL");
  EXPECT_EQ(rs->At(0, 0).AsInteger(), 1);
  // Data never touched DB2.
  EXPECT_EQ(system_->metrics().Get(metric::kDb2RowsMaterialized), 0u);
}

TEST_F(LoaderTest, GeneratorIntoDb2Table) {
  ASSERT_TRUE(system_->Execute("CREATE TABLE nums (n INT)").ok());
  Schema schema({{"N", DataType::kInteger, true}});
  loader::GeneratorSource source(schema, 250, [](size_t i) {
    return Row{Value::Integer(static_cast<int64_t>(i))};
  });
  loader::LoadOptions options;
  options.batch_size = 100;
  auto report = system_->loader().Load("nums", &source, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->rows_loaded, 250u);
  EXPECT_EQ(report->batches, 3u);  // 100 + 100 + 50
  auto rs = system_->Query("SELECT COUNT(*), MAX(n) FROM nums");
  EXPECT_EQ(rs->At(0, 0).AsInteger(), 250);
  EXPECT_EQ(rs->At(0, 1).AsInteger(), 249);
}

TEST_F(LoaderTest, LoadIntoAcceleratedTableReplicates) {
  ASSERT_TRUE(system_->Execute("CREATE TABLE facts (n INT)").ok());
  ASSERT_TRUE(
      system_->Execute("CALL SYSPROC.ACCEL_ADD_TABLES('facts')").ok());
  Schema schema({{"N", DataType::kInteger, true}});
  loader::GeneratorSource source(schema, 10, [](size_t i) {
    return Row{Value::Integer(static_cast<int64_t>(i))};
  });
  ASSERT_TRUE(system_->loader().Load("facts", &source).ok());
  // DB2 is the system of record; replication carries rows to the replica.
  ASSERT_TRUE(system_->replication().Flush().ok());
  system_->SetAccelerationMode(federation::AccelerationMode::kEligible);
  auto rs = system_->Query("SELECT COUNT(*) FROM facts");
  EXPECT_EQ(rs->At(0, 0).AsInteger(), 10);
}

TEST_F(LoaderTest, UnknownTableFails) {
  Schema schema({{"N", DataType::kInteger, true}});
  loader::GeneratorSource source(schema, 1, [](size_t) {
    return Row{Value::Integer(1)};
  });
  EXPECT_FALSE(system_->loader().Load("nosuch", &source).ok());
}

TEST_F(LoaderTest, MalformedCsvAborts) {
  ASSERT_TRUE(system_
                  ->Execute(
                      "CREATE TABLE strict (id INT NOT NULL) IN ACCELERATOR")
                  .ok());
  Schema schema({{"ID", DataType::kInteger, false}});
  loader::CsvStringSource source("1\nnot_a_number\n3\n", schema);
  auto report = system_->loader().Load("strict", &source);
  EXPECT_FALSE(report.ok());
}

TEST_F(LoaderTest, MissingFileFails) {
  ASSERT_TRUE(
      system_->Execute("CREATE TABLE f (id INT) IN ACCELERATOR").ok());
  Schema schema({{"ID", DataType::kInteger, true}});
  loader::CsvFileSource source("/nonexistent/file.csv", schema);
  auto report = system_->loader().Load("f", &source);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kIoError);
}

TEST_F(LoaderTest, LoaderMetricsAccumulate) {
  ASSERT_TRUE(
      system_->Execute("CREATE TABLE m (id INT) IN ACCELERATOR").ok());
  Schema schema({{"ID", DataType::kInteger, true}});
  loader::GeneratorSource source(schema, 42, [](size_t i) {
    return Row{Value::Integer(static_cast<int64_t>(i))};
  });
  ASSERT_TRUE(system_->loader().Load("m", &source).ok());
  EXPECT_EQ(system_->metrics().Get(metric::kLoaderRowsIngested), 42u);
  EXPECT_GT(system_->metrics().Get(metric::kLoaderBytesIngested), 0u);
}

// ---------------------------------------------------------------------------
// Governance
// ---------------------------------------------------------------------------

class GovernanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Admin sets up tables and a restricted user.
    ASSERT_TRUE(system_.Execute("CREATE TABLE secret (v INT)").ok());
    ASSERT_TRUE(system_.Execute("INSERT INTO secret VALUES (42)").ok());
    ASSERT_TRUE(
        system_.Execute("CREATE TABLE open (v INT) IN ACCELERATOR").ok());
    ASSERT_TRUE(system_.Execute("GRANT SELECT ON open TO alice").ok());
  }

  IdaaSystem system_;
};

TEST_F(GovernanceTest, DeniedSelectWithoutGrant) {
  system_.SetUser("alice");
  auto r = system_.Execute("SELECT * FROM secret");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotAuthorized());
}

TEST_F(GovernanceTest, GrantedSelectWorks) {
  system_.SetUser("alice");
  EXPECT_TRUE(system_.Execute("SELECT * FROM open").ok());
}

TEST_F(GovernanceTest, InsertRequiresInsertPrivilege) {
  system_.SetUser("alice");
  EXPECT_FALSE(system_.Execute("INSERT INTO open VALUES (1)").ok());
  system_.SetUser(governance::AuthorizationManager::kAdmin);
  ASSERT_TRUE(system_.Execute("GRANT INSERT ON open TO alice").ok());
  system_.SetUser("alice");
  EXPECT_TRUE(system_.Execute("INSERT INTO open VALUES (1)").ok());
}

TEST_F(GovernanceTest, RevokeRemovesAccess) {
  system_.SetUser(governance::AuthorizationManager::kAdmin);
  ASSERT_TRUE(system_.Execute("REVOKE SELECT ON open FROM alice").ok());
  system_.SetUser("alice");
  EXPECT_FALSE(system_.Execute("SELECT * FROM open").ok());
}

TEST_F(GovernanceTest, OnlyAdminGrants) {
  system_.SetUser("alice");
  auto r = system_.Execute("GRANT SELECT ON secret TO alice");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotAuthorized());
}

TEST_F(GovernanceTest, CreatorGetsFullPrivileges) {
  system_.SetUser(governance::AuthorizationManager::kAdmin);
  ASSERT_TRUE(system_.Execute("GRANT SELECT ON dummy TO bob").ok());
  system_.SetUser("bob");
  ASSERT_TRUE(
      system_.Execute("CREATE TABLE mine (v INT) IN ACCELERATOR").ok());
  EXPECT_TRUE(system_.Execute("INSERT INTO mine VALUES (1)").ok());
  EXPECT_TRUE(system_.Execute("SELECT * FROM mine").ok());
  EXPECT_TRUE(system_.Execute("DELETE FROM mine").ok());
  EXPECT_TRUE(system_.Execute("DROP TABLE mine").ok());
}

TEST_F(GovernanceTest, InsertSelectNeedsBothPrivileges) {
  system_.SetUser(governance::AuthorizationManager::kAdmin);
  ASSERT_TRUE(system_.Execute("GRANT INSERT ON open TO carol").ok());
  system_.SetUser("carol");
  // Carol may INSERT into open but cannot read secret.
  auto r = system_.Execute("INSERT INTO open SELECT v FROM secret");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotAuthorized());
}

TEST_F(GovernanceTest, AnalyticsRequiresExecuteAndInputSelect) {
  system_.SetUser(governance::AuthorizationManager::kAdmin);
  ASSERT_TRUE(system_.Execute("INSERT INTO open VALUES (1), (2)").ok());
  system_.SetUser("alice");  // has SELECT on open but no EXECUTE
  auto r = system_.Execute(
      "CALL IDAA.SAMPLE('input=open', 'output=open_sample', 'fraction=1.0')");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotAuthorized());

  system_.SetUser(governance::AuthorizationManager::kAdmin);
  ASSERT_TRUE(
      system_.Execute("GRANT EXECUTE ON IDAA.SAMPLE TO alice").ok());
  system_.SetUser("alice");
  auto ok = system_.Execute(
      "CALL IDAA.SAMPLE('input=open', 'output=open_sample', 'fraction=1.0')");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  // Caller receives privileges on the produced AOT.
  EXPECT_TRUE(system_.Execute("SELECT * FROM open_sample").ok());
}

TEST_F(GovernanceTest, AnalyticsDeniedWithoutInputSelect) {
  system_.SetUser(governance::AuthorizationManager::kAdmin);
  ASSERT_TRUE(system_.Execute("GRANT EXECUTE ON IDAA.SAMPLE TO mallory")
                  .ok());
  ASSERT_TRUE(
      system_.Execute("CALL SYSPROC.ACCEL_ADD_TABLES('secret')").ok());
  system_.SetUser("mallory");
  // EXECUTE alone is not enough: SELECT on the input table is enforced.
  auto r = system_.Execute(
      "CALL IDAA.SAMPLE('input=secret', 'output=leak', 'fraction=1.0')");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotAuthorized());
  EXPECT_FALSE(system_.catalog().HasTable("leak"));
}

TEST_F(GovernanceTest, AuditTrailRecordsDecisions) {
  size_t before = system_.audit().Size();
  system_.SetUser("alice");
  (void)system_.Execute("SELECT * FROM open");
  (void)system_.Execute("SELECT * FROM secret");  // denied
  auto entries = system_.audit().EntriesForUser("alice");
  ASSERT_GE(entries.size(), 2u);
  bool saw_allowed = false, saw_denied = false;
  for (const auto& e : entries) {
    if (e.allowed && e.object == "OPEN") saw_allowed = true;
    if (!e.allowed && e.object == "SECRET") saw_denied = true;
  }
  EXPECT_TRUE(saw_allowed);
  EXPECT_TRUE(saw_denied);
  EXPECT_GT(system_.audit().Size(), before);
}

TEST_F(GovernanceTest, OnlyAdminManagesAccelerator) {
  system_.SetUser("alice");
  EXPECT_FALSE(
      system_.Execute("CALL SYSPROC.ACCEL_ADD_TABLES('open')").ok());
  EXPECT_FALSE(
      system_.Execute("CALL SYSPROC.ACCEL_REMOVE_TABLES('open')").ok());
}

TEST_F(GovernanceTest, GovernanceChecksAreMetered) {
  MetricsDelta delta(system_.metrics());
  (void)system_.Execute("SELECT * FROM open");
  EXPECT_GT(delta.Delta(metric::kGovernanceChecks), 0u);
}

}  // namespace
}  // namespace idaa
