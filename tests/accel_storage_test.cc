// Accelerator storage tests: Column (dictionary encoding), ZoneMap
// (pruning correctness), ColumnTable (MVCC, distribution, groom).

#include <gtest/gtest.h>

#include "accel/column.h"
#include "accel/column_table.h"
#include "accel/zone_map.h"
#include "sql/parser.h"

namespace idaa::accel {
namespace {

// ---------------------------------------------------------------------------
// Column
// ---------------------------------------------------------------------------

TEST(ColumnTest, IntegerRoundTrip) {
  Column col(DataType::kInteger);
  ASSERT_TRUE(col.Append(Value::Integer(5)).ok());
  ASSERT_TRUE(col.Append(Value::Null()).ok());
  ASSERT_TRUE(col.Append(Value::Integer(-3)).ok());
  EXPECT_EQ(col.size(), 3u);
  EXPECT_EQ(col.Get(0).AsInteger(), 5);
  EXPECT_TRUE(col.Get(1).is_null());
  EXPECT_EQ(col.Get(2).AsInteger(), -3);
}

TEST(ColumnTest, TypeMismatchRejected) {
  Column col(DataType::kInteger);
  EXPECT_FALSE(col.Append(Value::Varchar("x")).ok());
}

TEST(ColumnTest, DictionaryEncoding) {
  Column col(DataType::kVarchar);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(col.Append(Value::Varchar(i % 2 ? "yes" : "no")).ok());
  }
  EXPECT_EQ(col.DictSize(), 2u);  // only two distinct strings stored
  EXPECT_EQ(col.Get(0).AsVarchar(), "no");
  EXPECT_EQ(col.Get(1).AsVarchar(), "yes");
  EXPECT_EQ(col.LookupCode("yes"), 1);
  EXPECT_EQ(col.LookupCode("maybe"), -1);
}

TEST(ColumnTest, DictionaryCompressionSavesSpace) {
  Column dict_col(DataType::kVarchar);
  std::string long_value(100, 'x');
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(dict_col.Append(Value::Varchar(long_value)).ok());
  }
  // 1000 * 100 bytes raw; dictionary stores the string once + 4B codes.
  EXPECT_LT(dict_col.ByteSize(), 10000u);
}

TEST(ColumnTest, AllTypesRoundTrip) {
  struct CaseDef {
    DataType type;
    Value value;
  } cases[] = {
      {DataType::kBoolean, Value::Boolean(true)},
      {DataType::kInteger, Value::Integer(42)},
      {DataType::kDouble, Value::Double(2.5)},
      {DataType::kVarchar, Value::Varchar("abc")},
      {DataType::kDate, Value::Date(17)},
      {DataType::kTimestamp, Value::Timestamp(99)},
  };
  for (const auto& c : cases) {
    Column col(c.type);
    ASSERT_TRUE(col.Append(c.value).ok());
    EXPECT_EQ(col.Get(0), c.value) << DataTypeToString(c.type);
  }
}

// ---------------------------------------------------------------------------
// ZoneMap
// ---------------------------------------------------------------------------

sql::BoundExprPtr BindOverSchema(const std::string& expr_text,
                                 const Schema& schema) {
  auto parsed = sql::ParseExpression(expr_text);
  EXPECT_TRUE(parsed.ok()) << expr_text;
  Catalog catalog;
  sql::Binder binder(catalog);
  auto bound = binder.BindScalar(**parsed, schema, "t");
  EXPECT_TRUE(bound.ok()) << bound.status().ToString();
  return std::move(*bound);
}

const Schema kXySchema{{{"X", DataType::kInteger, true},
                        {"Y", DataType::kVarchar, true}}};

TEST(ZoneMapTest, ExtractSimpleRanges) {
  auto pred = BindOverSchema("x > 5 AND x <= 20 AND y = 'a'", kXySchema);
  bool consumed = false;
  auto ranges = ExtractColumnRanges(*pred, &consumed);
  EXPECT_TRUE(consumed);
  ASSERT_EQ(ranges.size(), 3u);
  EXPECT_EQ(ranges[0].column, 0u);
  EXPECT_EQ(ranges[2].column, 1u);
}

TEST(ZoneMapTest, MirroredLiteralComparison) {
  auto pred = BindOverSchema("5 < x", kXySchema);
  auto ranges = ExtractColumnRanges(*pred);
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0].op, sql::BinaryOp::kGt);  // x > 5
}

TEST(ZoneMapTest, BetweenExtracted) {
  auto pred = BindOverSchema("x BETWEEN 3 AND 9", kXySchema);
  bool consumed = false;
  auto ranges = ExtractColumnRanges(*pred, &consumed);
  EXPECT_TRUE(consumed);
  EXPECT_EQ(ranges.size(), 2u);
}

TEST(ZoneMapTest, OrNotExtracted) {
  auto pred = BindOverSchema("x = 1 OR x = 2", kXySchema);
  bool consumed = false;
  auto ranges = ExtractColumnRanges(*pred, &consumed);
  EXPECT_FALSE(consumed);
  EXPECT_TRUE(ranges.empty());
}

TEST(ZoneMapTest, MixedPredicatePartiallyConsumed) {
  auto pred = BindOverSchema("x > 5 AND (x = 1 OR x = 9)", kXySchema);
  bool consumed = false;
  auto ranges = ExtractColumnRanges(*pred, &consumed);
  EXPECT_FALSE(consumed);
  ASSERT_EQ(ranges.size(), 1u);
}

TEST(ZoneMapTest, PruningByMinMax) {
  ZoneMap zm(1, /*zone_size=*/4);
  // Zone 0: values 0..3, zone 1: values 10..13.
  for (int i = 0; i < 4; ++i) zm.Observe(i, 0, Value::Integer(i));
  for (int i = 4; i < 8; ++i) zm.Observe(i, 0, Value::Integer(i + 6));

  std::vector<ColumnRange> eq5 = {{0, sql::BinaryOp::kEq, Value::Integer(5)}};
  EXPECT_FALSE(zm.ZoneCanMatch(0, eq5));
  EXPECT_FALSE(zm.ZoneCanMatch(1, eq5));

  std::vector<ColumnRange> eq2 = {{0, sql::BinaryOp::kEq, Value::Integer(2)}};
  EXPECT_TRUE(zm.ZoneCanMatch(0, eq2));
  EXPECT_FALSE(zm.ZoneCanMatch(1, eq2));

  std::vector<ColumnRange> gt11 = {{0, sql::BinaryOp::kGt, Value::Integer(11)}};
  EXPECT_FALSE(zm.ZoneCanMatch(0, gt11));
  EXPECT_TRUE(zm.ZoneCanMatch(1, gt11));

  std::vector<ColumnRange> lt0 = {{0, sql::BinaryOp::kLt, Value::Integer(0)}};
  EXPECT_FALSE(zm.ZoneCanMatch(0, lt0));

  std::vector<ColumnRange> gteq13 = {
      {0, sql::BinaryOp::kGtEq, Value::Integer(13)}};
  EXPECT_TRUE(zm.ZoneCanMatch(1, gteq13));
}

TEST(ZoneMapTest, AllNullZoneNeverMatchesComparison) {
  ZoneMap zm(1, 4);
  for (int i = 0; i < 4; ++i) zm.Observe(i, 0, Value::Null());
  std::vector<ColumnRange> any = {{0, sql::BinaryOp::kGt, Value::Integer(-100)}};
  EXPECT_FALSE(zm.ZoneCanMatch(0, any));
}

// ---------------------------------------------------------------------------
// ColumnTable (MVCC)
// ---------------------------------------------------------------------------

class ColumnTableTest : public ::testing::Test {
 protected:
  ColumnTableTest()
      : schema_({{"ID", DataType::kInteger, false},
                 {"V", DataType::kVarchar, true}}) {
    AcceleratorOptions opts;
    opts.num_slices = 2;
    opts.zone_size = 4;
    table_ = std::make_unique<ColumnTable>(schema_, std::nullopt, opts);
  }

  Row MakeRow(int64_t id, const std::string& v) {
    return {Value::Integer(id), Value::Varchar(v)};
  }

  Result<std::vector<Row>> ScanAll(Transaction* txn) {
    std::vector<Row> all;
    for (size_t s = 0; s < table_->num_slices(); ++s) {
      auto rows = table_->ScanSlice(s, nullptr, txn->id(), txn->snapshot_csn(),
                                    tm_, nullptr);
      if (!rows.ok()) return rows.status();
      for (auto& r : *rows) all.push_back(std::move(r));
    }
    return all;
  }

  Schema schema_;
  TransactionManager tm_;
  std::unique_ptr<ColumnTable> table_;
};

TEST_F(ColumnTableTest, InsertVisibleAfterCommit) {
  Transaction* w = tm_.Begin();
  ASSERT_TRUE(table_->Insert({MakeRow(1, "a"), MakeRow(2, "b")}, w->id()).ok());
  Transaction* other = tm_.Begin();
  EXPECT_EQ(*ScanAll(other), std::vector<Row>{});  // uncommitted: invisible
  EXPECT_EQ(ScanAll(w)->size(), 2u);               // own writes: visible
  ASSERT_TRUE(tm_.Commit(w).ok());
  Transaction* later = tm_.Begin();
  EXPECT_EQ(ScanAll(later)->size(), 2u);
  // `other` keeps its old snapshot.
  EXPECT_EQ(ScanAll(other)->size(), 0u);
}

TEST_F(ColumnTableTest, DeleteWhereWithPredicate) {
  Transaction* w = tm_.Begin();
  ASSERT_TRUE(
      table_->Insert({MakeRow(1, "a"), MakeRow(2, "b"), MakeRow(3, "c")},
                     w->id())
          .ok());
  ASSERT_TRUE(tm_.Commit(w).ok());

  Transaction* d = tm_.Begin();
  auto pred = BindOverSchema("id >= 2", schema_);
  auto deleted = table_->DeleteWhere(pred.get(), d->id(), d->snapshot_csn(),
                                     tm_);
  ASSERT_TRUE(deleted.ok()) << deleted.status().ToString();
  EXPECT_EQ(*deleted, 2u);
  EXPECT_EQ(ScanAll(d)->size(), 1u);  // own delete visible
  Transaction* reader = tm_.Begin();
  EXPECT_EQ(ScanAll(reader)->size(), 3u);  // delete uncommitted
  ASSERT_TRUE(tm_.Commit(d).ok());
  Transaction* reader2 = tm_.Begin();
  EXPECT_EQ(ScanAll(reader2)->size(), 1u);
}

TEST_F(ColumnTableTest, AbortedInsertDisappears) {
  Transaction* w = tm_.Begin();
  ASSERT_TRUE(table_->Insert({MakeRow(1, "a")}, w->id()).ok());
  ASSERT_TRUE(tm_.Abort(w).ok());
  Transaction* reader = tm_.Begin();
  EXPECT_EQ(ScanAll(reader)->size(), 0u);
}

TEST_F(ColumnTableTest, AbortedDeleteRestores) {
  Transaction* w = tm_.Begin();
  ASSERT_TRUE(table_->Insert({MakeRow(1, "a")}, w->id()).ok());
  ASSERT_TRUE(tm_.Commit(w).ok());
  Transaction* d = tm_.Begin();
  ASSERT_TRUE(table_->DeleteWhere(nullptr, d->id(), d->snapshot_csn(), tm_).ok());
  ASSERT_TRUE(tm_.Abort(d).ok());
  Transaction* reader = tm_.Begin();
  EXPECT_EQ(ScanAll(reader)->size(), 1u);
}

TEST_F(ColumnTableTest, ConcurrentDeleteConflicts) {
  Transaction* w = tm_.Begin();
  ASSERT_TRUE(table_->Insert({MakeRow(1, "a")}, w->id()).ok());
  ASSERT_TRUE(tm_.Commit(w).ok());
  Transaction* d1 = tm_.Begin();
  Transaction* d2 = tm_.Begin();
  ASSERT_TRUE(
      table_->DeleteWhere(nullptr, d1->id(), d1->snapshot_csn(), tm_).ok());
  auto second = table_->DeleteWhere(nullptr, d2->id(), d2->snapshot_csn(), tm_);
  ASSERT_FALSE(second.ok());
  EXPECT_TRUE(second.status().IsConflict());
}

TEST_F(ColumnTableTest, FirstCommitterWinsAfterSnapshot) {
  Transaction* w = tm_.Begin();
  ASSERT_TRUE(table_->Insert({MakeRow(1, "a")}, w->id()).ok());
  ASSERT_TRUE(tm_.Commit(w).ok());
  Transaction* d2 = tm_.Begin();  // snapshot taken now
  Transaction* d1 = tm_.Begin();
  ASSERT_TRUE(
      table_->DeleteWhere(nullptr, d1->id(), d1->snapshot_csn(), tm_).ok());
  ASSERT_TRUE(tm_.Commit(d1).ok());
  // d2 still sees the row but must not be able to delete it.
  auto second = table_->DeleteWhere(nullptr, d2->id(), d2->snapshot_csn(), tm_);
  ASSERT_FALSE(second.ok());
  EXPECT_TRUE(second.status().IsConflict());
}

TEST_F(ColumnTableTest, UpdateProducesNewVersion) {
  Transaction* w = tm_.Begin();
  ASSERT_TRUE(table_->Insert({MakeRow(1, "a")}, w->id()).ok());
  ASSERT_TRUE(tm_.Commit(w).ok());
  Transaction* u = tm_.Begin();
  auto set_expr = BindOverSchema("'updated'", schema_);
  std::vector<std::pair<size_t, const sql::BoundExpr*>> assignments = {
      {1, set_expr.get()}};
  auto updated =
      table_->UpdateWhere(assignments, nullptr, u->id(), u->snapshot_csn(), tm_);
  ASSERT_TRUE(updated.ok()) << updated.status().ToString();
  EXPECT_EQ(*updated, 1u);
  ASSERT_TRUE(tm_.Commit(u).ok());
  Transaction* reader = tm_.Begin();
  auto rows = ScanAll(reader);
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][1].AsVarchar(), "updated");
  EXPECT_EQ(table_->NumVersions(), 2u);  // old + new version stored
}

TEST_F(ColumnTableTest, DeleteOneMatchingMultisetSemantics) {
  Transaction* w = tm_.Begin();
  ASSERT_TRUE(
      table_->Insert({MakeRow(1, "dup"), MakeRow(1, "dup")}, w->id()).ok());
  ASSERT_TRUE(tm_.Commit(w).ok());
  Transaction* d = tm_.Begin();
  auto found =
      table_->DeleteOneMatching(MakeRow(1, "dup"), d->id(), d->snapshot_csn(),
                                tm_);
  ASSERT_TRUE(found.ok());
  EXPECT_TRUE(*found);
  EXPECT_EQ(ScanAll(d)->size(), 1u);  // exactly one of the duplicates deleted
  auto missing = table_->DeleteOneMatching(MakeRow(9, "zz"), d->id(),
                                           d->snapshot_csn(), tm_);
  ASSERT_TRUE(missing.ok());
  EXPECT_FALSE(*missing);
}

TEST_F(ColumnTableTest, HashDistributionGroupsKeys) {
  AcceleratorOptions opts;
  opts.num_slices = 4;
  ColumnTable table(schema_, /*distribution_column=*/0, opts);
  Transaction* w = tm_.Begin();
  std::vector<Row> rows;
  for (int i = 0; i < 100; ++i) rows.push_back(MakeRow(i % 10, "x"));
  ASSERT_TRUE(table.Insert(rows, w->id()).ok());
  ASSERT_TRUE(tm_.Commit(w).ok());
  // All rows with the same key land in the same slice: scanning one slice
  // yields either all 10 or none of each key.
  Transaction* r = tm_.Begin();
  for (size_t s = 0; s < table.num_slices(); ++s) {
    auto slice_rows = table.ScanSlice(s, nullptr, r->id(), r->snapshot_csn(),
                                      tm_, nullptr);
    ASSERT_TRUE(slice_rows.ok());
    std::map<int64_t, int> counts;
    for (const Row& row : *slice_rows) ++counts[row[0].AsInteger()];
    for (const auto& [key, count] : counts) EXPECT_EQ(count, 10) << key;
  }
}

TEST_F(ColumnTableTest, GroomReclaimsDeadVersions) {
  Transaction* w = tm_.Begin();
  std::vector<Row> rows;
  for (int i = 0; i < 20; ++i) rows.push_back(MakeRow(i, "x"));
  ASSERT_TRUE(table_->Insert(rows, w->id()).ok());
  ASSERT_TRUE(tm_.Commit(w).ok());

  Transaction* d = tm_.Begin();
  auto pred = BindOverSchema("id < 10", schema_);
  ASSERT_TRUE(
      table_->DeleteWhere(pred.get(), d->id(), d->snapshot_csn(), tm_).ok());
  ASSERT_TRUE(tm_.Commit(d).ok());

  EXPECT_EQ(table_->NumVersions(), 20u);
  GroomStats stats = table_->Groom(tm_.LastCommittedCsn(), tm_);
  EXPECT_EQ(stats.rows_reclaimed, 10u);
  EXPECT_EQ(table_->NumVersions(), 10u);
  Transaction* reader = tm_.Begin();
  EXPECT_EQ(ScanAll(reader)->size(), 10u);
}

TEST_F(ColumnTableTest, GroomRespectsActiveSnapshots) {
  Transaction* w = tm_.Begin();
  ASSERT_TRUE(table_->Insert({MakeRow(1, "a")}, w->id()).ok());
  ASSERT_TRUE(tm_.Commit(w).ok());
  Transaction* old_reader = tm_.Begin();  // can still see the row
  Transaction* d = tm_.Begin();
  ASSERT_TRUE(table_->DeleteWhere(nullptr, d->id(), d->snapshot_csn(), tm_).ok());
  ASSERT_TRUE(tm_.Commit(d).ok());
  // Horizon = old reader's snapshot: must NOT reclaim.
  GroomStats stats = table_->Groom(tm_.OldestActiveSnapshot(), tm_);
  EXPECT_EQ(stats.rows_reclaimed, 0u);
  EXPECT_EQ(ScanAll(old_reader)->size(), 1u);
  ASSERT_TRUE(tm_.Commit(old_reader).ok());
  stats = table_->Groom(tm_.OldestActiveSnapshot(), tm_);
  EXPECT_EQ(stats.rows_reclaimed, 1u);
}

TEST_F(ColumnTableTest, GroomDropsAbortedInserts) {
  Transaction* w = tm_.Begin();
  ASSERT_TRUE(table_->Insert({MakeRow(1, "a")}, w->id()).ok());
  ASSERT_TRUE(tm_.Abort(w).ok());
  GroomStats stats = table_->Groom(tm_.LastCommittedCsn(), tm_);
  EXPECT_EQ(stats.rows_reclaimed, 1u);
  EXPECT_EQ(table_->NumVersions(), 0u);
}

TEST_F(ColumnTableTest, ScanWithZoneMapPruning) {
  AcceleratorOptions opts;
  opts.num_slices = 1;
  opts.zone_size = 8;
  MetricsRegistry metrics;
  ColumnTable table(schema_, std::nullopt, opts);
  Transaction* w = tm_.Begin();
  std::vector<Row> rows;
  for (int i = 0; i < 64; ++i) rows.push_back(MakeRow(i, "x"));
  ASSERT_TRUE(table.Insert(rows, w->id()).ok());
  ASSERT_TRUE(tm_.Commit(w).ok());

  Transaction* r = tm_.Begin();
  auto pred = BindOverSchema("id BETWEEN 50 AND 55", schema_);
  auto result =
      table.ScanSlice(0, pred.get(), r->id(), r->snapshot_csn(), tm_, &metrics);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 6u);
  // 8 zones of 8 rows; only the zone covering 48..55 survives pruning.
  EXPECT_EQ(metrics.Get(metric::kAccelRowsSkippedZoneMap), 56u);
  EXPECT_EQ(metrics.Get(metric::kAccelRowsScanned), 8u);
}

}  // namespace
}  // namespace idaa::accel
