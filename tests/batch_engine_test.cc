// Tests for the vectorized batch execution engine: EXPLAIN ANALYZE must
// report batch_path=true (with morsel/batch/selectivity accounting) for the
// simple-predicate scan and aggregate shapes the batch compiler accepts, and
// batch_path=false for the row-at-a-time fallback shapes; the batch path
// must return exactly the row path's results across morsel/zone boundary
// configurations, dictionary-encoded VARCHAR predicates, early-LIMIT stops
// and uncommitted own writes.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "idaa/system.h"

namespace idaa {
namespace {

/// The differentials below re-run the same SELECT with only the batch path
/// toggled; the result cache would serve the re-run from the first
/// execution and make the comparison vacuous, so it stays off here.
federation::ExecOptions NoResultCache() {
  federation::ExecOptions opts;
  opts.use_result_cache = false;
  return opts;
}

std::vector<std::string> CanonicalRows(const ResultSet& rs, bool keep_order) {
  std::vector<std::string> lines;
  for (const Row& row : rs.rows()) {
    std::string line;
    for (const Value& v : row) {
      line += v.is_double() ? StrFormat("%.9g", v.AsDouble()) : v.ToString();
      line += "|";
    }
    lines.push_back(std::move(line));
  }
  if (!keep_order) std::sort(lines.begin(), lines.end());
  return lines;
}

struct StageRow {
  std::string stage;
  std::string detail;
};

std::vector<StageRow> StageRows(const ResultSet& rs) {
  std::vector<StageRow> out;
  for (size_t r = 0; r < rs.NumRows(); ++r) {
    StageRow row;
    std::string raw = rs.At(r, 0).AsVarchar();
    row.stage = raw.substr(raw.find_first_not_of(' '));
    row.detail = rs.At(r, 2).is_null() ? "" : rs.At(r, 2).AsVarchar();
    out.push_back(std::move(row));
  }
  return out;
}

/// True iff some stage matching `stage` carries `key=value` in its detail.
bool HasAttr(const std::vector<StageRow>& rows, const std::string& stage,
             const std::string& attr) {
  for (const auto& row : rows) {
    if (row.stage.find(stage) == std::string::npos) continue;
    if (row.detail.find(attr) != std::string::npos) return true;
  }
  return false;
}

uint64_t SumAttr(const std::vector<StageRow>& rows, const std::string& stage,
                 const std::string& key) {
  uint64_t total = 0;
  for (const auto& row : rows) {
    if (row.stage.find(stage) == std::string::npos) continue;
    size_t pos = row.detail.find(key + "=");
    if (pos == std::string::npos) continue;
    total += std::stoull(row.detail.substr(pos + key.size() + 1));
  }
  return total;
}

/// Seeds an orders table with deterministic values. `aot` makes it
/// accelerator-only; otherwise it lives in DB2 and is replicated to the
/// accelerator (so both engines can answer the same query). Small
/// zone/morsel sizes in `options` force multi-zone, multi-morsel scans.
void SeedOrders(IdaaSystem& system, int rows, bool aot = true) {
  ASSERT_TRUE(system
                  .Execute(std::string("CREATE TABLE orders (id INT "
                                          "NOT NULL, cust INT, amount DOUBLE, "
                                          "region VARCHAR)") +
                              (aot ? " IN ACCELERATOR" : ""))
                  .ok());
  static const char* kRegions[] = {"NORTH", "SOUTH", "EAST", "WEST"};
  for (int base = 0; base < rows; base += 50) {
    std::string insert = "INSERT INTO orders VALUES ";
    int end = std::min(base + 50, rows);
    for (int i = base; i < end; ++i) {
      if (i != base) insert += ", ";
      std::string amount =
          i % 11 == 0 ? "NULL" : StrFormat("%d.25", (i * 37) % 1000);
      insert += StrFormat("(%d, %d, %s, '%s')", i, i % 23, amount.c_str(),
                          kRegions[i % 4]);
    }
    ASSERT_TRUE(system.Execute(insert).ok());
  }
  if (!aot) {
    ASSERT_TRUE(
        system.Execute("CALL SYSPROC.ACCEL_ADD_TABLES('orders')").ok());
    auto flushed = system.replication().Flush();
    ASSERT_TRUE(flushed.ok());
  }
}

SystemOptions SmallBatchOptions() {
  SystemOptions options;
  options.accelerator.num_slices = 3;
  options.accelerator.zone_size = 16;
  options.accelerator.morsel_size = 32;  // several morsels per slice
  return options;
}

// ---------------------------------------------------------------------------
// EXPLAIN ANALYZE batch_path reporting (acceptance criterion)
// ---------------------------------------------------------------------------

TEST(BatchEngineTest, ExplainAnalyzeReportsBatchPathForScan) {
  IdaaSystem system(SmallBatchOptions());
  SeedOrders(system, 200);
  auto rs = system.Query(
      "EXPLAIN ANALYZE SELECT id, amount FROM orders WHERE id < 120");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  auto rows = StageRows(*rs);
  EXPECT_TRUE(HasAttr(rows, "accel.batch_scan", "batch_path=true"));
  EXPECT_GE(SumAttr(rows, "accel.batch_scan", "morsels"), 2u);
  EXPECT_GE(SumAttr(rows, "accel.batch_scan", "batches"), 2u);
  EXPECT_TRUE(HasAttr(rows, "accel.batch_scan", "selectivity="));
  // The per-morsel slice_scan spans keep their zone-map accounting.
  EXPECT_GT(SumAttr(rows, "accel.slice_scan", "zone_map_skipped"), 0u);
  EXPECT_GT(SumAttr(rows, "accel.slice_scan", "rows_scanned"), 0u);
}

TEST(BatchEngineTest, ExplainAnalyzeReportsBatchPathForAggregate) {
  IdaaSystem system(SmallBatchOptions());
  SeedOrders(system, 200);
  auto rs = system.Query(
      "EXPLAIN ANALYZE SELECT region, COUNT(*), SUM(amount) FROM orders "
      "WHERE id < 150 GROUP BY region");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  auto rows = StageRows(*rs);
  EXPECT_TRUE(HasAttr(rows, "accel.slice_aggregation", "batch_path=true"));
  EXPECT_GE(SumAttr(rows, "accel.slice_aggregation", "morsels"), 2u);
  EXPECT_TRUE(HasAttr(rows, "accel.slice_aggregation", "selectivity="));
}

TEST(BatchEngineTest, ExplainAnalyzeReportsFallbackForComplexPredicate) {
  IdaaSystem system(SmallBatchOptions());
  SeedOrders(system, 100);
  // LIKE is not a column/op/literal conjunct, so the batch compiler rejects
  // it and the row-at-a-time path runs.
  auto rs = system.Query(
      "EXPLAIN ANALYZE SELECT id FROM orders WHERE region LIKE 'N%'");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  auto rows = StageRows(*rs);
  EXPECT_FALSE(HasAttr(rows, "accel.batch_scan", "batch_path=true"));
  EXPECT_TRUE(HasAttr(rows, "accel.slice_scan", "batch_path=false"));
}

TEST(BatchEngineTest, ExplainAnalyzeReportsFallbackWhenDisabled) {
  IdaaSystem system(SmallBatchOptions());
  SeedOrders(system, 100);
  system.accelerator().SetBatchPathEnabled(false);
  auto rs = system.Query(
      "EXPLAIN ANALYZE SELECT region, SUM(amount) FROM orders "
      "GROUP BY region");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  auto rows = StageRows(*rs);
  EXPECT_TRUE(HasAttr(rows, "accel.slice_aggregation", "batch_path=false"));
  system.accelerator().SetBatchPathEnabled(true);
}

// ---------------------------------------------------------------------------
// Batch path vs row path differential
// ---------------------------------------------------------------------------

class BatchDifferentialTest : public ::testing::Test {
 protected:
  void SeedSmall() {
    system_ = std::make_unique<IdaaSystem>(SmallBatchOptions());
    SeedOrders(*system_, 200, /*aot=*/false);
  }

  /// Accelerator-only variant: writes hit the column store directly, so
  /// own-transaction visibility can be probed without replication.
  void SeedSmallAot() {
    system_ = std::make_unique<IdaaSystem>(SmallBatchOptions());
    SeedOrders(*system_, 200, /*aot=*/true);
  }

  /// Runs `sql` with the batch path on and off; both accelerator runs and
  /// the DB2 reference must agree.
  void ExpectSame(const std::string& sql) {
    bool ordered = ToUpper(sql).find("ORDER BY") != std::string::npos;
    system_->SetAccelerationMode(federation::AccelerationMode::kNone);
    auto db2 = system_->Execute(sql, NoResultCache());
    ASSERT_TRUE(db2.ok()) << sql << "\n" << db2.status().ToString();

    system_->SetAccelerationMode(federation::AccelerationMode::kEligible);
    system_->accelerator().SetBatchPathEnabled(true);
    auto batch = system_->Execute(sql, NoResultCache());
    ASSERT_TRUE(batch.ok()) << sql << "\n" << batch.status().ToString();
    EXPECT_EQ(batch->routed_to, federation::Target::kAccelerator) << sql;

    system_->accelerator().SetBatchPathEnabled(false);
    auto row = system_->Execute(sql, NoResultCache());
    system_->accelerator().SetBatchPathEnabled(true);
    ASSERT_TRUE(row.ok()) << sql << "\n" << row.status().ToString();

    EXPECT_EQ(CanonicalRows(db2->rows, ordered),
              CanonicalRows(batch->rows, ordered))
        << sql;
    EXPECT_EQ(CanonicalRows(row->rows, ordered),
              CanonicalRows(batch->rows, ordered))
        << sql;
  }

  std::unique_ptr<IdaaSystem> system_;
};

TEST_F(BatchDifferentialTest, PredicatesAcrossMorselAndZoneBoundaries) {
  SeedSmall();
  for (const char* sql : {
           "SELECT * FROM orders",
           "SELECT id, amount FROM orders WHERE id < 7",
           "SELECT id FROM orders WHERE id >= 48 AND id <= 112",
           "SELECT id, amount FROM orders WHERE amount > 500.0",
           "SELECT id FROM orders WHERE amount <= 250.5 AND cust > 3",
           "SELECT id FROM orders WHERE cust = 7",
           "SELECT id FROM orders WHERE id <> 50",
       }) {
    ExpectSame(sql);
  }
}

TEST_F(BatchDifferentialTest, VarcharPredicatesUseDictionaryCodes) {
  SeedSmall();
  for (const char* sql : {
           // Equality compiles to a dictionary-code compare.
           "SELECT id FROM orders WHERE region = 'NORTH'",
           // Ordering compiles to a per-code pass table.
           "SELECT id FROM orders WHERE region < 'SOUTH'",
           "SELECT id FROM orders WHERE region >= 'SOUTH'",
           "SELECT id, region FROM orders WHERE region <> 'EAST'",
           // Literal absent from every slice dictionary: never matches.
           "SELECT id FROM orders WHERE region = 'NOWHERE'",
           "SELECT id FROM orders WHERE region = 'NORTH' AND id > 100",
       }) {
    ExpectSame(sql);
  }
}

TEST_F(BatchDifferentialTest, NullSemanticsMatchRowPath) {
  SeedSmall();
  for (const char* sql : {
           // NULL amounts never satisfy a comparison on either path.
           "SELECT id FROM orders WHERE amount > 0.0",
           "SELECT COUNT(amount), COUNT(*) FROM orders",
           "SELECT SUM(amount), AVG(amount), MIN(amount), MAX(amount) "
           "FROM orders",
           "SELECT cust, COUNT(amount) FROM orders GROUP BY cust",
           "SELECT amount, COUNT(*) FROM orders GROUP BY amount",
       }) {
    ExpectSame(sql);
  }
}

TEST_F(BatchDifferentialTest, AggregationShapes) {
  SeedSmall();
  for (const char* sql : {
           "SELECT COUNT(*) FROM orders",
           "SELECT SUM(id) FROM orders WHERE id >= 100",
           "SELECT region, COUNT(*), SUM(amount) FROM orders GROUP BY region",
           "SELECT region, cust, AVG(amount) FROM orders "
           "GROUP BY region, cust",
           "SELECT MIN(region), MAX(region) FROM orders",
           "SELECT COUNT(DISTINCT region) FROM orders",
           "SELECT STDDEV(amount), VARIANCE(amount) FROM orders",
           "SELECT cust, SUM(amount) FROM orders GROUP BY cust "
           "HAVING SUM(amount) > 1000",
       }) {
    ExpectSame(sql);
  }
}

TEST_F(BatchDifferentialTest, LimitEarlyStopIsDeterministic) {
  SeedSmall();
  // Late materialization + early stop: the batch path must return the same
  // first-N rows (in slice-concatenation order) as the fallback, every time.
  for (int rep = 0; rep < 5; ++rep) {
    for (const char* sql : {
             "SELECT id FROM orders LIMIT 10",
             "SELECT id FROM orders WHERE id >= 20 LIMIT 7",
             "SELECT id, amount FROM orders WHERE region = 'WEST' LIMIT 3",
             "SELECT id FROM orders LIMIT 0",
             "SELECT id FROM orders WHERE id < 5 LIMIT 100",
         }) {
      system_->SetAccelerationMode(federation::AccelerationMode::kEligible);
      system_->accelerator().SetBatchPathEnabled(true);
      auto batch = system_->Execute(sql, NoResultCache());
      ASSERT_TRUE(batch.ok()) << sql;
      system_->accelerator().SetBatchPathEnabled(false);
      auto row = system_->Execute(sql, NoResultCache());
      system_->accelerator().SetBatchPathEnabled(true);
      ASSERT_TRUE(row.ok()) << sql;
      // keep_order: LIMIT without ORDER BY is only deterministic because
      // both paths emit rows in slice order — that is the property under
      // test.
      EXPECT_EQ(CanonicalRows(row->rows, /*keep_order=*/true),
                CanonicalRows(batch->rows, /*keep_order=*/true))
          << sql << " rep " << rep;
    }
  }
}

TEST_F(BatchDifferentialTest, UncommittedOwnWritesVisibleOnBatchPath) {
  SeedSmallAot();
  system_->SetAccelerationMode(federation::AccelerationMode::kAll);
  ASSERT_TRUE(system_->Begin().ok());
  ASSERT_TRUE(
      system_->Execute("INSERT INTO orders VALUES (9001, 1, 42.5, 'MOON')")
          .ok());
  ASSERT_TRUE(
      system_->Execute("DELETE FROM orders WHERE id = 3").ok());

  auto own = system_->Query("SELECT id FROM orders WHERE id = 9001");
  ASSERT_TRUE(own.ok());
  EXPECT_EQ(own->NumRows(), 1u);  // own insert visible pre-commit
  auto gone = system_->Query("SELECT id FROM orders WHERE id = 3");
  ASSERT_TRUE(gone.ok());
  EXPECT_EQ(gone->NumRows(), 0u);  // own delete visible pre-commit
  auto count = system_->Query("SELECT COUNT(*) FROM orders");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->At(0, 0).AsInteger(), 200);  // -1 +1

  ASSERT_TRUE(system_->Rollback().ok());
  auto after = system_->Query("SELECT COUNT(*) FROM orders");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->At(0, 0).AsInteger(), 200);
  auto back = system_->Query("SELECT id FROM orders WHERE id = 3");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->NumRows(), 1u);
}

TEST_F(BatchDifferentialTest, SurvivesGroomAndUpdates) {
  SeedSmall();
  ASSERT_TRUE(
      system_->Execute("UPDATE orders SET amount = amount + 1 "
                          "WHERE cust < 5")
          .ok());
  ASSERT_TRUE(
      system_->Execute("DELETE FROM orders WHERE id % 9 = 2").ok());
  ASSERT_TRUE(system_->replication().Flush().ok());
  ExpectSame("SELECT id, cust, amount, region FROM orders WHERE id < 150");
  ASSERT_TRUE(system_->Execute("CALL SYSPROC.ACCEL_GROOM()").ok());
  ExpectSame("SELECT id, cust, amount, region FROM orders WHERE id < 150");
  ExpectSame("SELECT region, COUNT(*), SUM(amount) FROM orders "
             "GROUP BY region");
}

TEST_F(BatchDifferentialTest, SingleRowAndEmptyTables) {
  system_ = std::make_unique<IdaaSystem>(SmallBatchOptions());
  ASSERT_TRUE(system_
                  ->Execute("CREATE TABLE orders (id INT NOT NULL, "
                               "cust INT, amount DOUBLE, region VARCHAR)")
                  .ok());
  ASSERT_TRUE(
      system_->Execute("CALL SYSPROC.ACCEL_ADD_TABLES('orders')").ok());
  ExpectSame("SELECT * FROM orders");
  ExpectSame("SELECT COUNT(*), SUM(amount) FROM orders");
  ASSERT_TRUE(
      system_->Execute("INSERT INTO orders VALUES (1, 2, 3.5, 'X')").ok());
  ASSERT_TRUE(system_->replication().Flush().ok());
  ExpectSame("SELECT * FROM orders WHERE id = 1");
  ExpectSame("SELECT region, COUNT(*) FROM orders GROUP BY region");
}

// Mixed-type literal comparisons: the compiled predicate must mirror
// Value::Compare's cross-type rules (int column vs double literal) and its
// incomparable-pair rejections (int column vs varchar literal drops rows on
// the row path — batch must agree).
TEST_F(BatchDifferentialTest, CrossTypeLiteralComparisons) {
  SeedSmall();
  for (const char* sql : {
           "SELECT id FROM orders WHERE id < 99.5",
           "SELECT id FROM orders WHERE amount = 62.25",
           "SELECT id FROM orders WHERE cust >= 11.0",
       }) {
    ExpectSame(sql);
  }
}

// Join shapes through the batch-native hash join: every query runs on DB2,
// the batch join, and the row-path JoinIterator fallback, and all three
// must return identical rows. The dimension table is replicated so DB2 can
// answer too; duplicate keys, an unmatched key, and NULL keys are all
// present in the seed data.
TEST_F(BatchDifferentialTest, JoinShapesMatchRowPathAndDb2) {
  SeedSmall();
  ASSERT_TRUE(system_
                  ->Execute("CREATE TABLE custdim (cid INT NOT NULL, "
                               "tier VARCHAR, credit DOUBLE)")
                  .ok());
  static const char* kTiers[] = {"GOLD", "SILVER", "BRONZE"};
  for (int c = 0; c < 23; ++c) {
    // Keys 0..20 match orders.cust (which ranges 0..22); 21/22 are left
    // unmatched on the build side, and key 5 appears twice.
    if (c >= 21) continue;
    std::string tier = c % 7 == 0 ? "NULL"
                                  : "'" + std::string(kTiers[c % 3]) + "'";
    ASSERT_TRUE(system_
                    ->Execute(StrFormat(
                        "INSERT INTO custdim VALUES (%d, %s, %d.5)", c,
                        tier.c_str(), c * 10))
                    .ok());
  }
  ASSERT_TRUE(
      system_->Execute("INSERT INTO custdim VALUES (5, 'DUP', 999.5)")
          .ok());
  ASSERT_TRUE(
      system_->Execute("CALL SYSPROC.ACCEL_ADD_TABLES('custdim')").ok());
  ASSERT_TRUE(system_->replication().Flush().ok());

  for (const char* sql : {
           "SELECT COUNT(*) FROM orders o JOIN custdim c ON o.cust = c.cid",
           "SELECT c.tier, COUNT(*), SUM(o.amount) FROM orders o "
           "JOIN custdim c ON o.cust = c.cid GROUP BY c.tier",
           "SELECT o.id, c.tier FROM orders o "
           "JOIN custdim c ON o.cust = c.cid WHERE o.id < 40",
           "SELECT o.id, c.credit FROM orders o "
           "LEFT JOIN custdim c ON o.cust = c.cid WHERE o.id < 60",
           "SELECT COUNT(*) FROM orders o "
           "JOIN custdim c ON o.cust = c.cid AND o.amount > c.credit",
           "SELECT c.tier, SUM(o.amount) AS s FROM orders o "
           "JOIN custdim c ON o.cust = c.cid GROUP BY c.tier "
           "ORDER BY s DESC",
       }) {
    ExpectSame(sql);
  }
}

}  // namespace
}  // namespace idaa
