// Shard equivalence battery: one logical accelerator hash-partitioned
// across N shard instances must be indistinguishable from a single
// appliance. Every query shape runs three ways — DB2 row engine,
// 1-shard accelerator, N-shard accelerator — and all three must agree
// bit-for-bit at N ∈ {1, 2, 4, 8}.
//
// Bit-identity (not epsilon equality) is intentional and achievable: the
// seed data uses only FP-exact doubles (multiples of 0.25 with bounded
// magnitude), and the accelerator's aggregate accumulators merge partial
// sums by plain addition, so SUM/AVG/STDDEV/VARIANCE are exactly
// associative over this data regardless of how rows are split across
// shards or slices. Any divergence is a real partitioning bug (lost row,
// double-counted row, wrong merge), never FP noise.
//
// Coverage demanded by the shard design:
//   - scans and predicate pushdown over a hash-partitioned fact table,
//     including rows with a NULL distribution key,
//   - shard pruning (equality on the distribution column routes to one
//     shard — results must still match the full-table plans),
//   - global and grouped aggregation through the partial-merge path,
//     including VARCHAR group keys (per-shard dictionaries differ!),
//   - joins against broadcast dimensions (per-shard local build),
//   - DISTINCT and tie-free ORDER BY + LIMIT compared *in order*,
//   - accelerator-only tables with a VARCHAR distribution key,
//   - analytics operators over broadcast inputs,
//   - online AddShard: results identical before and after a rebalance.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "accel/sharded_accelerator.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "idaa/system.h"

namespace idaa {
namespace {

federation::ExecOptions NoResultCache() {
  federation::ExecOptions opts;
  opts.use_result_cache = false;
  return opts;
}

/// Full-precision row rendering: %.17g round-trips every double exactly,
/// so equal canonical text really means bit-identical values.
std::vector<std::string> Canonical(const ResultSet& rs, bool keep_order) {
  std::vector<std::string> lines;
  lines.reserve(rs.NumRows());
  for (const Row& row : rs.rows()) {
    std::string line;
    for (const Value& v : row) {
      if (v.is_double()) {
        line += StrFormat("%.17g", v.AsDouble());
      } else {
        line += v.ToString();
      }
      line += "|";
    }
    lines.push_back(std::move(line));
  }
  if (!keep_order) std::sort(lines.begin(), lines.end());
  return lines;
}

class ShardEquivalence : public ::testing::TestWithParam<size_t> {
 protected:
  void SetUp() override {
    SystemOptions base;
    base.accelerator_shards = 1;
    baseline_ = std::make_unique<IdaaSystem>(base);
    SystemOptions sharded = base;
    sharded.accelerator_shards = GetParam();
    sharded_ = std::make_unique<IdaaSystem>(sharded);
    Seed(*baseline_);
    Seed(*sharded_);
  }

  /// Deterministic, FP-exact seed. `orders` is hash-distributed on `cust`
  /// (with NULL keys mixed in), `customers` and `feats` are broadcast,
  /// and `sales_aot` is an accelerator-only table distributed on a
  /// VARCHAR column so per-shard dictionary encodings get exercised.
  static void Seed(IdaaSystem& system) {
    ASSERT_TRUE(system
                    .Execute("CREATE TABLE orders (id INT NOT NULL, "
                             "cust INT, amount DOUBLE, region VARCHAR) "
                             "DISTRIBUTE BY (cust)")
                    .ok());
    ASSERT_TRUE(system
                    .Execute("CREATE TABLE customers (cid INT NOT NULL, "
                             "name VARCHAR, tier VARCHAR)")
                    .ok());
    ASSERT_TRUE(system
                    .Execute("CREATE TABLE feats (fid INT NOT NULL, "
                             "x DOUBLE, y DOUBLE)")
                    .ok());
    const char* regions[] = {"NORTH", "SOUTH", "EAST", "WEST"};
    const char* tiers[] = {"GOLD", "SILVER", "BRONZE"};
    for (int c = 0; c < 23; ++c) {
      std::string name =
          c % 7 == 0 ? "NULL" : "'cust_" + std::to_string(c) + "'";
      ASSERT_TRUE(system
                      .Execute(StrFormat(
                          "INSERT INTO customers VALUES (%d, %s, '%s')", c,
                          name.c_str(), tiers[c % 3]))
                      .ok());
    }
    for (int i = 0; i < 240; ++i) {
      // cust covers 0..22 plus NULLs; amount is a multiple of 0.25.
      std::string cust =
          i % 9 == 4 ? "NULL" : std::to_string((i * 7) % 23);
      std::string amount =
          i % 13 == 0 ? "NULL" : StrFormat("%.2f", (i % 97) * 0.25);
      ASSERT_TRUE(system
                      .Execute(StrFormat(
                          "INSERT INTO orders VALUES (%d, %s, %s, '%s')", i,
                          cust.c_str(), amount.c_str(), regions[i % 4]))
                      .ok());
    }
    for (int i = 0; i < 60; ++i) {
      ASSERT_TRUE(system
                      .Execute(StrFormat(
                          "INSERT INTO feats VALUES (%d, %.2f, %.2f)", i,
                          (i % 17) * 0.5, (i % 29) * 0.25))
                      .ok());
    }
    for (const char* t : {"orders", "customers", "feats"}) {
      ASSERT_TRUE(
          system.Execute(std::string("CALL SYSPROC.ACCEL_ADD_TABLES('") + t +
                         "')")
              .ok());
    }
    ASSERT_TRUE(system.replication().Flush().ok());
    ASSERT_TRUE(system
                    .Execute("CREATE TABLE sales_aot (region VARCHAR "
                             "NOT NULL, cnt INT, total DOUBLE) "
                             "IN ACCELERATOR DISTRIBUTE BY (region)")
                    .ok());
    ASSERT_TRUE(system
                    .Execute("INSERT INTO sales_aot SELECT region, "
                             "COUNT(*), SUM(amount) FROM orders "
                             "GROUP BY region")
                    .ok());
  }

  /// DB2 ≡ 1-shard ≡ N-shard, plus an N-shard re-run with the vectorized
  /// batch path off, all compared bit-identically.
  void ExpectThreeWay(const std::string& sql) {
    bool ordered = ToUpper(sql).find("ORDER BY") != std::string::npos;

    sharded_->SetAccelerationMode(federation::AccelerationMode::kNone);
    auto db2 = sharded_->Execute(sql, NoResultCache());
    ASSERT_TRUE(db2.ok()) << sql << "\nDB2: " << db2.status().ToString();
    EXPECT_EQ(db2->routed_to, federation::Target::kDb2) << sql;

    baseline_->SetAccelerationMode(federation::AccelerationMode::kEligible);
    auto one = baseline_->Execute(sql, NoResultCache());
    ASSERT_TRUE(one.ok()) << sql << "\n1-shard: " << one.status().ToString();
    EXPECT_EQ(one->routed_to, federation::Target::kAccelerator) << sql;

    sharded_->SetAccelerationMode(federation::AccelerationMode::kEligible);
    auto many = sharded_->Execute(sql, NoResultCache());
    ASSERT_TRUE(many.ok())
        << sql << "\nN-shard: " << many.status().ToString();
    EXPECT_EQ(many->routed_to, federation::Target::kAccelerator) << sql;

    sharded_->accelerator().SetBatchPathEnabled(false);
    auto row_path = sharded_->Execute(sql, NoResultCache());
    sharded_->accelerator().SetBatchPathEnabled(true);
    ASSERT_TRUE(row_path.ok())
        << sql << "\nN-shard row path: " << row_path.status().ToString();

    EXPECT_EQ(Canonical(db2->rows, ordered), Canonical(many->rows, ordered))
        << "DB2 vs " << GetParam() << "-shard: " << sql;
    EXPECT_EQ(Canonical(one->rows, ordered), Canonical(many->rows, ordered))
        << "1-shard vs " << GetParam() << "-shard: " << sql;
    EXPECT_EQ(Canonical(row_path->rows, ordered),
              Canonical(many->rows, ordered))
        << "batch path diverged from row path: " << sql;
    EXPECT_EQ(db2->rows.schema().NumColumns(),
              many->rows.schema().NumColumns())
        << sql;
  }

  /// 1-shard ≡ N-shard for accelerator-only tables (DB2 holds no copy).
  void ExpectTwoWay(const std::string& sql) {
    bool ordered = ToUpper(sql).find("ORDER BY") != std::string::npos;
    baseline_->SetAccelerationMode(federation::AccelerationMode::kEligible);
    sharded_->SetAccelerationMode(federation::AccelerationMode::kEligible);
    auto one = baseline_->Execute(sql, NoResultCache());
    ASSERT_TRUE(one.ok()) << sql << "\n1-shard: " << one.status().ToString();
    auto many = sharded_->Execute(sql, NoResultCache());
    ASSERT_TRUE(many.ok())
        << sql << "\nN-shard: " << many.status().ToString();
    EXPECT_EQ(Canonical(one->rows, ordered), Canonical(many->rows, ordered))
        << "1-shard vs " << GetParam() << "-shard: " << sql;
  }

  std::unique_ptr<IdaaSystem> baseline_;
  std::unique_ptr<IdaaSystem> sharded_;
};

const char* kQueries[] = {
    // scans + predicates over the partitioned fact table
    "SELECT * FROM orders WHERE amount > 15",
    "SELECT id, amount FROM orders WHERE amount BETWEEN 5 AND 10",
    "SELECT id FROM orders WHERE region = 'NORTH' AND amount > 20",
    "SELECT id FROM orders WHERE amount IS NULL",
    "SELECT id FROM orders WHERE cust IS NULL",
    "SELECT id, cust FROM orders WHERE region LIKE 'S%'",
    // shard pruning: equality on the distribution column
    "SELECT id, amount FROM orders WHERE cust = 7",
    "SELECT COUNT(*), SUM(amount) FROM orders WHERE cust = 7",
    "SELECT region, COUNT(*) FROM orders WHERE cust = 13 GROUP BY region",
    "SELECT id FROM orders WHERE cust = 7 AND amount > 10",
    // global aggregation through the partial-merge path
    "SELECT COUNT(*) FROM orders",
    "SELECT COUNT(amount), SUM(amount), AVG(amount), MIN(amount), "
    "MAX(amount) FROM orders",
    "SELECT STDDEV(amount), VARIANCE(amount) FROM orders",
    "SELECT COUNT(DISTINCT region) FROM orders",
    // grouped aggregation, including VARCHAR group keys whose per-shard
    // dictionary codes differ
    "SELECT region, COUNT(*), SUM(amount) FROM orders GROUP BY region",
    "SELECT cust, COUNT(*) FROM orders GROUP BY cust",
    "SELECT cust % 5, AVG(amount) FROM orders GROUP BY cust % 5",
    "SELECT region, STDDEV(amount) FROM orders GROUP BY region",
    "SELECT region, SUM(amount) FROM orders GROUP BY region "
    "HAVING SUM(amount) > 100",
    "SELECT MIN(region), MAX(region) FROM orders",
    // joins: partitioned fact against broadcast dimension
    "SELECT o.id, c.name FROM orders o JOIN customers c ON o.cust = c.cid "
    "WHERE o.amount > 20",
    "SELECT c.tier, COUNT(*), SUM(o.amount) FROM orders o JOIN customers c "
    "ON o.cust = c.cid GROUP BY c.tier",
    "SELECT c.name, COUNT(*) FROM orders o JOIN customers c "
    "ON o.cust = c.cid WHERE o.region = 'EAST' GROUP BY c.name",
    // distinct / tie-free order + limit (compared in order)
    "SELECT DISTINCT region FROM orders",
    "SELECT DISTINCT cust FROM orders WHERE amount > 20",
    "SELECT id, amount FROM orders ORDER BY id LIMIT 10",
    "SELECT id FROM orders WHERE amount IS NOT NULL "
    "ORDER BY amount DESC, id ASC LIMIT 7",
    "SELECT region, COUNT(*) FROM orders GROUP BY region ORDER BY region",
    "SELECT cust, SUM(amount) FROM orders WHERE cust IS NOT NULL "
    "GROUP BY cust ORDER BY cust LIMIT 5",
};

TEST_P(ShardEquivalence, QueriesBitIdenticalAcrossShardCounts) {
  for (const char* sql : kQueries) {
    SCOPED_TRACE(sql);
    ExpectThreeWay(sql);
  }
}

TEST_P(ShardEquivalence, AotWithVarcharDistributionKey) {
  for (const char* sql : {
           "SELECT * FROM sales_aot",
           "SELECT region, total FROM sales_aot WHERE region = 'NORTH'",
           "SELECT SUM(total), SUM(cnt) FROM sales_aot",
           "SELECT region FROM sales_aot ORDER BY region",
       }) {
    SCOPED_TRACE(sql);
    ExpectTwoWay(sql);
  }
}

TEST_P(ShardEquivalence, AnalyticsOverBroadcastInput) {
  for (IdaaSystem* system : {baseline_.get(), sharded_.get()}) {
    system->SetAccelerationMode(federation::AccelerationMode::kEligible);
    auto run = system->Execute(
        "CALL IDAA.SUMMARIZE('input=feats', 'output=feats_sum')");
    ASSERT_TRUE(run.ok()) << run.status().ToString();
  }
  ExpectTwoWay("SELECT * FROM feats_sum");
}

// Writes through DB2 must land on the right shard (insert), move rows
// between shards (replication update = delete + reinsert), and vanish
// everywhere (delete) — verified by re-running the battery's core shapes.
TEST_P(ShardEquivalence, DmlThenRequery) {
  for (IdaaSystem* system : {baseline_.get(), sharded_.get()}) {
    system->SetAccelerationMode(federation::AccelerationMode::kNone);
    ASSERT_TRUE(
        system->Execute("INSERT INTO orders VALUES (900, 3, 12.25, 'NORTH')")
            .ok());
    ASSERT_TRUE(
        system->Execute("UPDATE orders SET cust = 11 WHERE id = 900").ok());
    ASSERT_TRUE(
        system->Execute("UPDATE orders SET amount = 99.75 WHERE cust = 5")
            .ok());
    ASSERT_TRUE(system->Execute("DELETE FROM orders WHERE cust = 2").ok());
    ASSERT_TRUE(system->replication().Flush().ok());
  }
  for (const char* sql : {
           "SELECT id, cust, amount FROM orders WHERE id = 900",
           "SELECT COUNT(*), SUM(amount) FROM orders",
           "SELECT id, amount FROM orders WHERE cust = 11",
           "SELECT COUNT(*) FROM orders WHERE cust = 2",
           "SELECT cust, COUNT(*) FROM orders GROUP BY cust",
       }) {
    SCOPED_TRACE(sql);
    ExpectThreeWay(sql);
  }
}

// Equality on the distribution column must touch one shard's worth of
// data, not all of it: hash placement defeats zone maps, so this is the
// scan-cost property the whole scale-out story rests on.
TEST_P(ShardEquivalence, PruningScansOneShardOnly) {
  if (GetParam() < 2) GTEST_SKIP() << "pruning needs multiple shards";
  sharded_->SetAccelerationMode(federation::AccelerationMode::kEligible);

  MetricsDelta full(sharded_->metrics());
  ASSERT_TRUE(
      sharded_->Execute("SELECT COUNT(*) FROM orders", NoResultCache()).ok());
  uint64_t full_scanned = full.Delta(metric::kAccelRowsScanned);

  MetricsDelta pruned(sharded_->metrics());
  ASSERT_TRUE(sharded_
                  ->Execute("SELECT COUNT(*) FROM orders WHERE cust = 7",
                            NoResultCache())
                  .ok());
  uint64_t pruned_scanned = pruned.Delta(metric::kAccelRowsScanned);

  EXPECT_GT(full_scanned, 0u);
  // One shard holds roughly 1/N of the fact table; allow generous skew
  // but insist the pruned plan read strictly less than a full pass.
  EXPECT_LT(pruned_scanned, full_scanned / 2 + 1)
      << "equality on the distribution key scanned more than half the "
         "table across "
      << GetParam() << " shards";
}

// Online scale-out: AddShard rebalances live data under an exclusive
// topology gate; every query shape must return the same rows before and
// after, and the topology epoch must advance (result-cache invalidation
// keys off it).
TEST_P(ShardEquivalence, AddShardPreservesResults) {
  auto* sharded = dynamic_cast<accel::ShardedAccelerator*>(
      &sharded_->accelerator());
  if (sharded == nullptr) {
    GTEST_SKIP() << "1-shard system uses the plain accelerator";
  }
  uint64_t epoch_before = sharded->topology_epoch();
  size_t shards_before = sharded->num_shards();
  ASSERT_TRUE(sharded->AddShard().ok());
  EXPECT_EQ(sharded->num_shards(), shards_before + 1);
  EXPECT_GT(sharded->topology_epoch(), epoch_before);

  for (const char* sql : {
           "SELECT COUNT(*), SUM(amount) FROM orders",
           "SELECT id, amount FROM orders WHERE cust = 7",
           "SELECT region, COUNT(*), SUM(amount) FROM orders GROUP BY region",
           "SELECT c.tier, COUNT(*) FROM orders o JOIN customers c "
           "ON o.cust = c.cid GROUP BY c.tier",
           "SELECT id FROM orders ORDER BY id LIMIT 10",
       }) {
    SCOPED_TRACE(sql);
    ExpectThreeWay(sql);
  }
  for (const char* sql : {
           "SELECT * FROM sales_aot",
           "SELECT region, total FROM sales_aot WHERE region = 'WEST'",
       }) {
    SCOPED_TRACE(sql);
    ExpectTwoWay(sql);
  }

  // Replication keeps routing correctly against the grown topology.
  sharded_->SetAccelerationMode(federation::AccelerationMode::kNone);
  ASSERT_TRUE(
      sharded_->Execute("INSERT INTO orders VALUES (901, 19, 3.25, 'WEST')")
          .ok());
  ASSERT_TRUE(sharded_->replication().Flush().ok());
  baseline_->SetAccelerationMode(federation::AccelerationMode::kNone);
  ASSERT_TRUE(
      baseline_->Execute("INSERT INTO orders VALUES (901, 19, 3.25, 'WEST')")
          .ok());
  ASSERT_TRUE(baseline_->replication().Flush().ok());
  ExpectThreeWay("SELECT id, cust, amount FROM orders WHERE cust = 19");
}

// Updating the distribution key in place would silently misplace the row
// (placement is by hash of the key), so the sharded accelerator rejects
// it; non-key updates on the same table still work. AOT updates route to
// the accelerator, which is exactly the surface where this matters.
TEST_P(ShardEquivalence, DistributionKeyUpdateRejectedOnAccelerator) {
  if (GetParam() < 2) GTEST_SKIP() << "plain accelerator has no placement";
  sharded_->SetAccelerationMode(federation::AccelerationMode::kEligible);
  auto key_update =
      sharded_->Execute("UPDATE sales_aot SET region = 'MOVED' "
                        "WHERE cnt > 0");
  ASSERT_FALSE(key_update.ok());
  EXPECT_NE(key_update.status().message().find("distribution key"),
            std::string::npos)
      << key_update.status().ToString();
  ASSERT_TRUE(
      sharded_->Execute("UPDATE sales_aot SET cnt = cnt + 0 WHERE cnt > 0")
          .ok());
  ExpectTwoWay("SELECT * FROM sales_aot");
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ShardEquivalence,
                         ::testing::Values<size_t>(1, 2, 4, 8));

}  // namespace
}  // namespace idaa
