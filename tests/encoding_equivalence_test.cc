// Encoding equivalence battery: per-zone compression (RLE,
// frame-of-reference bit-packing, null bitmaps) must be invisible to
// every consumer. Each query shape runs three ways — DB2 row engine,
// accelerator before GROOM compaction (all rows in the uncompressed hot
// tail), accelerator after compaction (cold prefix encoded) — and all
// three must agree bit-for-bit, across threads {1,2,8} x shards {1,4}.
//
// The seed deliberately hits every encoding x type corner the storage
// format defines:
//   - sequential INTs            -> frame-of-reference bit-packing,
//   - long runs (INT/DOUBLE/     -> RLE, including single-run zones of a
//     VARCHAR codes)                constant column,
//   - INT64 extrema              -> span overflow, zone must stay plain,
//   - negative FOR deltas        -> for_base < 0,
//   - all-NULL and no-NULL zones -> null-bitmap presence/absence,
//   - NULL positions             -> decode to exactly 0/0.0/code-0.
//
// Bit-identity (not epsilon equality) is intentional: doubles in the seed
// are FP-exact multiples of 0.25, encoded evaluation feeds accumulators
// the same values in the same order as the raw path, and run-folded
// accumulator updates replay float additions element-wise. Any divergence
// is a real encoding bug, never FP noise.
//
// A direct Column-level section pins the storage format itself (encoding
// choice per zone, byte accounting, cursor reads), and a GROOM-races-scan
// regression (AnalyticsPinTest style) pins the compaction locking
// protocol under concurrent readers.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "accel/column.h"
#include "accel/column_table.h"
#include "common/string_util.h"
#include "idaa/system.h"

namespace idaa {
namespace {

using accel::Column;
using accel::ColumnCursor;
using accel::ColumnEncodingStats;
using accel::ZoneEncoding;

federation::ExecOptions NoResultCache() {
  federation::ExecOptions opts;
  opts.use_result_cache = false;
  return opts;
}

/// %.17g round-trips every double exactly: equal canonical text means
/// bit-identical values.
std::vector<std::string> Canonical(const ResultSet& rs, bool keep_order) {
  std::vector<std::string> lines;
  lines.reserve(rs.NumRows());
  for (const Row& row : rs.rows()) {
    std::string line;
    for (const Value& v : row) {
      if (v.is_double()) {
        line += StrFormat("%.17g", v.AsDouble());
      } else {
        line += v.ToString();
      }
      line += "|";
    }
    lines.push_back(std::move(line));
  }
  if (!keep_order) std::sort(lines.begin(), lines.end());
  return lines;
}

constexpr int64_t kInt64Lo = std::numeric_limits<int64_t>::min() + 1;
constexpr int64_t kInt64Hi = std::numeric_limits<int64_t>::max();

// ---------------------------------------------------------------------------
// Three-way SQL battery, threads x shards
// ---------------------------------------------------------------------------

class EncodingEquivalence
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {
 protected:
  void SetUp() override {
    SystemOptions options;
    options.accelerator.num_threads = std::get<0>(GetParam());
    options.accelerator_shards = std::get<1>(GetParam());
    options.accelerator.num_slices = 3;
    options.accelerator.zone_size = 16;
    options.accelerator.morsel_size = 32;
    system_ = std::make_unique<IdaaSystem>(options);
    Seed(*system_);
  }

  static void Seed(IdaaSystem& system) {
    ASSERT_TRUE(system
                    .Execute("CREATE TABLE enc_orders (id INT NOT NULL, "
                             "grp INT, day INT, amount DOUBLE, "
                             "region VARCHAR, extreme INT, neg INT, "
                             "allnull INT, constv INT) DISTRIBUTE BY (grp)")
                    .ok());
    ASSERT_TRUE(system
                    .Execute("CREATE TABLE enc_custs (cid INT NOT NULL, "
                             "tier VARCHAR)")
                    .ok());
    const char* regions[] = {"NORTH", "SOUTH", "EAST", "WEST"};
    const char* tiers[] = {"GOLD", "SILVER", "BRONZE"};
    for (int c = 0; c < 23; ++c) {
      ASSERT_TRUE(
          system
              .Execute(StrFormat("INSERT INTO enc_custs VALUES (%d, '%s')", c,
                                 tiers[c % 3]))
              .ok());
    }
    for (int base = 0; base < 240; base += 48) {
      std::string insert = "INSERT INTO enc_orders VALUES ";
      for (int i = base; i < base + 48; ++i) {
        if (i != base) insert += ", ";
        // grp: 0..22 with NULLs; day: runs of 20; amount: FP-exact,
        // piecewise constant per day with NULL breaks; region: runs of
        // 10; extreme: INT64 extrema mixed with small values; neg:
        // negative frame-of-reference range; allnull/constv as named.
        std::string grp = i % 9 == 4 ? "NULL" : std::to_string((i * 7) % 23);
        std::string amount =
            i % 13 == 0 ? "NULL"
                        : StrFormat("%.2f", ((i / 20) % 97) * 0.25);
        int64_t extreme = i % 3 == 0   ? kInt64Lo
                          : i % 3 == 1 ? kInt64Hi
                                       : static_cast<int64_t>(i);
        insert += StrFormat(
            "(%d, %s, %d, %s, '%s', %lld, %d, NULL, 42)", i, grp.c_str(),
            i / 20, amount.c_str(), regions[(i / 10) % 4],
            static_cast<long long>(extreme), -(1000 + i % 50));
      }
      ASSERT_TRUE(system.Execute(insert).ok());
    }
    ASSERT_TRUE(
        system.Execute("CALL SYSPROC.ACCEL_ADD_TABLES('enc_orders')").ok());
    ASSERT_TRUE(
        system.Execute("CALL SYSPROC.ACCEL_ADD_TABLES('enc_custs')").ok());
    ASSERT_TRUE(system.replication().Flush().ok());
  }

  /// The full query battery, canonicalized. Order-insensitive except for
  /// explicit ORDER BY shapes.
  std::vector<std::vector<std::string>> RunBattery() {
    static const struct {
      const char* sql;
      bool ordered;
    } kShapes[] = {
        {"SELECT * FROM enc_orders", false},
        // Range/equality filters over every encoding.
        {"SELECT id, day FROM enc_orders WHERE id >= 37 AND id < 181", false},
        {"SELECT id FROM enc_orders WHERE day = 5", false},
        {"SELECT id FROM enc_orders WHERE day BETWEEN 3 AND 7", false},
        {"SELECT id, amount FROM enc_orders WHERE amount > 0.5", false},
        {"SELECT id FROM enc_orders WHERE region = 'EAST'", false},
        {"SELECT id FROM enc_orders WHERE region > 'NORTH'", false},
        {"SELECT id FROM enc_orders WHERE neg < -1025", false},
        {"SELECT id FROM enc_orders WHERE extreme > 0", false},
        {"SELECT id FROM enc_orders WHERE constv = 42 AND id < 50", false},
        {"SELECT id FROM enc_orders WHERE grp IS NULL", false},
        {"SELECT id FROM enc_orders WHERE allnull IS NULL AND id > 200",
         false},
        // Cross-type literal against an INT column: the deliberate
        // decode-fallback shape on FOR-packed zones.
        {"SELECT id FROM enc_orders WHERE id > 100.5", false},
        // Scalar aggregates (run-folded on RLE zones).
        {"SELECT COUNT(*), COUNT(grp), COUNT(allnull) FROM enc_orders",
         false},
        {"SELECT SUM(id), SUM(amount), SUM(constv) FROM enc_orders", false},
        {"SELECT AVG(amount), STDDEV(amount) FROM enc_orders", false},
        {"SELECT MIN(neg), MAX(neg), MIN(extreme), MAX(extreme) "
         "FROM enc_orders",
         false},
        {"SELECT MIN(amount), MAX(amount), AVG(day) FROM enc_orders "
         "WHERE id >= 60",
         false},
        // Grouped aggregates (VARCHAR and RLE INT keys).
        {"SELECT region, COUNT(*), SUM(amount) FROM enc_orders "
         "GROUP BY region",
         false},
        {"SELECT day, COUNT(grp), AVG(amount), MIN(id), MAX(id) "
         "FROM enc_orders GROUP BY day",
         false},
        {"SELECT DISTINCT region FROM enc_orders", false},
        // Joins against a broadcast dimension.
        {"SELECT c.tier, COUNT(*), SUM(o.amount) FROM enc_orders o "
         "JOIN enc_custs c ON o.grp = c.cid GROUP BY c.tier",
         false},
        {"SELECT o.id, c.tier FROM enc_orders o JOIN enc_custs c "
         "ON o.grp = c.cid WHERE o.day = 2",
         false},
        // Ordered shapes compare in order.
        {"SELECT id, region FROM enc_orders ORDER BY id LIMIT 20", true},
        {"SELECT id, neg FROM enc_orders WHERE day >= 8 ORDER BY id", true},
    };
    std::vector<std::vector<std::string>> out;
    for (const auto& shape : kShapes) {
      auto rs = system_->Execute(shape.sql, NoResultCache());
      EXPECT_TRUE(rs.ok()) << shape.sql << "\n" << rs.status().ToString();
      out.push_back(rs.ok() ? Canonical(rs->rows, shape.ordered)
                            : std::vector<std::string>{"<error>"});
    }
    return out;
  }

  static const char* ShapeName(size_t idx) {
    return "battery shape index";
  }

  std::unique_ptr<IdaaSystem> system_;
};

TEST_P(EncodingEquivalence, ThreeWayBitIdentity) {
  // Leg 1: DB2 row engine.
  system_->SetAccelerationMode(federation::AccelerationMode::kNone);
  auto db2 = RunBattery();

  // Leg 2: accelerator, everything still in the uncompressed hot tail.
  system_->SetAccelerationMode(federation::AccelerationMode::kEligible);
  auto raw = RunBattery();

  // Leg 3: accelerator after GROOM compacted full zones.
  auto groomed = system_->accelerator().GroomAll();
  EXPECT_GT(groomed.zones_compacted, 0u);
  auto encoded = RunBattery();

  ASSERT_EQ(db2.size(), raw.size());
  ASSERT_EQ(db2.size(), encoded.size());
  for (size_t i = 0; i < db2.size(); ++i) {
    EXPECT_EQ(db2[i], raw[i]) << "db2 vs raw accel, shape " << i;
    EXPECT_EQ(raw[i], encoded[i]) << "raw vs encoded accel, shape " << i;
  }

  // Toggling encoding off must not change anything already encoded:
  // existing zones keep decoding transparently.
  system_->accelerator().SetEncodingEnabled(false);
  auto toggled = RunBattery();
  for (size_t i = 0; i < db2.size(); ++i) {
    EXPECT_EQ(encoded[i], toggled[i]) << "encoding toggle, shape " << i;
  }
  system_->accelerator().SetEncodingEnabled(true);
}

TEST_P(EncodingEquivalence, AnalyticsOverEncodedZonesMatchesRaw) {
  // The IDAA.* analytics operators read through the same scan paths as
  // SQL; their outputs must be bit-identical whether the input table's
  // zones are flat or encoded. Analytics over hash-distributed inputs is
  // out of scope on sharded accelerators (DESIGN.md §10 — broadcast
  // inputs only), so this leg runs on the single-shard instances.
  if (std::get<1>(GetParam()) > 1) GTEST_SKIP();
  system_->SetAccelerationMode(federation::AccelerationMode::kEligible);
  ASSERT_TRUE(system_
                  ->Execute("CALL IDAA.SUMMARIZE('input=enc_orders', "
                            "'output=enc_sum_raw')")
                  .ok());
  ASSERT_TRUE(system_
                  ->Execute("CALL IDAA.KMEANS('input=enc_orders', "
                            "'output=enc_k_raw', 'columns=id,day,neg', "
                            "'k=3', 'seed=5')")
                  .ok());
  auto sum_raw = system_->Execute("SELECT * FROM enc_sum_raw");
  auto k_raw = system_->Execute("SELECT * FROM enc_k_raw");
  ASSERT_TRUE(sum_raw.ok());
  ASSERT_TRUE(k_raw.ok());

  auto groomed = system_->accelerator().GroomAll();
  EXPECT_GT(groomed.zones_compacted, 0u);
  ASSERT_TRUE(system_
                  ->Execute("CALL IDAA.SUMMARIZE('input=enc_orders', "
                            "'output=enc_sum_enc')")
                  .ok());
  ASSERT_TRUE(system_
                  ->Execute("CALL IDAA.KMEANS('input=enc_orders', "
                            "'output=enc_k_enc', 'columns=id,day,neg', "
                            "'k=3', 'seed=5')")
                  .ok());
  auto sum_enc = system_->Execute("SELECT * FROM enc_sum_enc");
  auto k_enc = system_->Execute("SELECT * FROM enc_k_enc");
  ASSERT_TRUE(sum_enc.ok());
  ASSERT_TRUE(k_enc.ok());

  EXPECT_EQ(Canonical(sum_raw->rows, false), Canonical(sum_enc->rows, false))
      << "SUMMARIZE raw vs encoded";
  EXPECT_EQ(Canonical(k_raw->rows, false), Canonical(k_enc->rows, false))
      << "KMEANS raw vs encoded";
}

TEST_P(EncodingEquivalence, DmlOnTopOfEncodedZonesConverges) {
  system_->SetAccelerationMode(federation::AccelerationMode::kEligible);
  system_->accelerator().GroomAll();

  // Appends land in the hot tail on top of encoded zones; updates and
  // deletes against encoded rows go through the rebuild path on the next
  // groom. The DB2 engine stays authoritative throughout.
  ASSERT_TRUE(system_
                  ->Execute("INSERT INTO enc_orders VALUES (500, 3, 25, "
                            "1.25, 'NORTH', 7, -1100, NULL, 42)")
                  .ok());
  ASSERT_TRUE(
      system_->Execute("UPDATE enc_orders SET amount = 9.75 WHERE day = 4")
          .ok());
  ASSERT_TRUE(
      system_->Execute("DELETE FROM enc_orders WHERE id >= 200 AND id < 220")
          .ok());
  ASSERT_TRUE(system_->replication().Flush().ok());
  system_->accelerator().GroomAll();

  auto accel = RunBattery();
  system_->SetAccelerationMode(federation::AccelerationMode::kNone);
  auto db2 = RunBattery();
  for (size_t i = 0; i < db2.size(); ++i) {
    EXPECT_EQ(db2[i], accel[i]) << "post-DML, shape " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsShards, EncodingEquivalence,
    ::testing::Combine(::testing::Values<size_t>(1, 2, 8),
                       ::testing::Values<size_t>(1, 4)),
    [](const ::testing::TestParamInfo<std::tuple<size_t, size_t>>& info) {
      return "t" + std::to_string(std::get<0>(info.param)) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Column-level storage format pins
// ---------------------------------------------------------------------------

TEST(ColumnEncodingTest, SequentialIntsPickForPacked) {
  Column col(DataType::kInteger);
  for (int64_t i = 0; i < 64; ++i) {
    ASSERT_TRUE(col.Append(Value::Integer(1000 + i)).ok());
  }
  col.CompactZones(16);
  ASSERT_EQ(col.encoded_zone_count(), 4u);
  ColumnEncodingStats stats = col.EncodingStats();
  EXPECT_EQ(stats.zones_for, 4u);
  EXPECT_LT(stats.encoded_bytes, stats.raw_bytes);
  ColumnCursor cur(col);
  for (size_t i = 0; i < 64; ++i) {
    EXPECT_FALSE(cur.IsNull(i));
    EXPECT_EQ(cur.Int(i), 1000 + static_cast<int64_t>(i)) << i;
    EXPECT_EQ(col.RawInt(i), 1000 + static_cast<int64_t>(i)) << i;
  }
}

TEST(ColumnEncodingTest, NegativeBaseForPacked) {
  Column col(DataType::kInteger);
  for (int64_t i = 0; i < 32; ++i) {
    ASSERT_TRUE(col.Append(Value::Integer(-5000 + i * 3)).ok());
  }
  col.CompactZones(16);
  ASSERT_EQ(col.EncodingStats().zones_for, 2u);
  for (size_t i = 0; i < 32; ++i) {
    EXPECT_EQ(col.RawInt(i), -5000 + static_cast<int64_t>(i) * 3) << i;
  }
}

TEST(ColumnEncodingTest, Int64ExtremaSpanOverflowStaysPlain) {
  Column col(DataType::kInteger);
  for (int64_t i = 0; i < 16; ++i) {
    ASSERT_TRUE(
        col.Append(Value::Integer(i % 2 == 0 ? kInt64Lo : kInt64Hi)).ok());
  }
  col.CompactZones(16);
  // Alternating extrema: RLE degenerates to 16 runs, the FOR span
  // overflows 64 bits — the zone must stay plain and read back exactly.
  ASSERT_EQ(col.encoded_zone_count(), 1u);
  EXPECT_EQ(col.encoded_zone(0).encoding, ZoneEncoding::kPlain);
  for (size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(col.RawInt(i), i % 2 == 0 ? kInt64Lo : kInt64Hi) << i;
  }
}

TEST(ColumnEncodingTest, ConstantColumnSingleRunRle) {
  Column col(DataType::kInteger);
  for (int64_t i = 0; i < 48; ++i) {
    ASSERT_TRUE(col.Append(Value::Integer(7)).ok());
  }
  col.CompactZones(16);
  ColumnEncodingStats stats = col.EncodingStats();
  EXPECT_EQ(stats.zones_rle, 3u);
  for (size_t zi = 0; zi < 3; ++zi) {
    EXPECT_EQ(col.encoded_zone(zi).run_ends.size(), 1u) << zi;
  }
  ColumnCursor cur(col);
  // RunEnd exposes the whole zone as one run to aggregate folding.
  EXPECT_EQ(cur.RunEnd(0), 16u);
  EXPECT_EQ(cur.RunEnd(20), 32u);
  for (size_t i = 0; i < 48; ++i) EXPECT_EQ(col.RawInt(i), 7) << i;
}

TEST(ColumnEncodingTest, AllNullAndNoNullZones) {
  Column col(DataType::kInteger);
  for (int64_t i = 0; i < 16; ++i) {
    ASSERT_TRUE(col.Append(Value::Null()).ok());
  }
  for (int64_t i = 0; i < 16; ++i) {
    ASSERT_TRUE(col.Append(Value::Integer(i)).ok());
  }
  col.CompactZones(16);
  ASSERT_EQ(col.encoded_zone_count(), 2u);
  // The no-NULL zone stores no bitmap at all.
  EXPECT_FALSE(col.encoded_zone(0).null_bits.empty());
  EXPECT_TRUE(col.encoded_zone(1).null_bits.empty());
  for (size_t i = 0; i < 16; ++i) {
    EXPECT_TRUE(col.IsNull(i)) << i;
    // NULL positions decode to exactly 0 in both regions.
    EXPECT_EQ(col.RawInt(i), 0) << i;
    EXPECT_TRUE(col.Get(i).is_null()) << i;
  }
  for (size_t i = 16; i < 32; ++i) {
    EXPECT_FALSE(col.IsNull(i)) << i;
    EXPECT_EQ(col.RawInt(i), static_cast<int64_t>(i) - 16) << i;
  }
}

TEST(ColumnEncodingTest, DoubleRunsAndVarcharCodes) {
  Column dbl(DataType::kDouble);
  Column str(DataType::kVarchar);
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(dbl.Append(i % 13 == 0 ? Value::Null()
                                       : Value::Double((i / 16) * 0.25))
                    .ok());
    ASSERT_TRUE(
        str.Append(Value::Varchar(i / 8 % 2 == 0 ? "AAA" : "BBB")).ok());
  }
  dbl.CompactZones(16);
  str.CompactZones(16);
  EXPECT_GT(dbl.EncodingStats().zones_rle, 0u);
  EXPECT_GT(str.EncodingStats().zones_rle + str.EncodingStats().zones_for,
            0u);
  for (size_t i = 0; i < 64; ++i) {
    if (i % 13 == 0) {
      EXPECT_TRUE(dbl.IsNull(i)) << i;
      EXPECT_EQ(dbl.RawDouble(i), 0.0) << i;
    } else {
      EXPECT_EQ(dbl.RawDouble(i), (i / 16) * 0.25) << i;
    }
    EXPECT_EQ(str.DictEntry(str.RawCode(i)), i / 8 % 2 == 0 ? "AAA" : "BBB")
        << i;
  }
}

TEST(ColumnEncodingTest, HotTailStaysUncompressedAndAppendable) {
  Column col(DataType::kInteger);
  for (int64_t i = 0; i < 40; ++i) {
    ASSERT_TRUE(col.Append(Value::Integer(i)).ok());
  }
  col.CompactZones(16);
  // 2 full zones encode; 8 rows stay in the tail; appends extend it.
  EXPECT_EQ(col.encoded_rows(), 32u);
  EXPECT_EQ(col.size(), 40u);
  ASSERT_TRUE(col.Append(Value::Integer(99)).ok());
  EXPECT_EQ(col.size(), 41u);
  EXPECT_EQ(col.RawInt(40), 99);
  for (size_t i = 0; i < 40; ++i) {
    EXPECT_EQ(col.RawInt(i), static_cast<int64_t>(i)) << i;
  }
  // A later compaction picks up the grown tail.
  for (int64_t i = 41; i < 64; ++i) {
    ASSERT_TRUE(col.Append(Value::Integer(i)).ok());
  }
  col.CompactZones(16);
  EXPECT_EQ(col.encoded_rows(), 64u);
}

// ---------------------------------------------------------------------------
// GROOM compaction racing concurrent scans (AnalyticsPinTest style)
// ---------------------------------------------------------------------------

TEST(EncodingGroomRaceTest, CompactionUnderConcurrentScansStaysConsistent) {
  SystemOptions options;
  options.accelerator.num_threads = 4;
  options.accelerator.num_slices = 2;
  options.accelerator.zone_size = 16;
  options.accelerator.morsel_size = 32;
  IdaaSystem system(options);
  ASSERT_TRUE(system
                  .Execute("CREATE TABLE race_t (id INT NOT NULL, day INT, "
                           "amount DOUBLE, region VARCHAR) IN ACCELERATOR")
                  .ok());
  const char* regions[] = {"NORTH", "SOUTH", "EAST", "WEST"};
  for (int base = 0; base < 240; base += 48) {
    std::string insert = "INSERT INTO race_t VALUES ";
    for (int i = base; i < base + 48; ++i) {
      if (i != base) insert += ", ";
      insert += StrFormat("(%d, %d, %.2f, '%s')", i, i / 20,
                          ((i / 20) % 7) * 0.25, regions[(i / 10) % 4]);
    }
    ASSERT_TRUE(system.Execute(insert).ok());
  }

  const std::string query =
      "SELECT region, COUNT(*), SUM(amount), MIN(id), MAX(id) FROM race_t "
      "WHERE id < 240 GROUP BY region";
  auto baseline_rs = system.Query(query);
  ASSERT_TRUE(baseline_rs.ok());
  const std::vector<std::string> baseline = Canonical(*baseline_rs, false);

  std::atomic<bool> stop{false};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> scanners;
  for (int t = 0; t < 3; ++t) {
    scanners.emplace_back([&] {
      auto conn = system.NewConnection();
      while (!stop.load(std::memory_order_relaxed)) {
        auto rs = conn->Query(query);
        if (!rs.ok() || Canonical(*rs, false) != baseline) {
          mismatches.fetch_add(1);
        }
      }
    });
  }

  // Churn: append disjoint rows, delete them again (dead versions force
  // the groom rebuild path), compact — repeatedly, under the scanners.
  for (int round = 0; round < 8; ++round) {
    std::string insert = "INSERT INTO race_t VALUES ";
    for (int i = 0; i < 32; ++i) {
      if (i != 0) insert += ", ";
      insert += StrFormat("(%d, 99, 0.5, 'TEMP')", 1000 + round * 100 + i);
    }
    ASSERT_TRUE(system.Execute(insert).ok());
    ASSERT_TRUE(system.Execute("DELETE FROM race_t WHERE id >= 1000").ok());
    system.accelerator().GroomAll();
  }
  stop.store(true);
  for (auto& th : scanners) th.join();
  EXPECT_EQ(mismatches.load(), 0);

  auto final_rs = system.Query(query);
  ASSERT_TRUE(final_rs.ok());
  EXPECT_EQ(Canonical(*final_rs, false), baseline);
}

}  // namespace
}  // namespace idaa
