// Tests for the tracing/profiling subsystem: span trees and attributes,
// latency histogram percentile math, the histogram registry, the slow-query
// log, and end-to-end EXPLAIN ANALYZE for DB2-routed, accelerator-routed
// and AOT-delegated statements — including the accelerated star-join
// acceptance case (per-slice scan timings, zone-map rows skipped, boundary
// bytes, coordinator merge).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/trace.h"
#include "idaa/system.h"

namespace idaa {
namespace {

// ---------------------------------------------------------------------------
// QueryTrace / TraceSpan
// ---------------------------------------------------------------------------

TEST(QueryTraceTest, SpanNestingAndAttributes) {
  QueryTrace trace;
  TraceSpan root(&trace, "statement");
  root.Attr("rows", uint64_t{5});
  {
    TraceSpan child(root.context(), "route");
    child.Attr("target", "DB2");
    {
      TraceSpan grandchild(child.context(), "db2.scan t");
      grandchild.Attr("rows", uint64_t{3});
    }
  }
  root.End();

  auto spans = trace.Snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "statement");
  EXPECT_EQ(spans[0].parent, QueryTrace::kNoParent);
  EXPECT_EQ(spans[1].name, "route");
  EXPECT_EQ(spans[1].parent, 0u);
  EXPECT_EQ(spans[2].name, "db2.scan t");
  EXPECT_EQ(spans[2].parent, 1u);
  for (const auto& span : spans) EXPECT_FALSE(span.open);

  auto rows = trace.RenderRows();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].depth, 0u);
  EXPECT_EQ(rows[1].depth, 1u);
  EXPECT_EQ(rows[2].depth, 2u);
  EXPECT_EQ(rows[0].attributes, "rows=5");
  EXPECT_EQ(rows[1].attributes, "target=DB2");

  std::string rendered = trace.Render();
  EXPECT_NE(rendered.find("statement"), std::string::npos);
  EXPECT_NE(rendered.find("  route"), std::string::npos);
  EXPECT_NE(rendered.find("    db2.scan t"), std::string::npos);
}

TEST(QueryTraceTest, SiblingsRenderInCreationOrder) {
  QueryTrace trace;
  TraceSpan root(&trace, "statement");
  { TraceSpan a(root.context(), "first"); }
  { TraceSpan b(root.context(), "second"); }
  { TraceSpan c(root.context(), "third"); }
  root.End();
  auto rows = trace.RenderRows();
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[1].name, "first");
  EXPECT_EQ(rows[2].name, "second");
  EXPECT_EQ(rows[3].name, "third");
}

TEST(QueryTraceTest, NullTraceSpanIsNoOp) {
  TraceContext empty;
  TraceSpan span(empty, "whatever");
  EXPECT_FALSE(static_cast<bool>(span));
  span.Attr("k", "v");  // must not crash
  span.Attr("n", uint64_t{7});
  span.End();
  TraceSpan child(span.context(), "child");
  EXPECT_FALSE(static_cast<bool>(child));
}

TEST(QueryTraceTest, InvalidParentBecomesRoot) {
  QueryTrace trace;
  size_t id = trace.BeginSpan("orphan", /*parent=*/12345);
  trace.EndSpan(id);
  auto spans = trace.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].parent, QueryTrace::kNoParent);
}

TEST(QueryTraceTest, BoundaryBytesAccumulate) {
  QueryTrace trace;
  EXPECT_EQ(trace.boundary_bytes(), 0u);
  trace.AddBoundaryBytes(100);
  trace.AddBoundaryBytes(28);
  EXPECT_EQ(trace.boundary_bytes(), 128u);
}

// ---------------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------------

TEST(LatencyHistogramTest, EmptyReportsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Min(), 0u);
  EXPECT_EQ(h.Max(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.P50(), 0u);
  EXPECT_EQ(h.P99(), 0u);
  EXPECT_EQ(h.Percentile(0.0), 0u);
}

TEST(LatencyHistogramTest, SingleSampleIsExactEverywhere) {
  LatencyHistogram h;
  h.Record(1234);
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_EQ(h.Min(), 1234u);
  EXPECT_EQ(h.Max(), 1234u);
  EXPECT_EQ(h.Mean(), 1234.0);
  EXPECT_EQ(h.P50(), 1234u);
  EXPECT_EQ(h.P95(), 1234u);
  EXPECT_EQ(h.P99(), 1234u);
}

TEST(LatencyHistogramTest, PercentilesAreMonotoneAndBounded) {
  LatencyHistogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  uint64_t prev = 0;
  for (double p : {0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0}) {
    uint64_t v = h.Percentile(p);
    EXPECT_GE(v, prev) << "non-monotone at p=" << p;
    EXPECT_GE(v, h.Min());
    EXPECT_LE(v, h.Max());
    prev = v;
  }
  // p50 of 1..1000 must land in the right order of magnitude (power-of-two
  // buckets: the true median 500 falls in bucket [256, 512)).
  EXPECT_GE(h.P50(), 256u);
  EXPECT_LE(h.P50(), 1000u);
}

TEST(LatencyHistogramTest, ZeroValueSamples) {
  LatencyHistogram h;
  h.Record(0);
  h.Record(0);
  EXPECT_EQ(h.Count(), 2u);
  EXPECT_EQ(h.P50(), 0u);
  EXPECT_EQ(h.Max(), 0u);
}

TEST(LatencyHistogramTest, ResetClears) {
  LatencyHistogram h;
  h.Record(10);
  h.Record(20);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Sum(), 0u);
  EXPECT_EQ(h.P50(), 0u);
}

TEST(HistogramRegistryTest, StableReferencesAndSnapshot) {
  HistogramRegistry registry;
  LatencyHistogram& a = registry.GetOrCreate("a");
  LatencyHistogram& b = registry.GetOrCreate("b");
  a.Record(5);
  EXPECT_EQ(&registry.GetOrCreate("a"), &a);
  EXPECT_EQ(&registry.GetOrCreate("b"), &b);
  auto snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].first, "a");
  EXPECT_EQ(snapshot[0].second.count, 1u);
  EXPECT_EQ(snapshot[0].second.p50, 5u);
  EXPECT_EQ(snapshot[1].second.count, 0u);
}

// ---------------------------------------------------------------------------
// SlowQueryLog (unit; end-to-end coverage lives in features_test.cc)
// ---------------------------------------------------------------------------

TEST(SlowQueryLogTest, DisabledUntilThresholdSet) {
  SlowQueryLog log;
  EXPECT_FALSE(log.enabled());
  EXPECT_FALSE(log.MaybeRecord("SELECT 1", 999999, 0, ""));
  EXPECT_EQ(log.Size(), 0u);
  log.set_threshold_us(10);
  EXPECT_TRUE(log.enabled());
}

TEST(SlowQueryLogTest, CapacityEvictsOldest) {
  SlowQueryLog log;
  log.set_threshold_us(0);
  log.set_capacity(2);
  EXPECT_TRUE(log.MaybeRecord("q1", 1, 0, ""));
  EXPECT_TRUE(log.MaybeRecord("q2", 2, 0, ""));
  EXPECT_TRUE(log.MaybeRecord("q3", 3, 0, ""));
  auto entries = log.Entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].sql, "q2");
  EXPECT_EQ(entries[1].sql, "q3");
}

// ---------------------------------------------------------------------------
// EXPLAIN ANALYZE end to end
// ---------------------------------------------------------------------------

struct StageRow {
  std::string stage;   // trimmed of indentation
  int64_t duration_us;
  std::string detail;
};

std::vector<StageRow> StageRows(const ResultSet& rs) {
  std::vector<StageRow> out;
  for (size_t r = 0; r < rs.NumRows(); ++r) {
    StageRow row;
    std::string raw = rs.At(r, 0).AsVarchar();
    row.stage = raw.substr(raw.find_first_not_of(' '));
    row.duration_us = rs.At(r, 1).AsInteger();
    row.detail = rs.At(r, 2).is_null() ? "" : rs.At(r, 2).AsVarchar();
    out.push_back(std::move(row));
  }
  return out;
}

bool HasStage(const std::vector<StageRow>& rows, const std::string& name) {
  for (const auto& row : rows) {
    if (row.stage.find(name) != std::string::npos) return true;
  }
  return false;
}

// Sum of an integer attribute ("key=<n>") over all stages matching `stage`.
uint64_t SumAttr(const std::vector<StageRow>& rows, const std::string& stage,
                 const std::string& key) {
  uint64_t total = 0;
  for (const auto& row : rows) {
    if (row.stage.find(stage) == std::string::npos) continue;
    size_t pos = row.detail.find(key + "=");
    if (pos == std::string::npos) continue;
    total += std::stoull(row.detail.substr(pos + key.size() + 1));
  }
  return total;
}

TEST(ExplainAnalyzeTest, Db2RoutedStatement) {
  IdaaSystem system;
  ASSERT_TRUE(system.Execute("CREATE TABLE plain (a INT, b INT)").ok());
  ASSERT_TRUE(system.Execute("INSERT INTO plain VALUES (1, 10), (2, 20)")
                  .ok());
  auto rs = system.Query("EXPLAIN ANALYZE SELECT * FROM plain WHERE a = 1");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  auto rows = StageRows(*rs);
  EXPECT_TRUE(HasStage(rows, "route"));
  EXPECT_TRUE(HasStage(rows, "db2.execute"));
  EXPECT_TRUE(HasStage(rows, "db2.lock_wait"));
  EXPECT_TRUE(HasStage(rows, "db2.scan PLAIN"));
  EXPECT_FALSE(HasStage(rows, "accel.execute"));
  // Index access path is named.
  bool found_access_path = false;
  for (const auto& row : rows) {
    if (row.stage.find("db2.scan") != std::string::npos) {
      found_access_path =
          row.detail.find("access_path=") != std::string::npos;
    }
  }
  EXPECT_TRUE(found_access_path);
}

TEST(ExplainAnalyzeTest, AcceleratorRoutedStatement) {
  IdaaSystem system;
  ASSERT_TRUE(system.Execute("CREATE TABLE sales (id INT, amount DOUBLE)")
                  .ok());
  ASSERT_TRUE(
      system.Execute("INSERT INTO sales VALUES (1, 5.0), (2, 7.5)").ok());
  ASSERT_TRUE(
      system.Execute("CALL SYSPROC.ACCEL_ADD_TABLES('sales')").ok());
  system.SetAccelerationMode(federation::AccelerationMode::kAll);
  auto rs = system.Query("EXPLAIN ANALYZE SELECT SUM(amount) FROM sales");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  auto rows = StageRows(*rs);
  EXPECT_TRUE(HasStage(rows, "accel.execute"));
  EXPECT_TRUE(HasStage(rows, "accel.slice_scan"));
  EXPECT_TRUE(HasStage(rows, "xfer.from_accel"));
  EXPECT_FALSE(HasStage(rows, "db2.execute"));
  // Route stage names the accelerator target.
  for (const auto& row : rows) {
    if (row.stage == "route") {
      EXPECT_NE(row.detail.find("target=ACCELERATOR"), std::string::npos);
    }
  }
  EXPECT_GT(SumAttr(rows, "xfer", "bytes"), 0u);
}

TEST(ExplainAnalyzeTest, AotDelegatedStatement) {
  IdaaSystem system;
  ASSERT_TRUE(
      system.Execute("CREATE TABLE aot (x INT, y DOUBLE) IN ACCELERATOR")
          .ok());
  ASSERT_TRUE(
      system.Execute("INSERT INTO aot VALUES (1, 1.0), (2, 4.0)").ok());
  auto rs =
      system.Query("EXPLAIN ANALYZE SELECT x, SUM(y) FROM aot GROUP BY x");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  auto rows = StageRows(*rs);
  EXPECT_TRUE(HasStage(rows, "accel.execute"));
  EXPECT_TRUE(HasStage(rows, "accel.slice_aggregation"));
  EXPECT_TRUE(HasStage(rows, "accel.coordinator_merge"));
  EXPECT_FALSE(HasStage(rows, "db2.execute"));
}

TEST(ExplainAnalyzeTest, PlainExplainStillStatic) {
  IdaaSystem system;
  ASSERT_TRUE(system.Execute("CREATE TABLE t (a INT)").ok());
  auto rs = system.Query("EXPLAIN SELECT * FROM t");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  // The static report keeps its ASPECT/DETAIL shape and does not execute.
  EXPECT_EQ(rs->schema().Column(0).name, "ASPECT");
  bool has_target = false;
  for (size_t r = 0; r < rs->NumRows(); ++r) {
    if (rs->At(r, 0).AsVarchar() == "TARGET") has_target = true;
  }
  EXPECT_TRUE(has_target);
}

// Acceptance: EXPLAIN ANALYZE on an accelerated star join reports per-slice
// scan timings, zone-map rows skipped, transfer bytes and the coordinator
// merge.
TEST(ExplainAnalyzeTest, StarJoinReportsSliceAndZoneMapDetail) {
  SystemOptions options;
  options.accelerator.num_slices = 2;
  options.accelerator.zone_size = 16;
  IdaaSystem system(options);
  ASSERT_TRUE(system
                  .Execute("CREATE TABLE fact (id INT, k INT, v DOUBLE) "
                              "IN ACCELERATOR")
                  .ok());
  ASSERT_TRUE(
      system.Execute("CREATE TABLE dim (k INT, label VARCHAR) "
                        "IN ACCELERATOR")
          .ok());
  ASSERT_TRUE(system
                  .Execute("INSERT INTO dim VALUES (0, 'zero'), "
                              "(1, 'one'), (2, 'two'), (3, 'three')")
                  .ok());
  // 200 fact rows in ascending id order: round-robin slicing keeps each
  // slice's zone-map extents tight on id, so `id < 50` prunes whole zones.
  for (int base = 0; base < 200; base += 50) {
    std::string insert = "INSERT INTO fact VALUES ";
    for (int i = base; i < base + 50; ++i) {
      if (i != base) insert += ", ";
      insert += "(" + std::to_string(i) + ", " + std::to_string(i % 4) +
                ", 1.5)";
    }
    ASSERT_TRUE(system.Execute(insert).ok());
  }

  const std::string query =
      "EXPLAIN ANALYZE SELECT d.label, SUM(f.v) FROM fact f "
      "JOIN dim d ON f.k = d.k WHERE f.id < 50 GROUP BY d.label";
  auto rs = system.Query(query);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  auto rows = StageRows(*rs);

  // The default plan is the batch join: build + probe phases with their
  // own accounting.
  EXPECT_TRUE(HasStage(rows, "accel.batch_join_build"));
  EXPECT_TRUE(HasStage(rows, "accel.batch_join_probe"));
  EXPECT_GT(SumAttr(rows, "accel.batch_join_build", "build_rows"), 0u);
  EXPECT_GT(SumAttr(rows, "accel.batch_join_probe", "matches"), 0u);

  // Per-slice scans with zone-map accounting.
  size_t slice_scans = 0;
  for (const auto& row : rows) {
    if (row.stage == "accel.slice_scan" &&
        row.detail.find("zone_map_skipped=") != std::string::npos) {
      ++slice_scans;
    }
  }
  EXPECT_GE(slice_scans, options.accelerator.num_slices);
  EXPECT_GT(SumAttr(rows, "accel.slice_scan", "zone_map_skipped"), 0u);
  // rows_scanned counts rows visited in zones the zone maps could not prune,
  // so it sits between the true match count (50) and the full table (200).
  const size_t rows_scanned = SumAttr(rows, "accel.slice_scan", "rows_scanned");
  EXPECT_GE(rows_scanned, 50u);
  EXPECT_LT(rows_scanned, 200u);

  // Boundary transfer with byte counts, and the coordinator merge.
  EXPECT_GT(SumAttr(rows, "xfer", "bytes"), 0u);
  EXPECT_TRUE(HasStage(rows, "accel.coordinator_merge"));
  EXPECT_GT(SumAttr(rows, "statement", "boundary_bytes"), 0u);

  // With the batch path disabled the slice join takes over and reports its
  // dimension broadcast.
  system.accelerator().SetBatchPathEnabled(false);
  auto row_rs = system.Query(query);
  ASSERT_TRUE(row_rs.ok()) << row_rs.status().ToString();
  auto row_rows = StageRows(*row_rs);
  EXPECT_TRUE(HasStage(row_rows, "accel.broadcast_dims"));
  EXPECT_FALSE(HasStage(row_rows, "accel.batch_join_probe"));
}

// ---------------------------------------------------------------------------
// Per-statement-kind latency histograms
// ---------------------------------------------------------------------------

TEST(SqlLatencyHistogramTest, RecordsPerStatementKind) {
  IdaaSystem system;
  ASSERT_TRUE(system.Execute("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(system.Execute("INSERT INTO t VALUES (1), (2)").ok());
  ASSERT_TRUE(system.Execute("SELECT * FROM t").ok());
  ASSERT_TRUE(system.Execute("SELECT COUNT(*) FROM t").ok());
  auto& histograms = system.histograms();
  EXPECT_EQ(histograms.GetOrCreate("sql.latency.select").Count(), 2u);
  EXPECT_EQ(histograms.GetOrCreate("sql.latency.insert").Count(), 1u);
  EXPECT_EQ(histograms.GetOrCreate("sql.latency.create_table").Count(), 1u);
}

}  // namespace
}  // namespace idaa
