// Property tests over randomized workloads:
//  1. Replication convergence: after any committed DML stream + flush, the
//     accelerator replica holds exactly the same multiset of rows as DB2.
//  2. Groom invariance: grooming never changes visible query results.
//  3. Rollback invariance: an aborted transaction leaves both engines
//     exactly as they were.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "common/string_util.h"
#include "idaa/system.h"

namespace idaa {
namespace {

std::vector<std::string> CanonicalRows(const ResultSet& rs) {
  std::vector<std::string> lines;
  for (const Row& row : rs.rows()) {
    std::string line;
    for (const Value& v : row) {
      line += v.is_double() ? StrFormat("%.9g", v.AsDouble()) : v.ToString();
      line += "|";
    }
    lines.push_back(std::move(line));
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

class ConvergenceFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConvergenceFuzz, ReplicaMatchesDb2AfterRandomDml) {
  SystemOptions options;
  options.replication_batch_size = 0;
  IdaaSystem system(options);
  ASSERT_TRUE(system
                  .ExecuteSql("CREATE TABLE t (id INT NOT NULL, grp INT, "
                              "v DOUBLE)")
                  .ok());
  ASSERT_TRUE(system.ExecuteSql("CALL SYSPROC.ACCEL_ADD_TABLES('t')").ok());

  Rng rng(GetParam());
  int next_id = 0;
  for (int op = 0; op < 120; ++op) {
    int kind = static_cast<int>(rng.Uniform(0, 9));
    std::string sql;
    if (kind <= 4 || next_id == 0) {
      // Insert (biased; duplicates in grp/v are intentional).
      sql = StrFormat("INSERT INTO t VALUES (%d, %d, %d.5)", next_id++,
                      static_cast<int>(rng.Uniform(0, 4)),
                      static_cast<int>(rng.Uniform(0, 3)));
    } else if (kind <= 6) {
      sql = StrFormat("UPDATE t SET v = v + 1 WHERE grp = %d",
                      static_cast<int>(rng.Uniform(0, 4)));
    } else if (kind == 7) {
      sql = StrFormat("DELETE FROM t WHERE id %% 7 = %d",
                      static_cast<int>(rng.Uniform(0, 6)));
    } else {
      // Periodic flush mid-stream.
      ASSERT_TRUE(system.replication().Flush().ok());
      continue;
    }
    auto r = system.ExecuteSql(sql);
    ASSERT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
  }
  auto flushed = system.replication().Flush();
  ASSERT_TRUE(flushed.ok());
  EXPECT_EQ(flushed->misses, 0u);

  system.SetAccelerationMode(federation::AccelerationMode::kNone);
  auto db2 = system.Query("SELECT id, grp, v FROM t");
  ASSERT_TRUE(db2.ok());
  system.SetAccelerationMode(federation::AccelerationMode::kEligible);
  auto accel = system.Query("SELECT id, grp, v FROM t");
  ASSERT_TRUE(accel.ok());
  EXPECT_EQ(CanonicalRows(*db2), CanonicalRows(*accel))
      << "seed " << GetParam();
}

TEST_P(ConvergenceFuzz, GroomNeverChangesVisibleResults) {
  IdaaSystem system;
  ASSERT_TRUE(system
                  .ExecuteSql("CREATE TABLE g (id INT NOT NULL, v INT) "
                              "IN ACCELERATOR")
                  .ok());
  Rng rng(GetParam() + 1000);
  int next_id = 0;
  for (int op = 0; op < 80; ++op) {
    if (rng.Bernoulli(0.6) || next_id == 0) {
      ASSERT_TRUE(system
                      .ExecuteSql(StrFormat("INSERT INTO g VALUES (%d, %d)",
                                            next_id++,
                                            (int)rng.Uniform(0, 9)))
                      .ok());
    } else if (rng.Bernoulli(0.5)) {
      ASSERT_TRUE(system
                      .ExecuteSql(StrFormat(
                          "UPDATE g SET v = v * 2 WHERE id %% 5 = %d",
                          (int)rng.Uniform(0, 4)))
                      .ok());
    } else {
      ASSERT_TRUE(system
                      .ExecuteSql(StrFormat("DELETE FROM g WHERE v = %d",
                                            (int)rng.Uniform(0, 9)))
                      .ok());
    }
  }
  auto before = system.Query("SELECT id, v FROM g");
  ASSERT_TRUE(before.ok());
  size_t versions_before =
      (*system.accelerator().GetTable("g"))->NumVersions();
  ASSERT_TRUE(system.ExecuteSql("CALL SYSPROC.ACCEL_GROOM()").ok());
  auto after = system.Query("SELECT id, v FROM g");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(CanonicalRows(*before), CanonicalRows(*after))
      << "seed " << GetParam();
  size_t versions_after = (*system.accelerator().GetTable("g"))->NumVersions();
  EXPECT_LE(versions_after, versions_before);
  EXPECT_EQ(versions_after, after->NumRows());  // only live versions remain
}

TEST_P(ConvergenceFuzz, RollbackRestoresBothEngines) {
  IdaaSystem system;
  ASSERT_TRUE(system.ExecuteSql("CREATE TABLE r1 (id INT NOT NULL, v INT)")
                  .ok());
  ASSERT_TRUE(system
                  .ExecuteSql("CREATE TABLE r2 (id INT NOT NULL, v INT) "
                              "IN ACCELERATOR")
                  .ok());
  Rng rng(GetParam() + 2000);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(system
                    .ExecuteSql(StrFormat("INSERT INTO r1 VALUES (%d, %d)", i,
                                          (int)rng.Uniform(0, 9)))
                    .ok());
    ASSERT_TRUE(system
                    .ExecuteSql(StrFormat("INSERT INTO r2 VALUES (%d, %d)", i,
                                          (int)rng.Uniform(0, 9)))
                    .ok());
  }
  auto before_db2 = system.Query("SELECT * FROM r1");
  auto before_aot = system.Query("SELECT * FROM r2");

  ASSERT_TRUE(system.Begin().ok());
  for (int op = 0; op < 15; ++op) {
    const char* table = rng.Bernoulli(0.5) ? "r1" : "r2";
    std::string sql;
    switch (rng.Uniform(0, 2)) {
      case 0:
        sql = StrFormat("INSERT INTO %s VALUES (%d, 0)", table, 100 + op);
        break;
      case 1:
        sql = StrFormat("UPDATE %s SET v = -1 WHERE id %% 3 = %d", table,
                        (int)rng.Uniform(0, 2));
        break;
      default:
        sql = StrFormat("DELETE FROM %s WHERE id %% 4 = %d", table,
                        (int)rng.Uniform(0, 3));
    }
    auto r = system.ExecuteSql(sql);
    ASSERT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
  }
  ASSERT_TRUE(system.Rollback().ok());

  auto after_db2 = system.Query("SELECT * FROM r1");
  auto after_aot = system.Query("SELECT * FROM r2");
  EXPECT_EQ(CanonicalRows(*before_db2), CanonicalRows(*after_db2))
      << "seed " << GetParam();
  EXPECT_EQ(CanonicalRows(*before_aot), CanonicalRows(*after_aot))
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConvergenceFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace idaa
