// Property tests over randomized workloads:
//  1. Replication convergence: after any committed DML stream + flush, the
//     accelerator replica holds exactly the same multiset of rows as DB2.
//  2. Groom invariance: grooming never changes visible query results.
//  3. Rollback invariance: an aborted transaction leaves both engines
//     exactly as they were.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>

#include "accel/sharded_accelerator.h"
#include "common/fault_injector.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "idaa/system.h"

namespace idaa {
namespace {

std::vector<std::string> CanonicalRows(const ResultSet& rs) {
  std::vector<std::string> lines;
  for (const Row& row : rs.rows()) {
    std::string line;
    for (const Value& v : row) {
      line += v.is_double() ? StrFormat("%.9g", v.AsDouble()) : v.ToString();
      line += "|";
    }
    lines.push_back(std::move(line));
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

class ConvergenceFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConvergenceFuzz, ReplicaMatchesDb2AfterRandomDml) {
  SystemOptions options;
  options.replication_batch_size = 0;
  IdaaSystem system(options);
  ASSERT_TRUE(system
                  .Execute("CREATE TABLE t (id INT NOT NULL, grp INT, "
                              "v DOUBLE)")
                  .ok());
  ASSERT_TRUE(system.Execute("CALL SYSPROC.ACCEL_ADD_TABLES('t')").ok());

  Rng rng(GetParam());
  int next_id = 0;
  for (int op = 0; op < 120; ++op) {
    int kind = static_cast<int>(rng.Uniform(0, 9));
    std::string sql;
    if (kind <= 4 || next_id == 0) {
      // Insert (biased; duplicates in grp/v are intentional).
      sql = StrFormat("INSERT INTO t VALUES (%d, %d, %d.5)", next_id++,
                      static_cast<int>(rng.Uniform(0, 4)),
                      static_cast<int>(rng.Uniform(0, 3)));
    } else if (kind <= 6) {
      sql = StrFormat("UPDATE t SET v = v + 1 WHERE grp = %d",
                      static_cast<int>(rng.Uniform(0, 4)));
    } else if (kind == 7) {
      sql = StrFormat("DELETE FROM t WHERE id %% 7 = %d",
                      static_cast<int>(rng.Uniform(0, 6)));
    } else {
      // Periodic flush mid-stream.
      ASSERT_TRUE(system.replication().Flush().ok());
      continue;
    }
    auto r = system.Execute(sql);
    ASSERT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
  }
  auto flushed = system.replication().Flush();
  ASSERT_TRUE(flushed.ok());
  EXPECT_EQ(flushed->misses, 0u);

  system.SetAccelerationMode(federation::AccelerationMode::kNone);
  auto db2 = system.Query("SELECT id, grp, v FROM t");
  ASSERT_TRUE(db2.ok());
  system.SetAccelerationMode(federation::AccelerationMode::kEligible);
  auto accel = system.Query("SELECT id, grp, v FROM t");
  ASSERT_TRUE(accel.ok());
  EXPECT_EQ(CanonicalRows(*db2), CanonicalRows(*accel))
      << "seed " << GetParam();
  // The vectorized batch path and the row-at-a-time fallback must agree
  // on the replica contents too.
  system.accelerator().SetBatchPathEnabled(false);
  auto row_path = system.Query("SELECT id, grp, v FROM t");
  system.accelerator().SetBatchPathEnabled(true);
  ASSERT_TRUE(row_path.ok());
  EXPECT_EQ(CanonicalRows(*accel), CanonicalRows(*row_path))
      << "seed " << GetParam();
}

// Differential harness: on a randomized schema with NULL-riddled data, the
// vectorized batch engine, the row-at-a-time accelerator fallback and DB2
// must return identical results for randomized predicate / aggregation /
// DISTINCT queries.
TEST_P(ConvergenceFuzz, BatchAndRowPathsAgreeOnRandomSchemas) {
  Rng rng(GetParam() + 5000);
  SystemOptions options;
  options.accelerator.num_slices = 1 + GetParam() % 4;
  options.accelerator.zone_size = 16;
  options.accelerator.morsel_size = 16 + 16 * (GetParam() % 3);
  IdaaSystem system(options);

  // Random schema: id plus 2–4 columns drawn from INT / DOUBLE / VARCHAR.
  static const char* kTypes[] = {"INT", "DOUBLE", "VARCHAR"};
  int num_cols = 2 + static_cast<int>(rng.Uniform(0, 2));
  std::vector<int> col_type(num_cols);
  std::string ddl = "CREATE TABLE f (id INT NOT NULL";
  for (int c = 0; c < num_cols; ++c) {
    col_type[c] = static_cast<int>(rng.Uniform(0, 2));
    ddl += StrFormat(", c%d %s", c, kTypes[col_type[c]]);
  }
  ddl += ")";
  ASSERT_TRUE(system.Execute(ddl).ok());
  ASSERT_TRUE(system.Execute("CALL SYSPROC.ACCEL_ADD_TABLES('f')").ok());

  static const char* kWords[] = {"ALPHA", "BETA", "GAMMA", "DELTA", "OMEGA"};
  for (int i = 0; i < 150; ++i) {
    std::string insert = StrFormat("INSERT INTO f VALUES (%d", i);
    for (int c = 0; c < num_cols; ++c) {
      insert += ", ";
      if (rng.Bernoulli(0.15)) {
        insert += "NULL";
      } else if (col_type[c] == 0) {
        insert += StrFormat("%d", static_cast<int>(rng.Uniform(0, 50)) - 10);
      } else if (col_type[c] == 1) {
        insert += StrFormat("%d.25", static_cast<int>(rng.Uniform(0, 400)));
      } else {
        insert += StrFormat("'%s'", kWords[rng.Uniform(0, 4)]);
      }
    }
    insert += ")";
    ASSERT_TRUE(system.Execute(insert).ok());
  }
  ASSERT_TRUE(system.replication().Flush().ok());

  auto random_predicate = [&]() {
    std::string pred;
    int conjuncts = 1 + static_cast<int>(rng.Uniform(0, 1));
    static const char* kOps[] = {"<", "<=", ">", ">=", "=", "<>"};
    for (int k = 0; k < conjuncts; ++k) {
      if (k > 0) pred += " AND ";
      int c = static_cast<int>(rng.Uniform(0, num_cols - 1));
      const char* op = kOps[rng.Uniform(0, 5)];
      if (col_type[c] == 2) {
        // Sometimes a literal no slice dictionary contains.
        const char* lit =
            rng.Bernoulli(0.2) ? "ZZZ_MISSING" : kWords[rng.Uniform(0, 4)];
        pred += StrFormat("c%d %s '%s'", c, op, lit);
      } else if (rng.Bernoulli(0.3)) {
        // Cross-type: int column vs double literal and vice versa.
        pred += StrFormat("c%d %s %d.5", c,
                          op, static_cast<int>(rng.Uniform(0, 60)) - 10);
      } else {
        pred += StrFormat("c%d %s %d", c, op,
                          static_cast<int>(rng.Uniform(0, 300)) - 10);
      }
    }
    return pred;
  };

  std::vector<std::string> queries;
  for (int q = 0; q < 12; ++q) {
    queries.push_back("SELECT * FROM f WHERE " + random_predicate());
  }
  for (int q = 0; q < 6; ++q) {
    int c = static_cast<int>(rng.Uniform(0, num_cols - 1));
    int g = static_cast<int>(rng.Uniform(0, num_cols - 1));
    const char* agg = col_type[c] == 2 ? "MIN" : "SUM";
    queries.push_back(StrFormat(
        "SELECT c%d, COUNT(*), COUNT(c%d), %s(c%d) FROM f WHERE %s "
        "GROUP BY c%d",
        g, c, agg, c, random_predicate().c_str(), g));
  }
  for (int c = 0; c < num_cols; ++c) {
    queries.push_back(StrFormat("SELECT DISTINCT c%d FROM f", c));
    queries.push_back(
        StrFormat("SELECT COUNT(*) FROM f WHERE c%d IS NULL", c));
  }

  for (const std::string& sql : queries) {
    system.SetAccelerationMode(federation::AccelerationMode::kNone);
    auto db2 = system.Query(sql);
    ASSERT_TRUE(db2.ok()) << sql << ": " << db2.status().ToString();
    system.SetAccelerationMode(federation::AccelerationMode::kEligible);
    auto batch = system.Query(sql);
    ASSERT_TRUE(batch.ok()) << sql << ": " << batch.status().ToString();
    system.accelerator().SetBatchPathEnabled(false);
    auto row_path = system.Query(sql);
    system.accelerator().SetBatchPathEnabled(true);
    ASSERT_TRUE(row_path.ok()) << sql << ": " << row_path.status().ToString();
    EXPECT_EQ(CanonicalRows(*db2), CanonicalRows(*batch))
        << "seed " << GetParam() << ": " << sql;
    EXPECT_EQ(CanonicalRows(*row_path), CanonicalRows(*batch))
        << "batch vs row path, seed " << GetParam() << ": " << sql;
  }
}

// Mid-transaction reads on an accelerator-only table: own uncommitted
// inserts/deletes must be visible identically on the batch and row paths.
TEST_P(ConvergenceFuzz, UncommittedWritesAgreeOnBothPaths) {
  SystemOptions options;
  options.accelerator.num_slices = 2;
  options.accelerator.zone_size = 16;
  options.accelerator.morsel_size = 32;
  IdaaSystem system(options);
  ASSERT_TRUE(system
                  .Execute("CREATE TABLE u (id INT NOT NULL, v INT, "
                              "w VARCHAR) IN ACCELERATOR")
                  .ok());
  Rng rng(GetParam() + 9000);
  static const char* kWords[] = {"A", "B", "C"};
  int next_id = 0;
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(system
                    .Execute(StrFormat("INSERT INTO u VALUES (%d, %d, "
                                          "'%s')",
                                          next_id++, (int)rng.Uniform(0, 9),
                                          kWords[rng.Uniform(0, 2)]))
                    .ok());
  }
  ASSERT_TRUE(system.Begin().ok());
  for (int op = 0; op < 12; ++op) {
    std::string sql;
    if (rng.Bernoulli(0.5)) {
      sql = StrFormat("INSERT INTO u VALUES (%d, %d, '%s')", next_id++,
                      (int)rng.Uniform(0, 9), kWords[rng.Uniform(0, 2)]);
    } else if (rng.Bernoulli(0.5)) {
      sql = StrFormat("DELETE FROM u WHERE id %% 5 = %d",
                      (int)rng.Uniform(0, 4));
    } else {
      sql = StrFormat("UPDATE u SET v = v + 10 WHERE v = %d",
                      (int)rng.Uniform(0, 9));
    }
    ASSERT_TRUE(system.Execute(sql).ok()) << sql;

    // Compare mid-transaction on every mutation.
    for (const char* probe :
         {"SELECT id, v, w FROM u WHERE v >= 3",
          "SELECT w, COUNT(*), SUM(v) FROM u GROUP BY w",
          "SELECT COUNT(*) FROM u"}) {
      auto batch = system.Query(probe);
      ASSERT_TRUE(batch.ok()) << probe;
      system.accelerator().SetBatchPathEnabled(false);
      auto row_path = system.Query(probe);
      system.accelerator().SetBatchPathEnabled(true);
      ASSERT_TRUE(row_path.ok()) << probe;
      EXPECT_EQ(CanonicalRows(*row_path), CanonicalRows(*batch))
          << "seed " << GetParam() << " op " << op << ": " << probe;
    }
  }
  ASSERT_TRUE(system.Rollback().ok());
}

TEST_P(ConvergenceFuzz, GroomNeverChangesVisibleResults) {
  IdaaSystem system;
  ASSERT_TRUE(system
                  .Execute("CREATE TABLE g (id INT NOT NULL, v INT) "
                              "IN ACCELERATOR")
                  .ok());
  Rng rng(GetParam() + 1000);
  int next_id = 0;
  for (int op = 0; op < 80; ++op) {
    if (rng.Bernoulli(0.6) || next_id == 0) {
      ASSERT_TRUE(system
                      .Execute(StrFormat("INSERT INTO g VALUES (%d, %d)",
                                            next_id++,
                                            (int)rng.Uniform(0, 9)))
                      .ok());
    } else if (rng.Bernoulli(0.5)) {
      ASSERT_TRUE(system
                      .Execute(StrFormat(
                          "UPDATE g SET v = v * 2 WHERE id %% 5 = %d",
                          (int)rng.Uniform(0, 4)))
                      .ok());
    } else {
      ASSERT_TRUE(system
                      .Execute(StrFormat("DELETE FROM g WHERE v = %d",
                                            (int)rng.Uniform(0, 9)))
                      .ok());
    }
  }
  auto before = system.Query("SELECT id, v FROM g");
  ASSERT_TRUE(before.ok());
  size_t versions_before =
      (*system.accelerator().GetTable("g"))->NumVersions();
  ASSERT_TRUE(system.Execute("CALL SYSPROC.ACCEL_GROOM()").ok());
  auto after = system.Query("SELECT id, v FROM g");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(CanonicalRows(*before), CanonicalRows(*after))
      << "seed " << GetParam();
  size_t versions_after = (*system.accelerator().GetTable("g"))->NumVersions();
  EXPECT_LE(versions_after, versions_before);
  EXPECT_EQ(versions_after, after->NumRows());  // only live versions remain
}

// Analytics-pipeline arm: a randomized data-prep -> mining pipeline over a
// stable AOT input runs on the morsel-parallel batch path while (a) the
// fault injector fails 10% of accelerator/channel crossings with retryable
// errors and (b) a concurrent writer keeps replication busy on another
// table. Invariants: no CALL ever fails terminally (transient faults are
// absorbed by retrying the idempotent operator), and the final summaries
// and every produced table match a clean serial-row-path reference system.
TEST_P(ConvergenceFuzz, AnalyticsPipelineMatchesSerialUnderFaults) {
  Rng rng(GetParam() + 7000);

  // Deterministic input rows, rendered once so both systems load byte-for-
  // byte identical data.
  static const char* kWords[] = {"RED", "GREEN", "BLUE"};
  std::vector<std::string> row_literals;
  {
    Rng data(GetParam() * 31 + 7);
    for (int i = 0; i < 240; ++i) {
      std::string a = data.Bernoulli(0.1)
                          ? "NULL"
                          : StrFormat("%d.25", (int)data.Uniform(0, 100));
      std::string c = data.Bernoulli(0.1)
                          ? "NULL"
                          : StrFormat("'%s'", kWords[data.Uniform(0, 2)]);
      row_literals.push_back(StrFormat("(%d, %s, %d.5, %s)", i, a.c_str(),
                                       (int)data.Uniform(0, 50), c.c_str()));
    }
  }

  // One randomized pipeline, shared verbatim by both systems: 1-2 prep
  // stages chained, then a mining operator.
  std::vector<std::string> calls;
  std::vector<std::string> tables;  // produced AOTs to diff at the end
  std::string current = "af";
  int preps = 1 + (int)rng.Uniform(0, 1);
  for (int s = 0; s < preps; ++s) {
    std::string out = StrFormat("p%d", s + 1);
    switch (rng.Uniform(0, 3)) {
      case 0:
        calls.push_back(StrFormat(
            "CALL IDAA.NORMALIZE('input=%s', 'output=%s', 'columns=a,b'%s)",
            current.c_str(), out.c_str(),
            rng.Bernoulli(0.5) ? ", 'method=minmax'" : ""));
        break;
      case 1:
        calls.push_back(StrFormat(
            "CALL IDAA.DISCRETIZE('input=%s', 'output=%s', 'column=a', "
            "'bins=%d')",
            current.c_str(), out.c_str(), 3 + (int)rng.Uniform(0, 4)));
        break;
      case 2:
        calls.push_back(StrFormat(
            "CALL IDAA.IMPUTE('input=%s', 'output=%s', 'columns=a,c')",
            current.c_str(), out.c_str()));
        break;
      default:
        calls.push_back(StrFormat(
            "CALL IDAA.SAMPLE('input=%s', 'output=%s', 'fraction=0.6', "
            "'seed=%d')",
            current.c_str(), out.c_str(), (int)(GetParam() + 3)));
    }
    tables.push_back(out);
    current = out;
  }
  switch (rng.Uniform(0, 3)) {
    case 0:
      calls.push_back(StrFormat(
          "CALL IDAA.KMEANS('input=%s', 'output=model', 'columns=a,b', "
          "'k=3', 'seed=%d')",
          current.c_str(), (int)GetParam()));
      break;
    case 1:
      calls.push_back(StrFormat(
          "CALL IDAA.LINREG('input=%s', 'target=b', 'columns=a', "
          "'output=model')",
          current.c_str()));
      break;
    case 2:
      calls.push_back(StrFormat(
          "CALL IDAA.NAIVEBAYES('input=%s', 'label=c', 'columns=a,b', "
          "'output=model')",
          current.c_str()));
      break;
    default:
      calls.push_back(StrFormat(
          "CALL IDAA.DECISIONTREE('input=%s', 'label=c', 'columns=a,b', "
          "'max_depth=3', 'output=model')",
          current.c_str()));
  }
  tables.push_back("model");

  auto setup = [&row_literals](IdaaSystem& system) {
    ASSERT_TRUE(system
                    .Execute("CREATE TABLE af (id INT NOT NULL, a DOUBLE, "
                                "b DOUBLE, c VARCHAR) IN ACCELERATOR")
                    .ok());
    for (size_t i = 0; i < row_literals.size(); i += 40) {
      std::string insert = "INSERT INTO af VALUES ";
      for (size_t j = i; j < std::min(i + 40, row_literals.size()); ++j) {
        if (j > i) insert += ", ";
        insert += row_literals[j];
      }
      ASSERT_TRUE(system.Execute(insert).ok()) << insert;
    }
  };

  // Clean reference: serial row path end to end, no faults, no load.
  IdaaSystem reference;
  setup(reference);
  reference.accelerator().SetBatchPathEnabled(false);
  std::vector<std::string> ref_summaries;
  for (const std::string& call : calls) {
    auto rs = reference.Query(call);
    ASSERT_TRUE(rs.ok()) << call << ": " << rs.status().ToString();
    for (const std::string& line : CanonicalRows(*rs)) {
      ref_summaries.push_back(line);
    }
  }

  // System under test: batch path (default), 10% faults, busy replication.
  SystemOptions options;
  options.replication_batch_size = 16;
  IdaaSystem faulty(options);
  setup(faulty);
  ASSERT_TRUE(
      faulty.Execute("CREATE TABLE noise (id INT NOT NULL, v INT)").ok());
  ASSERT_TRUE(
      faulty.Execute("CALL SYSPROC.ACCEL_ADD_TABLES('noise')").ok());
  FaultSpec spec;
  spec.probability = 0.1;
  faulty.fault_injector().ArmChannel(spec);
  faulty.fault_injector().Arm(FaultInjector::AcceleratorSite("ACCEL1"), spec);

  std::atomic<bool> stop{false};
  std::thread writer([&faulty, &stop] {
    auto conn = faulty.NewConnection();
    int id = 0;
    while (!stop.load()) {
      auto r = conn->Execute(
          StrFormat("INSERT INTO noise VALUES (%d, %d)", id, id % 7));
      if (!r.ok()) {
        ASSERT_TRUE(r.status().retryable() ||
                    r.status().code() == StatusCode::kConflict)
            << r.status().ToString();
      }
      ++id;
      auto flushed = faulty.replication().Flush();
      if (!flushed.ok()) {
        ASSERT_TRUE(flushed.status().retryable())
            << flushed.status().ToString();
      }
      std::this_thread::yield();
    }
  });

  std::vector<std::string> got_summaries;
  for (const std::string& call : calls) {
    bool done = false;
    for (int attempt = 0; attempt < 200 && !done; ++attempt) {
      auto rs = faulty.Query(call);
      if (rs.ok()) {
        for (const std::string& line : CanonicalRows(*rs)) {
          got_summaries.push_back(line);
        }
        done = true;
      } else {
        ASSERT_TRUE(rs.status().retryable() ||
                    rs.status().code() == StatusCode::kConflict)
            << "user-visible terminal error from " << call << ": "
            << rs.status().ToString();
        std::this_thread::yield();
      }
    }
    ASSERT_TRUE(done) << "retries exhausted for " << call;
  }
  stop.store(true);
  writer.join();
  faulty.fault_injector().Reset();

  EXPECT_EQ(got_summaries, ref_summaries) << "seed " << GetParam();
  for (const std::string& table : tables) {
    auto got = faulty.Query("SELECT * FROM " + table);
    auto want = reference.Query("SELECT * FROM " + table);
    ASSERT_TRUE(got.ok()) << table << ": " << got.status().ToString();
    ASSERT_TRUE(want.ok()) << table << ": " << want.status().ToString();
    EXPECT_EQ(CanonicalRows(*got), CanonicalRows(*want))
        << "seed " << GetParam() << " table " << table;
  }
}

// Loader arm: a randomized CSV document (quoting, embedded delimiters and
// newlines, NULLs vs quoted empties, scattered type errors) is loaded twice
// — direct-to-AOT over the columnar wire, and via DB2 + replication — with
// 10% of channel/accelerator crossings failing retryably. Invariants: both
// loads absorb the faults via retry/backoff, reject exactly the same
// records, and converge to identical visible contents (and the via-DB2
// replica matches DB2 row for row).
TEST_P(ConvergenceFuzz, LoaderDirectAndViaDb2ConvergeUnderFaults) {
  Rng rng(GetParam() + 11000);
  static const char* kWords[] = {"alpha", "beta,comma", "line\nbreak",
                                 "quote\"inside", "plain", "x,y\nz"};

  // Random CSV body. Record shapes are chosen per field; ~7% of records
  // carry a type error or NOT NULL violation and must be rejected by BOTH
  // load paths at the same record index.
  std::ostringstream body;
  const int num_records = 250 + (int)rng.Uniform(0, 100);
  for (int i = 0; i < num_records; ++i) {
    // id INT NOT NULL: occasionally malformed or missing.
    if (rng.Bernoulli(0.03)) {
      body << (rng.Bernoulli(0.5) ? "notanint" : "");
    } else {
      body << i;
    }
    body << ",";
    // s VARCHAR: plain / quoted with delimiter / embedded newline /
    // doubled quote / unquoted empty (NULL) / quoted empty ("").
    if (rng.Bernoulli(0.15)) {
      body << (rng.Bernoulli(0.5) ? "" : "\"\"");
    } else {
      const std::string word = kWords[rng.Uniform(0, 5)];
      bool needs_quote = word.find(',') != std::string::npos ||
                         word.find('\n') != std::string::npos ||
                         word.find('"') != std::string::npos;
      if (needs_quote) {
        body << '"';
        for (char c : word) {
          body << c;
          if (c == '"') body << '"';
        }
        body << '"';
      } else {
        body << word;
      }
    }
    body << ",";
    // v DOUBLE: numeric, NULL, or malformed.
    if (rng.Bernoulli(0.04)) {
      body << "oops";
    } else if (rng.Bernoulli(0.1)) {
      // NULL
    } else {
      body << StrFormat("%d.%d", (int)rng.Uniform(0, 500),
                        (int)rng.Uniform(0, 9));
    }
    body << (rng.Bernoulli(0.2) ? "\r\n" : "\n");
  }
  const std::string csv = body.str();
  Schema schema({{"ID", DataType::kInteger, false},
                 {"S", DataType::kVarchar, true},
                 {"V", DataType::kDouble, true}});

  SystemOptions options;
  options.replication_batch_size = 0;
  IdaaSystem system(options);
  ASSERT_TRUE(system
                  .Execute("CREATE TABLE direct_t (id INT NOT NULL, "
                              "s VARCHAR, v DOUBLE) IN ACCELERATOR")
                  .ok());
  ASSERT_TRUE(system
                  .Execute("CREATE TABLE via_t (id INT NOT NULL, "
                              "s VARCHAR, v DOUBLE)")
                  .ok());
  ASSERT_TRUE(
      system.Execute("CALL SYSPROC.ACCEL_ADD_TABLES('via_t')").ok());

  // 10% of every boundary crossing fails with a retryable fault.
  FaultSpec spec;
  spec.probability = 0.1;
  system.fault_injector().ArmChannel(spec);
  system.fault_injector().Arm(FaultInjector::AcceleratorSite("ACCEL1"), spec);

  loader::LoadOptions lo;
  lo.max_rejects = loader::kUnlimitedRejects;
  lo.retry.max_attempts = 10;  // absorb p=0.1 faults with certainty
  lo.retry.initial_backoff_us = 20;

  lo.num_workers = 1 + rng.Uniform(0, 7);
  lo.batch_size = 16 + (size_t)rng.Uniform(0, 64);
  loader::CsvStringSource direct_source(csv, schema);
  auto direct = system.loader().Load("direct_t", &direct_source, lo);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  EXPECT_TRUE(direct->columnar);

  lo.num_workers = 1 + rng.Uniform(0, 7);
  lo.batch_size = 16 + (size_t)rng.Uniform(0, 64);
  loader::CsvStringSource via_source(csv, schema);
  auto via = system.loader().Load("via_t", &via_source, lo);
  ASSERT_TRUE(via.ok()) << via.status().ToString();

  // Replication to the via_t replica, retrying through injected faults.
  bool flushed = false;
  for (int attempt = 0; attempt < 200 && !flushed; ++attempt) {
    auto r = system.replication().Flush();
    if (r.ok()) {
      flushed = r->misses == 0;
    } else {
      ASSERT_TRUE(r.status().retryable()) << r.status().ToString();
    }
  }
  ASSERT_TRUE(flushed);
  system.fault_injector().Reset();

  // Rejects accounted identically: same count, same record indices.
  EXPECT_EQ(direct->rows_rejected, via->rows_rejected) << "seed " << GetParam();
  EXPECT_EQ(direct->rows_loaded, via->rows_loaded);
  ASSERT_EQ(direct->reject_samples.size(), via->reject_samples.size());
  for (size_t i = 0; i < direct->reject_samples.size(); ++i) {
    EXPECT_EQ(direct->reject_samples[i].record_index,
              via->reject_samples[i].record_index);
    EXPECT_EQ(direct->reject_samples[i].raw, via->reject_samples[i].raw);
  }

  // Visible contents converge: AOT == DB2 rows == replica rows.
  auto aot = system.Query("SELECT id, s, v FROM direct_t");
  ASSERT_TRUE(aot.ok()) << aot.status().ToString();
  system.SetAccelerationMode(federation::AccelerationMode::kNone);
  auto db2 = system.Query("SELECT id, s, v FROM via_t");
  ASSERT_TRUE(db2.ok());
  system.SetAccelerationMode(federation::AccelerationMode::kEligible);
  auto replica = system.Query("SELECT id, s, v FROM via_t");
  ASSERT_TRUE(replica.ok());
  EXPECT_EQ(CanonicalRows(*aot), CanonicalRows(*db2)) << "seed " << GetParam();
  EXPECT_EQ(CanonicalRows(*db2), CanonicalRows(*replica))
      << "seed " << GetParam();
  EXPECT_EQ(aot->NumRows(), direct->rows_loaded);
}

TEST_P(ConvergenceFuzz, RollbackRestoresBothEngines) {
  IdaaSystem system;
  ASSERT_TRUE(system.Execute("CREATE TABLE r1 (id INT NOT NULL, v INT)")
                  .ok());
  ASSERT_TRUE(system
                  .Execute("CREATE TABLE r2 (id INT NOT NULL, v INT) "
                              "IN ACCELERATOR")
                  .ok());
  Rng rng(GetParam() + 2000);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(system
                    .Execute(StrFormat("INSERT INTO r1 VALUES (%d, %d)", i,
                                          (int)rng.Uniform(0, 9)))
                    .ok());
    ASSERT_TRUE(system
                    .Execute(StrFormat("INSERT INTO r2 VALUES (%d, %d)", i,
                                          (int)rng.Uniform(0, 9)))
                    .ok());
  }
  auto before_db2 = system.Query("SELECT * FROM r1");
  auto before_aot = system.Query("SELECT * FROM r2");

  ASSERT_TRUE(system.Begin().ok());
  for (int op = 0; op < 15; ++op) {
    const char* table = rng.Bernoulli(0.5) ? "r1" : "r2";
    std::string sql;
    switch (rng.Uniform(0, 2)) {
      case 0:
        sql = StrFormat("INSERT INTO %s VALUES (%d, 0)", table, 100 + op);
        break;
      case 1:
        sql = StrFormat("UPDATE %s SET v = -1 WHERE id %% 3 = %d", table,
                        (int)rng.Uniform(0, 2));
        break;
      default:
        sql = StrFormat("DELETE FROM %s WHERE id %% 4 = %d", table,
                        (int)rng.Uniform(0, 3));
    }
    auto r = system.Execute(sql);
    ASSERT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
  }
  ASSERT_TRUE(system.Rollback().ok());

  auto after_db2 = system.Query("SELECT * FROM r1");
  auto after_aot = system.Query("SELECT * FROM r2");
  EXPECT_EQ(CanonicalRows(*before_db2), CanonicalRows(*after_db2))
      << "seed " << GetParam();
  EXPECT_EQ(CanonicalRows(*before_aot), CanonicalRows(*after_aot))
      << "seed " << GetParam();
}

// Join arm: randomized star-join pipelines over replicated tables while 10%
// of accelerator/channel crossings fail with retryable faults and a writer
// keeps replication busy. For every query shape (inner / left-outer / cross,
// INT and dictionary-coded VARCHAR keys, residual non-equi conjuncts,
// GROUP BY through the join) the batch hash join, the row-path join and the
// DB2 reference must return identical rows; transient faults may only delay
// an answer, never change it.
TEST_P(ConvergenceFuzz, JoinPipelinesAgreeUnderFaults) {
  Rng rng(GetParam() + 9000);
  SystemOptions options;
  options.accelerator.num_slices = 1 + GetParam() % 3;
  options.accelerator.zone_size = 16;
  options.accelerator.morsel_size = 32;
  IdaaSystem system(options);

  ASSERT_TRUE(system
                  .Execute("CREATE TABLE jf (id INT NOT NULL, ik INT, "
                              "vk VARCHAR, m INT, w DOUBLE)")
                  .ok());
  ASSERT_TRUE(
      system.Execute("CREATE TABLE jd1 (ik INT, tag VARCHAR, boost INT)")
          .ok());
  ASSERT_TRUE(
      system.Execute("CREATE TABLE jd2 (vk VARCHAR, score INT)").ok());

  static const char* kKeys[] = {"RED", "GREEN", "BLUE", "CYAN", "PINK"};
  for (int i = 0; i < 120; ++i) {
    std::string ik = rng.Bernoulli(0.15)
                         ? "NULL"
                         : StrFormat("%d", (int)rng.Uniform(0, 12));
    std::string vk = rng.Bernoulli(0.15)
                         ? "NULL"
                         : StrFormat("'%s'", kKeys[rng.Uniform(0, 4)]);
    auto r = system.Execute(
        StrFormat("INSERT INTO jf VALUES (%d, %s, %s, %d, %d.25)", i,
                  ik.c_str(), vk.c_str(), (int)rng.Uniform(0, 9),
                  (int)rng.Uniform(0, 100)));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  // Duplicate-heavy dimension keys, a NULL key, and keys matching nothing.
  for (int k = 0; k < 15; ++k) {
    auto r = system.Execute(
        StrFormat("INSERT INTO jd1 VALUES (%d, '%s', %d)",
                  (int)rng.Uniform(0, 9), kKeys[rng.Uniform(0, 4)],
                  (int)rng.Uniform(0, 5)));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  ASSERT_TRUE(system.Execute("INSERT INTO jd1 VALUES (NULL, 'VOID', 9), "
                                "(99, 'LONELY', 9)")
                  .ok());
  for (const char* k : kKeys) {
    auto r = system.Execute(StrFormat("INSERT INTO jd2 VALUES ('%s', %d)",
                                         k, (int)rng.Uniform(0, 50)));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  ASSERT_TRUE(
      system.Execute("INSERT INTO jd2 VALUES (NULL, -1), ('MAUVE', -2)")
          .ok());
  for (const char* t : {"jf", "jd1", "jd2"}) {
    ASSERT_TRUE(
        system.Execute(StrFormat("CALL SYSPROC.ACCEL_ADD_TABLES('%s')", t))
            .ok());
  }
  ASSERT_TRUE(system.replication().Flush().ok());

  // Random join pipelines. The joined tables stay static, so answers are
  // deterministic even while the writer below churns another table.
  std::vector<std::string> queries;
  for (int q = 0; q < 10; ++q) {
    const bool int_key = rng.Bernoulli(0.5);
    const char* join = rng.Bernoulli(0.3) ? "LEFT JOIN" : "JOIN";
    std::string on = int_key ? "f.ik = d.ik" : "f.vk = d.vk";
    const char* dim = int_key ? "jd1" : "jd2";
    if (rng.Bernoulli(0.3)) {
      on += StrFormat(" AND f.m > %d", (int)rng.Uniform(0, 5));
    }
    std::string sql;
    if (rng.Bernoulli(0.4)) {
      const char* val = int_key ? "d.tag" : "d.score";
      sql = StrFormat(
          "SELECT %s, COUNT(*), SUM(f.m) FROM jf f %s %s d ON %s GROUP BY %s",
          val, join, dim, on.c_str(), val);
    } else {
      const char* proj = int_key ? "d.boost" : "d.score";
      sql = StrFormat("SELECT f.id, %s FROM jf f %s %s d ON %s", proj, join,
                      dim, on.c_str());
      if (rng.Bernoulli(0.4)) {
        sql += StrFormat(" WHERE f.m <= %d", (int)rng.Uniform(2, 7));
      }
    }
    queries.push_back(std::move(sql));
  }
  queries.push_back("SELECT COUNT(*) FROM jf f CROSS JOIN jd2 d");

  // 10% of boundary crossings fail; a writer keeps replication busy on an
  // unrelated table throughout.
  ASSERT_TRUE(
      system.Execute("CREATE TABLE jnoise (id INT NOT NULL, v INT)").ok());
  ASSERT_TRUE(
      system.Execute("CALL SYSPROC.ACCEL_ADD_TABLES('jnoise')").ok());
  FaultSpec spec;
  spec.probability = 0.1;
  system.fault_injector().ArmChannel(spec);
  system.fault_injector().Arm(FaultInjector::AcceleratorSite("ACCEL1"), spec);
  std::atomic<bool> stop{false};
  std::thread writer([&system, &stop] {
    auto conn = system.NewConnection();
    int n = 0;
    while (!stop.load()) {
      (void)conn->Execute(
          StrFormat("INSERT INTO jnoise VALUES (%d, %d)", n, n % 5));
      ++n;
      (void)system.replication().Flush();
      std::this_thread::yield();
    }
  });

  auto query_with_retry = [&](const std::string& sql) {
    for (int attempt = 0; attempt < 200; ++attempt) {
      auto rs = system.Query(sql);
      if (rs.ok()) return CanonicalRows(*rs);
      EXPECT_TRUE(rs.status().retryable() ||
                  rs.status().code() == StatusCode::kConflict)
          << "terminal error from " << sql << ": " << rs.status().ToString();
      std::this_thread::yield();
    }
    ADD_FAILURE() << "retries exhausted for " << sql;
    return std::vector<std::string>();
  };

  for (const std::string& sql : queries) {
    system.SetAccelerationMode(federation::AccelerationMode::kNone);
    auto db2 = query_with_retry(sql);
    system.SetAccelerationMode(federation::AccelerationMode::kEligible);
    system.accelerator().SetBatchPathEnabled(true);
    auto batch = query_with_retry(sql);
    system.accelerator().SetBatchPathEnabled(false);
    auto row_path = query_with_retry(sql);
    system.accelerator().SetBatchPathEnabled(true);
    EXPECT_EQ(db2, batch) << "seed " << GetParam() << ": " << sql;
    EXPECT_EQ(row_path, batch)
        << "batch vs row path, seed " << GetParam() << ": " << sql;
  }
  stop.store(true);
  writer.join();
  system.fault_injector().Reset();
}

// Shard arm: a randomized stream of DML, DDL, GROOM and online AddShard
// rebalances runs against a hash-partitioned N-shard accelerator while 10%
// of channel and per-shard accelerator crossings fail retryably. The same
// statement stream applied to a clean serial 1-shard reference must
// converge to identical visible contents on every table — faults and
// topology changes may delay convergence, never corrupt it.
TEST_P(ConvergenceFuzz, ShardedReplicaConvergesUnderFaultsAndRebalance) {
  Rng rng(GetParam() + 13000);
  const size_t num_shards = 2 + GetParam() % 3;

  SystemOptions ref_options;
  ref_options.replication_batch_size = 0;
  IdaaSystem reference(ref_options);

  SystemOptions options;
  options.replication_batch_size = 8;
  options.accelerator_shards = num_shards;
  IdaaSystem sharded(options);
  auto* shard_accel =
      dynamic_cast<accel::ShardedAccelerator*>(&sharded.accelerator());
  ASSERT_NE(shard_accel, nullptr);

  // Runs one statement on both systems: the serial reference must accept
  // it outright; the faulty sharded system may need retries.
  auto both = [&](const std::string& sql) {
    auto ref = reference.Execute(sql);
    ASSERT_TRUE(ref.ok()) << sql << ": " << ref.status().ToString();
    for (int attempt = 0; attempt < 200; ++attempt) {
      auto got = sharded.Execute(sql);
      if (got.ok()) return;
      ASSERT_TRUE(got.status().retryable() ||
                  got.status().code() == StatusCode::kConflict)
          << "terminal error from " << sql << ": " << got.status().ToString();
      std::this_thread::yield();
    }
    FAIL() << "retries exhausted for " << sql;
  };

  both("CREATE TABLE st (id INT NOT NULL, grp INT, v DOUBLE) "
       "DISTRIBUTE BY (grp)");
  both("CALL SYSPROC.ACCEL_ADD_TABLES('st')");

  FaultSpec spec;
  spec.probability = 0.1;
  sharded.fault_injector().ArmChannel(spec);
  // Shards are independent failure domains: arm every per-shard site (and
  // a few extra indices so shards added mid-run fault too).
  for (size_t i = 0; i < num_shards + 3; ++i) {
    sharded.fault_injector().Arm(
        FaultInjector::AcceleratorSite(StrFormat("ACCEL1#%zu", i)), spec);
  }

  int next_id = 0;
  bool made_second_table = false;
  for (int op = 0; op < 100; ++op) {
    int kind = static_cast<int>(rng.Uniform(0, 11));
    if (kind <= 4 || next_id == 0) {
      both(StrFormat("INSERT INTO st VALUES (%d, %d, %d.25)", next_id++,
                     static_cast<int>(rng.Uniform(0, 6)),
                     static_cast<int>(rng.Uniform(0, 40))));
    } else if (kind == 5) {
      // Distribution-key update: replication reroutes the row to its new
      // home shard (delete at the old hash, reinsert at the new one).
      both(StrFormat("UPDATE st SET grp = %d WHERE id %% 5 = %d",
                     static_cast<int>(rng.Uniform(0, 6)),
                     static_cast<int>(rng.Uniform(0, 4))));
    } else if (kind == 6) {
      both(StrFormat("UPDATE st SET v = v + 1 WHERE grp = %d",
                     static_cast<int>(rng.Uniform(0, 6))));
    } else if (kind == 7) {
      both(StrFormat("DELETE FROM st WHERE id %% 7 = %d",
                     static_cast<int>(rng.Uniform(0, 6))));
    } else if (kind == 8) {
      for (int attempt = 0; attempt < 200; ++attempt) {
        auto flushed = sharded.replication().Flush();
        if (flushed.ok()) break;
        ASSERT_TRUE(flushed.status().retryable())
            << flushed.status().ToString();
      }
      ASSERT_TRUE(reference.replication().Flush().ok());
    } else if (kind == 9) {
      both("CALL SYSPROC.ACCEL_GROOM()");
    } else if (!made_second_table) {
      // Mid-stream DDL: a second partitioned table joins the stream.
      made_second_table = true;
      both("CREATE TABLE st2 (k INT NOT NULL, t VARCHAR) DISTRIBUTE BY (k)");
      both("CALL SYSPROC.ACCEL_ADD_TABLES('st2')");
      for (int i = 0; i < 10; ++i) {
        both(StrFormat("INSERT INTO st2 VALUES (%d, 'w%d')", i, i % 3));
      }
    } else if (shard_accel->num_shards() < num_shards + 2) {
      // Online rebalance, mid-stream, with replication traffic pending.
      for (int attempt = 0; attempt < 200; ++attempt) {
        Status added = shard_accel->AddShard();
        if (added.ok()) break;
        ASSERT_TRUE(added.retryable()) << added.ToString();
        std::this_thread::yield();
      }
    }
  }

  // Quiesce: drop the faults, then drain replication to both replicas.
  sharded.fault_injector().Reset();
  ASSERT_TRUE(reference.replication().Flush().ok());
  bool drained = false;
  for (int attempt = 0; attempt < 200 && !drained; ++attempt) {
    auto flushed = sharded.replication().Flush();
    ASSERT_TRUE(flushed.ok()) << flushed.status().ToString();
    drained = flushed->misses == 0;
  }
  ASSERT_TRUE(drained);

  std::vector<std::string> tables = {"st"};
  if (made_second_table) tables.push_back("st2");
  for (const std::string& table : tables) {
    const std::string sql = "SELECT * FROM " + table;
    // DB2 ≡ sharded replica ≡ serial 1-shard replica.
    sharded.SetAccelerationMode(federation::AccelerationMode::kNone);
    auto db2 = sharded.Query(sql);
    ASSERT_TRUE(db2.ok()) << db2.status().ToString();
    sharded.SetAccelerationMode(federation::AccelerationMode::kEligible);
    auto sharded_rows = sharded.Query(sql);
    ASSERT_TRUE(sharded_rows.ok()) << sharded_rows.status().ToString();
    reference.SetAccelerationMode(federation::AccelerationMode::kEligible);
    auto serial_rows = reference.Query(sql);
    ASSERT_TRUE(serial_rows.ok()) << serial_rows.status().ToString();
    EXPECT_EQ(CanonicalRows(*db2), CanonicalRows(*sharded_rows))
        << "seed " << GetParam() << " table " << table;
    EXPECT_EQ(CanonicalRows(*serial_rows), CanonicalRows(*sharded_rows))
        << "seed " << GetParam() << " table " << table;
  }
}

// Encoding arm: a randomized stream of DML, GROOM compaction and
// encoding-enable/disable toggles runs against an accelerator with tiny
// zones (every groom re-encodes real data) while 10% of channel and
// accelerator crossings fail retryably. A clean serial reference with
// encoding disabled must end with identical visible contents — zone
// compression may change layout and timing, never results.
TEST_P(ConvergenceFuzz, EncodedStorageConvergesUnderFaultsAndToggles) {
  Rng rng(GetParam() + 21000);

  SystemOptions ref_options;
  ref_options.replication_batch_size = 0;
  ref_options.accelerator.enable_encoding = false;
  IdaaSystem reference(ref_options);

  SystemOptions options;
  options.replication_batch_size = 8;
  options.accelerator.zone_size = 16;
  options.accelerator.num_slices = 2;
  options.accelerator.morsel_size = 32;
  IdaaSystem encoded(options);

  auto both = [&](const std::string& sql) {
    auto ref = reference.Execute(sql);
    ASSERT_TRUE(ref.ok()) << sql << ": " << ref.status().ToString();
    for (int attempt = 0; attempt < 200; ++attempt) {
      auto got = encoded.Execute(sql);
      if (got.ok()) return;
      ASSERT_TRUE(got.status().retryable() ||
                  got.status().code() == StatusCode::kConflict)
          << "terminal error from " << sql << ": " << got.status().ToString();
      std::this_thread::yield();
    }
    FAIL() << "retries exhausted for " << sql;
  };

  both("CREATE TABLE et (id INT NOT NULL, grp INT, v DOUBLE, s VARCHAR)");
  both("CALL SYSPROC.ACCEL_ADD_TABLES('et')");

  FaultSpec spec;
  spec.probability = 0.1;
  encoded.fault_injector().ArmChannel(spec);
  encoded.fault_injector().Arm(FaultInjector::AcceleratorSite("ACCEL1"),
                               spec);

  int next_id = 0;
  for (int op = 0; op < 120; ++op) {
    int kind = static_cast<int>(rng.Uniform(0, 10));
    if (kind <= 4 || next_id == 0) {
      // Runs and small ranges so full zones land on RLE and FOR.
      both(StrFormat("INSERT INTO et VALUES (%d, %d, %d.25, 'tag%d')",
                     next_id, next_id / 8,
                     static_cast<int>(rng.Uniform(0, 12)),
                     next_id / 16));
      ++next_id;
    } else if (kind == 5) {
      both(StrFormat("UPDATE et SET v = v + 1 WHERE grp = %d",
                     static_cast<int>(rng.Uniform(0, 8))));
    } else if (kind == 6) {
      both(StrFormat("DELETE FROM et WHERE id %% 9 = %d",
                     static_cast<int>(rng.Uniform(0, 8))));
    } else if (kind == 7) {
      for (int attempt = 0; attempt < 200; ++attempt) {
        auto flushed = encoded.replication().Flush();
        if (flushed.ok()) break;
        ASSERT_TRUE(flushed.status().retryable())
            << flushed.status().ToString();
      }
      ASSERT_TRUE(reference.replication().Flush().ok());
    } else if (kind == 8) {
      // Compaction mid-stream: encodes full zones, rebuilds zones with
      // reclaimed rows. The reference grooms too (uncompressed rebuild).
      both("CALL SYSPROC.ACCEL_GROOM()");
    } else {
      // Toggle: future grooms stop (or resume) compacting; existing
      // encoded zones must keep serving reads either way.
      encoded.accelerator().SetEncodingEnabled(rng.Uniform(0, 2) < 1);
    }
  }
  encoded.accelerator().SetEncodingEnabled(true);

  // Quiesce: drop the faults, drain replication, then compact once more so
  // the final comparison reads from genuinely encoded zones.
  encoded.fault_injector().Reset();
  ASSERT_TRUE(reference.replication().Flush().ok());
  bool drained = false;
  for (int attempt = 0; attempt < 200 && !drained; ++attempt) {
    auto flushed = encoded.replication().Flush();
    ASSERT_TRUE(flushed.ok()) << flushed.status().ToString();
    drained = flushed->misses == 0;
  }
  ASSERT_TRUE(drained);
  encoded.accelerator().GroomAll();

  for (const char* sql :
       {"SELECT * FROM et",
        "SELECT grp, COUNT(*), SUM(v), MIN(id), MAX(id) FROM et GROUP BY "
        "grp"}) {
    encoded.SetAccelerationMode(federation::AccelerationMode::kNone);
    auto db2 = encoded.Query(sql);
    ASSERT_TRUE(db2.ok()) << db2.status().ToString();
    encoded.SetAccelerationMode(federation::AccelerationMode::kEligible);
    auto enc_rows = encoded.Query(sql);
    ASSERT_TRUE(enc_rows.ok()) << enc_rows.status().ToString();
    reference.SetAccelerationMode(federation::AccelerationMode::kEligible);
    auto ref_rows = reference.Query(sql);
    ASSERT_TRUE(ref_rows.ok()) << ref_rows.status().ToString();
    EXPECT_EQ(CanonicalRows(*db2), CanonicalRows(*enc_rows))
        << "seed " << GetParam() << ": " << sql;
    EXPECT_EQ(CanonicalRows(*ref_rows), CanonicalRows(*enc_rows))
        << "seed " << GetParam() << ": " << sql;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConvergenceFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace idaa
