// CREATE TABLE ... AS SELECT (CTAS) tests: the one-statement ELT stage.

#include <gtest/gtest.h>

#include "idaa/system.h"
#include "sql/parser.h"

namespace idaa {
namespace {

class CtasTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(system_
                    .Execute("CREATE TABLE src (id INT NOT NULL, "
                                "grp VARCHAR, v DOUBLE)")
                    .ok());
    ASSERT_TRUE(system_
                    .Execute("INSERT INTO src VALUES (1, 'a', 1.0), "
                                "(2, 'a', 2.0), (3, 'b', 3.0)")
                    .ok());
    ASSERT_TRUE(
        system_.Execute("CALL SYSPROC.ACCEL_ADD_TABLES('src')").ok());
  }

  IdaaSystem system_;
};

TEST_F(CtasTest, CreatesAotFromQueryOnAccelerator) {
  auto r = system_.Execute(
      "CREATE TABLE totals IN ACCELERATOR AS "
      "SELECT grp, SUM(v) AS total FROM src GROUP BY grp");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows_affected, 2u);
  EXPECT_NE(r->detail.find("CTAS"), std::string::npos);

  auto info = system_.catalog().GetTable("totals");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ((*info)->kind, TableKind::kAcceleratorOnly);
  EXPECT_EQ((*info)->schema.NumColumns(), 2u);
  EXPECT_EQ((*info)->schema.Column(0).name, "GRP");
  EXPECT_EQ((*info)->schema.Column(1).name, "TOTAL");
  EXPECT_EQ((*info)->schema.Column(1).type, DataType::kDouble);

  auto rs = system_.Query("SELECT grp, total FROM totals ORDER BY grp");
  ASSERT_TRUE(rs.ok());
  EXPECT_DOUBLE_EQ(rs->At(0, 1).AsDouble(), 3.0);
  EXPECT_DOUBLE_EQ(rs->At(1, 1).AsDouble(), 3.0);
}

TEST_F(CtasTest, AotCtasMovesNoData) {
  MetricsDelta delta(system_.metrics());
  ASSERT_TRUE(system_
                  .Execute("CREATE TABLE big_ids IN ACCELERATOR AS "
                              "SELECT id, v FROM src WHERE id >= 2")
                  .ok());
  EXPECT_EQ(delta.Delta(metric::kDb2RowsMaterialized), 0u);
  EXPECT_LT(delta.Delta(metric::kFederationBytesToAccel), 500u);
}

TEST_F(CtasTest, Db2Ctas) {
  system_.SetAccelerationMode(federation::AccelerationMode::kNone);
  auto r = system_.Execute(
      "CREATE TABLE copy AS SELECT id, v FROM src WHERE id <= 2");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto info = system_.catalog().GetTable("copy");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ((*info)->kind, TableKind::kDb2Only);
  auto rs = system_.Query("SELECT COUNT(*) FROM copy");
  EXPECT_EQ(rs->At(0, 0).AsInteger(), 2);
}

TEST_F(CtasTest, FailedPopulationRollsBackDdl) {
  // Division by zero during population: the table must not survive.
  auto r = system_.Execute(
      "CREATE TABLE broken IN ACCELERATOR AS SELECT 1 / (id - id) FROM src");
  ASSERT_FALSE(r.ok());
  EXPECT_FALSE(system_.catalog().HasTable("broken"));
  EXPECT_FALSE(system_.accelerator().HasTable("broken"));
}

TEST_F(CtasTest, RequiresSourcePrivileges) {
  system_.SetUser("intruder");
  auto r = system_.Execute(
      "CREATE TABLE steal IN ACCELERATOR AS SELECT * FROM src");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotAuthorized());
  EXPECT_FALSE(system_.catalog().HasTable("steal"));
}

TEST_F(CtasTest, ColumnsAndAsSelectAreExclusive) {
  EXPECT_FALSE(system_
                   .Execute("CREATE TABLE x (a INT) AS SELECT id FROM src")
                   .ok());
  EXPECT_FALSE(system_.Execute("CREATE TABLE x").ok());
}

TEST_F(CtasTest, RoundTripsThroughToSql) {
  auto stmt = sql::ParseStatement(
      "CREATE TABLE t2 IN ACCELERATOR AS SELECT id FROM src WHERE id > 1");
  ASSERT_TRUE(stmt.ok());
  std::string text = (*stmt)->ToSql();
  auto again = sql::ParseStatement(text);
  ASSERT_TRUE(again.ok()) << text;
  EXPECT_EQ((*again)->ToSql(), text);
}

}  // namespace
}  // namespace idaa
