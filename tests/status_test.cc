#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace idaa {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("thing missing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: thing missing");
  EXPECT_TRUE(s.IsNotFound());
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

Result<int> Doubled(int v) {
  IDAA_ASSIGN_OR_RETURN(int x, ParsePositive(v));
  return x * 2;
}

TEST(ResultTest, ValuePath) {
  auto r = Doubled(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, ErrorPath) {
  auto r = Doubled(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace idaa
