// Federation-layer tests: routing decisions, AOT DDL (proxy-only in DB2),
// INSERT data paths and their boundary-crossing byte costs, table
// add/remove procedures.

#include <gtest/gtest.h>

#include "idaa/system.h"

namespace idaa {
namespace {

using federation::AccelerationMode;
using federation::Target;

class FederationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        system_.Execute("CREATE TABLE plain (a INT, b DOUBLE)").ok());
    ASSERT_TRUE(
        system_.Execute("CREATE TABLE repl (a INT, b DOUBLE)").ok());
    ASSERT_TRUE(
        system_
            .Execute("INSERT INTO repl VALUES (1, 1.0), (2, 2.0), (3, 3.0)")
            .ok());
    ASSERT_TRUE(
        system_.Execute("CALL SYSPROC.ACCEL_ADD_TABLES('repl')").ok());
    ASSERT_TRUE(
        system_.Execute("CREATE TABLE aot (a INT, b DOUBLE) IN ACCELERATOR")
            .ok());
  }

  IdaaSystem system_;
};

TEST_F(FederationTest, AotHasProxyButNoDb2Storage) {
  auto info = system_.catalog().GetTable("aot");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ((*info)->kind, TableKind::kAcceleratorOnly);
  // Proxy present in DB2 catalog, storage only on the accelerator.
  EXPECT_FALSE(system_.db2().row_store().HasTable((*info)->table_id));
  EXPECT_TRUE(system_.accelerator().HasTable("aot"));
}

TEST_F(FederationTest, AcceleratedTableExistsOnBothSides) {
  auto info = system_.catalog().GetTable("repl");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ((*info)->kind, TableKind::kAccelerated);
  EXPECT_TRUE(system_.db2().row_store().HasTable((*info)->table_id));
  EXPECT_TRUE(system_.accelerator().HasTable("repl"));
}

TEST_F(FederationTest, AotQueryAlwaysDelegated) {
  system_.SetAccelerationMode(AccelerationMode::kEnable);
  auto r = system_.Execute("SELECT COUNT(*) FROM aot");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->routed_to, Target::kAccelerator);
}

TEST_F(FederationTest, AotWithAccelerationNoneFails) {
  system_.SetAccelerationMode(AccelerationMode::kNone);
  auto r = system_.Execute("SELECT * FROM aot");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kSemanticError);
}

TEST_F(FederationTest, AotJoinedWithDb2OnlyFails) {
  auto r = system_.Execute(
      "SELECT * FROM aot JOIN plain ON aot.a = plain.a");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kSemanticError);
}

TEST_F(FederationTest, AotJoinedWithReplicaRunsOnAccelerator) {
  ASSERT_TRUE(system_.Execute("INSERT INTO aot VALUES (1, 10.0)").ok());
  auto r = system_.Execute(
      "SELECT repl.a, aot.b FROM repl JOIN aot ON repl.a = aot.a");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->routed_to, Target::kAccelerator);
  EXPECT_EQ(r->rows.NumRows(), 1u);
}

TEST_F(FederationTest, Db2OnlyTableStaysOnDb2) {
  auto r = system_.Execute("SELECT COUNT(*) FROM plain");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->routed_to, Target::kDb2);
}

TEST_F(FederationTest, MixedReplicaAndPlainRunsOnDb2) {
  auto r = system_.Execute(
      "SELECT COUNT(*) FROM repl JOIN plain ON repl.a = plain.a");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->routed_to, Target::kDb2);
}

TEST_F(FederationTest, EnableModeUsesHeuristic) {
  system_.SetAccelerationMode(AccelerationMode::kEnable);
  // Short lookup -> DB2.
  auto lookup = system_.Execute("SELECT b FROM repl WHERE a = 1");
  ASSERT_TRUE(lookup.ok());
  EXPECT_EQ(lookup->routed_to, Target::kDb2);
  // Aggregation -> accelerator.
  auto agg = system_.Execute("SELECT SUM(b) FROM repl");
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ(agg->routed_to, Target::kAccelerator);
}

TEST_F(FederationTest, AllModeFailsOnNonAcceleratedReference) {
  system_.SetAccelerationMode(AccelerationMode::kAll);
  auto r = system_.Execute(
      "SELECT COUNT(*) FROM repl JOIN plain ON repl.a = plain.a");
  EXPECT_FALSE(r.ok());
}

TEST_F(FederationTest, InsertSelectAotToAotMovesNoData) {
  ASSERT_TRUE(
      system_.Execute("INSERT INTO aot SELECT a, b FROM repl").ok());
  MetricsDelta delta(system_.metrics());
  ASSERT_TRUE(system_
                  .Execute("CREATE TABLE aot2 (a INT, b DOUBLE) "
                              "IN ACCELERATOR")
                  .ok());
  auto r = system_.Execute(
      "INSERT INTO aot2 SELECT a, b * 2 FROM aot WHERE a >= 2");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->routed_to, Target::kAccelerator);
  EXPECT_EQ(r->rows_affected, 2u);
  // Only statement text crossed the boundary (< 200 bytes), no row data.
  EXPECT_LT(delta.Delta(metric::kFederationBytesToAccel), 400u);
  EXPECT_EQ(delta.Delta(metric::kFederationBytesFromAccel), 0u);
  EXPECT_EQ(delta.Delta(metric::kDb2RowsMaterialized), 0u);
}

TEST_F(FederationTest, InsertSelectDb2ToAotCrossesOnce) {
  MetricsDelta delta(system_.metrics());
  ASSERT_TRUE(system_.Execute("INSERT INTO plain VALUES (7, 7.0)").ok());
  auto r = system_.Execute("INSERT INTO aot SELECT a, b FROM plain");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows_affected, 1u);
  EXPECT_GT(delta.Delta(metric::kFederationBytesToAccel), 0u);
}

TEST_F(FederationTest, InsertSelectAotToDb2Materializes) {
  ASSERT_TRUE(system_.Execute("INSERT INTO aot VALUES (9, 9.0)").ok());
  MetricsDelta delta(system_.metrics());
  auto r = system_.Execute("INSERT INTO plain SELECT a, b FROM aot");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows_affected, 1u);
  // Result crossed accelerator -> DB2 and was materialized in the row store.
  EXPECT_GT(delta.Delta(metric::kFederationBytesFromAccel), 0u);
  EXPECT_EQ(delta.Delta(metric::kDb2RowsMaterialized), 1u);
}

TEST_F(FederationTest, UpdateDeleteOnAotDelegated) {
  ASSERT_TRUE(
      system_.Execute("INSERT INTO aot VALUES (1, 1.0), (2, 2.0)").ok());
  auto up = system_.Execute("UPDATE aot SET b = b + 10 WHERE a = 1");
  ASSERT_TRUE(up.ok()) << up.status().ToString();
  EXPECT_EQ(up->routed_to, Target::kAccelerator);
  EXPECT_EQ(up->rows_affected, 1u);
  auto del = system_.Execute("DELETE FROM aot WHERE a = 2");
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(del->rows_affected, 1u);
  auto rs = system_.Query("SELECT a, b FROM aot");
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->NumRows(), 1u);
  EXPECT_DOUBLE_EQ(rs->At(0, 1).AsDouble(), 11.0);
}

TEST_F(FederationTest, AddTablesLoadsSnapshot) {
  auto rs = system_.Query("SELECT COUNT(*) FROM repl");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->At(0, 0).AsInteger(), 3);
}

TEST_F(FederationTest, AddTablesTwiceFails) {
  auto r = system_.Execute("CALL SYSPROC.ACCEL_ADD_TABLES('repl')");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kAlreadyExists);
}

TEST_F(FederationTest, AddAotFails) {
  EXPECT_FALSE(
      system_.Execute("CALL SYSPROC.ACCEL_ADD_TABLES('aot')").ok());
}

TEST_F(FederationTest, RemoveTablesRevertsToDb2Only) {
  ASSERT_TRUE(
      system_.Execute("CALL SYSPROC.ACCEL_REMOVE_TABLES('repl')").ok());
  auto info = system_.catalog().GetTable("repl");
  EXPECT_EQ((*info)->kind, TableKind::kDb2Only);
  EXPECT_FALSE(system_.accelerator().HasTable("repl"));
  // Data still in DB2.
  auto rs = system_.Query("SELECT COUNT(*) FROM repl");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->At(0, 0).AsInteger(), 3);
}

TEST_F(FederationTest, DropAotRemovesProxyAndStorage) {
  ASSERT_TRUE(system_.Execute("DROP TABLE aot").ok());
  EXPECT_FALSE(system_.catalog().HasTable("aot"));
  EXPECT_FALSE(system_.accelerator().HasTable("aot"));
  EXPECT_FALSE(system_.Execute("SELECT * FROM aot").ok());
}

TEST_F(FederationTest, DropAcceleratedTableCleansBothSides) {
  ASSERT_TRUE(system_.Execute("DROP TABLE repl").ok());
  EXPECT_FALSE(system_.catalog().HasTable("repl"));
  EXPECT_FALSE(system_.accelerator().HasTable("repl"));
}

TEST_F(FederationTest, CreateTableIfNotExistsIdempotent) {
  EXPECT_TRUE(
      system_.Execute("CREATE TABLE IF NOT EXISTS plain (a INT)").ok());
  EXPECT_FALSE(system_.Execute("CREATE TABLE plain (a INT)").ok());
}

TEST_F(FederationTest, DistributeByRecordedForAnyTable) {
  // On a DB2 table the clause is recorded in the catalog and takes effect
  // when the table is accelerated (replica placement); IN ACCELERATOR
  // tables are placed by it immediately.
  ASSERT_TRUE(system_.Execute("CREATE TABLE d (a INT) DISTRIBUTE BY (a)").ok());
  auto db2_info = system_.catalog().GetTable("d");
  ASSERT_TRUE(db2_info.ok());
  EXPECT_EQ((*db2_info)->distribution_column, std::optional<size_t>(0));
  ASSERT_TRUE(system_
                  .Execute("CREATE TABLE d2 (a INT) IN ACCELERATOR "
                              "DISTRIBUTE BY (a)")
                  .ok());
  // An unknown column still fails.
  EXPECT_FALSE(
      system_.Execute("CREATE TABLE d3 (a INT) DISTRIBUTE BY (nope)").ok());
}

TEST_F(FederationTest, GroomProcedure) {
  ASSERT_TRUE(system_.Execute("INSERT INTO aot VALUES (1, 1.0)").ok());
  ASSERT_TRUE(system_.Execute("DELETE FROM aot").ok());
  auto r = system_.Execute("CALL SYSPROC.ACCEL_GROOM()");
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r->detail.find("reclaimed"), std::string::npos);
  auto table = system_.accelerator().GetTable("aot");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->NumVersions(), 0u);
}

TEST_F(FederationTest, UnknownProcedureFails) {
  auto r = system_.Execute("CALL IDAA.NOSUCH('x=y')");
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace idaa
