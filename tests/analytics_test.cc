// Analytics framework tests: algorithm kernels directly, every operator
// end-to-end through CALL, and the multi-stage pipeline runner.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "analytics/apriori.h"
#include "analytics/decision_tree.h"
#include "analytics/kmeans.h"
#include "analytics/linear_regression.h"
#include "analytics/naive_bayes.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "idaa/system.h"

namespace idaa::analytics {
namespace {

// ---------------------------------------------------------------------------
// Algorithm kernels
// ---------------------------------------------------------------------------

TEST(KMeansKernelTest, SeparatesObviousClusters) {
  std::vector<std::vector<double>> points;
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    points.push_back({rng.Gaussian(0, 0.1), rng.Gaussian(0, 0.1)});
    points.push_back({rng.Gaussian(10, 0.1), rng.Gaussian(10, 0.1)});
  }
  KMeansResult result = RunKMeans(points, 2, 50, 7);
  ASSERT_EQ(result.centroids.size(), 2u);
  // Points alternate cluster membership perfectly.
  for (size_t i = 2; i < points.size(); i += 2) {
    EXPECT_EQ(result.assignments[i], result.assignments[0]);
    EXPECT_EQ(result.assignments[i + 1], result.assignments[1]);
  }
  EXPECT_NE(result.assignments[0], result.assignments[1]);
  EXPECT_LT(result.inertia, 10.0);
}

TEST(KMeansKernelTest, Deterministic) {
  std::vector<std::vector<double>> points;
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    points.push_back({rng.UniformDouble(0, 1), rng.UniformDouble(0, 1)});
  }
  KMeansResult a = RunKMeans(points, 5, 20, 9);
  KMeansResult b = RunKMeans(points, 5, 20, 9);
  EXPECT_EQ(a.assignments, b.assignments);
  EXPECT_EQ(a.inertia, b.inertia);
}

TEST(KMeansKernelTest, KLargerThanPointsClamped) {
  std::vector<std::vector<double>> points = {{0.0}, {1.0}};
  KMeansResult result = RunKMeans(points, 10, 5, 1);
  EXPECT_EQ(result.centroids.size(), 2u);
}

TEST(KMeansKernelTest, EmptyInput) {
  KMeansResult result = RunKMeans({}, 3, 5, 1);
  EXPECT_TRUE(result.centroids.empty());
}

TEST(OlsKernelTest, RecoversExactCoefficients) {
  // y = 3 + 2*x1 - 0.5*x2, no noise.
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    double x1 = rng.UniformDouble(-5, 5), x2 = rng.UniformDouble(-5, 5);
    x.push_back({x1, x2});
    y.push_back(3 + 2 * x1 - 0.5 * x2);
  }
  auto result = SolveOls(x, y);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NEAR(result->coefficients[0], 3.0, 1e-9);
  EXPECT_NEAR(result->coefficients[1], 2.0, 1e-9);
  EXPECT_NEAR(result->coefficients[2], -0.5, 1e-9);
  EXPECT_NEAR(result->r2, 1.0, 1e-9);
  EXPECT_NEAR(result->rmse, 0.0, 1e-9);
}

TEST(OlsKernelTest, SingularSystemFails) {
  // Perfectly collinear features.
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 20; ++i) {
    x.push_back({static_cast<double>(i), static_cast<double>(2 * i)});
    y.push_back(i);
  }
  EXPECT_FALSE(SolveOls(x, y).ok());
}

TEST(OlsKernelTest, FewerRowsThanParamsFails) {
  EXPECT_FALSE(SolveOls({{1.0, 2.0}}, {1.0}).ok());
}

TEST(NaiveBayesKernelTest, ClassifiesSeparatedClasses) {
  std::vector<std::vector<double>> x;
  std::vector<std::string> labels;
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    if (i % 2) {
      x.push_back({rng.Gaussian(0, 1)});
      labels.push_back("low");
    } else {
      x.push_back({rng.Gaussian(20, 1)});
      labels.push_back("high");
    }
  }
  auto model = GaussianNbModel::Fit(x, labels);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->Predict({0.5}), "low");
  EXPECT_EQ(model->Predict({19.5}), "high");
  EXPECT_NEAR(model->priors().at("low"), 0.5, 1e-9);
}

TEST(DecisionTreeKernelTest, LearnsAxisAlignedSplit) {
  std::vector<std::vector<double>> x;
  std::vector<std::string> labels;
  for (int i = 0; i < 100; ++i) {
    double v = i / 100.0;
    x.push_back({v});
    labels.push_back(v < 0.5 ? "left" : "right");
  }
  auto model = DecisionTreeModel::Fit(x, labels, 3, 2);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->Predict({0.1}), "left");
  EXPECT_EQ(model->Predict({0.9}), "right");
  EXPECT_LE(model->Depth(), 3u);
}

TEST(DecisionTreeKernelTest, PureInputIsSingleLeaf) {
  std::vector<std::vector<double>> x = {{1.0}, {2.0}, {3.0}};
  std::vector<std::string> labels = {"same", "same", "same"};
  auto model = DecisionTreeModel::Fit(x, labels, 5, 1);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->NumNodes(), 1u);
}

TEST(AprioriKernelTest, FindsFrequentPairs) {
  std::vector<std::set<std::string>> txns = {
      {"beer", "chips"}, {"beer", "chips", "salsa"}, {"beer", "chips"},
      {"milk"},          {"beer"},
  };
  auto itemsets = RunApriori(txns, 0.4, 3);
  // beer: 4/5, chips: 3/5, {beer,chips}: 3/5 all frequent at 0.4.
  bool found_pair = false;
  for (const auto& is : itemsets) {
    if (is.items == std::vector<std::string>{"beer", "chips"}) {
      found_pair = true;
      EXPECT_NEAR(is.support, 0.6, 1e-9);
    }
  }
  EXPECT_TRUE(found_pair);
}

TEST(AprioriKernelTest, MinSupportPrunes) {
  std::vector<std::set<std::string>> txns = {{"a"}, {"b"}, {"a", "b"}};
  auto none = RunApriori(txns, 0.99, 2);
  EXPECT_TRUE(none.empty());
}

// ---------------------------------------------------------------------------
// Operators end-to-end via CALL
// ---------------------------------------------------------------------------

class OperatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(system_
                    .Execute("CREATE TABLE data (x DOUBLE, y DOUBLE, "
                                "cat VARCHAR, label VARCHAR) IN ACCELERATOR")
                    .ok());
    Rng rng(5);
    for (int i = 0; i < 60; ++i) {
      bool big = i % 2 == 0;
      double x = big ? rng.Gaussian(10, 1) : rng.Gaussian(0, 1);
      double y = 2 * x + rng.Gaussian(0, 0.01);
      std::string cat = i % 3 == 0 ? "red" : (i % 3 == 1 ? "green" : "blue");
      std::string label = big ? "big" : "small";
      std::string x_text = i % 15 == 14 ? "NULL" : StrFormat("%.4f", x);
      ASSERT_TRUE(system_
                      .Execute(StrFormat(
                          "INSERT INTO data VALUES (%s, %.4f, '%s', '%s')",
                          x_text.c_str(), y, cat.c_str(), label.c_str()))
                      .ok());
    }
  }

  IdaaSystem system_;
};

TEST_F(OperatorTest, NormalizeZscore) {
  auto r = system_.Execute(
      "CALL IDAA.NORMALIZE('input=data', 'output=norm', 'columns=x,y')");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto rs = system_.Query("SELECT AVG(x), STDDEV(x) FROM norm");
  ASSERT_TRUE(rs.ok());
  EXPECT_NEAR(rs->At(0, 0).AsDouble(), 0.0, 1e-6);
  EXPECT_NEAR(rs->At(0, 1).AsDouble(), 1.0, 1e-6);
}

TEST_F(OperatorTest, NormalizeMinMaxBounds) {
  ASSERT_TRUE(system_
                  .Execute("CALL IDAA.NORMALIZE('input=data', "
                              "'output=norm', 'columns=y', 'method=minmax')")
                  .ok());
  auto rs = system_.Query("SELECT MIN(y), MAX(y) FROM norm");
  EXPECT_NEAR(rs->At(0, 0).AsDouble(), 0.0, 1e-9);
  EXPECT_NEAR(rs->At(0, 1).AsDouble(), 1.0, 1e-9);
}

TEST_F(OperatorTest, NormalizeNonNumericFails) {
  EXPECT_FALSE(system_
                   .Execute("CALL IDAA.NORMALIZE('input=data', "
                               "'output=norm', 'columns=cat')")
                   .ok());
}

TEST_F(OperatorTest, DiscretizeBins) {
  auto r = system_.Execute(
      "CALL IDAA.DISCRETIZE('input=data', 'output=binned', 'column=y', "
      "'bins=4')");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto rs = system_.Query(
      "SELECT MIN(y_bin), MAX(y_bin), COUNT(DISTINCT y_bin) FROM binned");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->At(0, 0).AsInteger(), 0);
  EXPECT_EQ(rs->At(0, 1).AsInteger(), 3);
}

TEST_F(OperatorTest, ImputeFillsNulls) {
  auto r = system_.Execute(
      "CALL IDAA.IMPUTE('input=data', 'output=filled', 'columns=x')");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto rs = system_.Query("SELECT COUNT(*) FROM filled WHERE x IS NULL");
  EXPECT_EQ(rs->At(0, 0).AsInteger(), 0);
  // Row count preserved.
  rs = system_.Query("SELECT COUNT(*) FROM filled");
  EXPECT_EQ(rs->At(0, 0).AsInteger(), 60);
}

TEST_F(OperatorTest, OneHotCreatesIndicators) {
  auto r = system_.Execute(
      "CALL IDAA.ONEHOT('input=data', 'output=encoded', 'column=cat')");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto rs = system_.Query(
      "SELECT SUM(cat_red), SUM(cat_green), SUM(cat_blue) FROM encoded");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->At(0, 0).AsInteger(), 20);
  EXPECT_EQ(rs->At(0, 1).AsInteger(), 20);
  EXPECT_EQ(rs->At(0, 2).AsInteger(), 20);
}

TEST_F(OperatorTest, SampleFraction) {
  auto r = system_.Execute(
      "CALL IDAA.SAMPLE('input=data', 'output=sampled', 'fraction=0.5', "
      "'seed=11')");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto rs = system_.Query("SELECT COUNT(*) FROM sampled");
  int64_t n = rs->At(0, 0).AsInteger();
  EXPECT_GT(n, 15);
  EXPECT_LT(n, 45);
}

TEST_F(OperatorTest, LinRegRecoversSlope) {
  auto r = system_.Execute(
      "CALL IDAA.LINREG('input=data', 'target=y', 'columns=x', "
      "'output=preds')");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Summary rows: INTERCEPT, X, R2, RMSE, ROWS.
  const ResultSet& summary = r->rows;
  ASSERT_GE(summary.NumRows(), 4u);
  double slope = 0, r2 = 0;
  for (const Row& row : summary.rows()) {
    if (row[0].AsVarchar() == "X") slope = row[1].AsDouble();
    if (row[0].AsVarchar() == "R2") r2 = row[1].AsDouble();
  }
  EXPECT_NEAR(slope, 2.0, 0.01);
  EXPECT_GT(r2, 0.999);
  auto rs = system_.Query("SELECT MAX(ABS(residual)) FROM preds");
  ASSERT_TRUE(rs.ok());
  EXPECT_LT(rs->At(0, 0).AsDouble(), 0.1);
}

TEST_F(OperatorTest, NaiveBayesAccuracy) {
  auto r = system_.Execute(
      "CALL IDAA.NAIVEBAYES('input=data', 'label=label', 'columns=x', "
      "'output=nb_preds')");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  double accuracy = 0;
  for (const Row& row : r->rows.rows()) {
    if (row[0].AsVarchar() == "TRAIN_ACCURACY") accuracy = row[1].AsDouble();
  }
  EXPECT_GT(accuracy, 0.95);
}

TEST_F(OperatorTest, DecisionTreeAccuracy) {
  auto r = system_.Execute(
      "CALL IDAA.DECISIONTREE('input=data', 'label=label', 'columns=x,y', "
      "'max_depth=4')");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  double accuracy = 0;
  for (const Row& row : r->rows.rows()) {
    if (row[0].AsVarchar() == "TRAIN_ACCURACY") accuracy = row[1].AsDouble();
  }
  EXPECT_GT(accuracy, 0.95);
}

TEST_F(OperatorTest, KMeansCentroidsOutput) {
  auto r = system_.Execute(
      "CALL IDAA.KMEANS('input=data', 'output=clusters', 'columns=x', "
      "'k=2', 'centroids_output=centers', 'seed=3')");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto rs = system_.Query("SELECT COUNT(*) FROM centers");
  EXPECT_EQ(rs->At(0, 0).AsInteger(), 2);
}

TEST_F(OperatorTest, AprioriOverAotTable) {
  ASSERT_TRUE(system_
                  .Execute("CREATE TABLE basket (tid INT, item VARCHAR) "
                              "IN ACCELERATOR")
                  .ok());
  ASSERT_TRUE(system_
                  .Execute("INSERT INTO basket VALUES (1,'a'),(1,'b'),"
                              "(2,'a'),(2,'b'),(3,'a'),(4,'c')")
                  .ok());
  auto r = system_.Execute(
      "CALL IDAA.APRIORI('input=basket', 'tid_column=tid', "
      "'item_column=item', 'min_support=0.5', 'output=freq')");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto rs = system_.Query(
      "SELECT itemset, support FROM freq ORDER BY itemset");
  ASSERT_TRUE(rs.ok());
  // a (3/4), a,b (2/4), b (2/4).
  ASSERT_EQ(rs->NumRows(), 3u);
  EXPECT_EQ(rs->At(0, 0).AsVarchar(), "a");
  EXPECT_EQ(rs->At(1, 0).AsVarchar(), "a,b");
}

TEST_F(OperatorTest, OperatorRerunReplacesOutput) {
  ASSERT_TRUE(system_
                  .Execute("CALL IDAA.SAMPLE('input=data', "
                              "'output=s1', 'fraction=1.0')")
                  .ok());
  ASSERT_TRUE(system_
                  .Execute("CALL IDAA.SAMPLE('input=data', "
                              "'output=s1', 'fraction=1.0')")
                  .ok());
  auto rs = system_.Query("SELECT COUNT(*) FROM s1");
  EXPECT_EQ(rs->At(0, 0).AsInteger(), 60);  // not 120: recreated
}

TEST_F(OperatorTest, MissingParamFails) {
  auto r = system_.Execute("CALL IDAA.KMEANS('input=data')");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(OperatorTest, MalformedParamFails) {
  EXPECT_FALSE(system_.Execute("CALL IDAA.KMEANS('no_equals_sign')").ok());
}

TEST_F(OperatorTest, InputMustBeOnAccelerator) {
  ASSERT_TRUE(system_.Execute("CREATE TABLE db2only (x DOUBLE)").ok());
  auto r = system_.Execute(
      "CALL IDAA.SAMPLE('input=db2only', 'output=out', 'fraction=0.5')");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("ACCEL_ADD_TABLES"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Pipeline runner
// ---------------------------------------------------------------------------

TEST_F(OperatorTest, MultiStagePipelineAllOnAccelerator) {
  Pipeline pipeline("churn-prep");
  pipeline
      .AddStage("filter",
                "CREATE TABLE p1 (x DOUBLE, y DOUBLE) IN ACCELERATOR")
      .AddStage("load p1",
                "INSERT INTO p1 SELECT x, y FROM data WHERE x IS NOT NULL")
      .AddStage("aggregate",
                "CREATE TABLE p2 (bucket INTEGER, avg_y DOUBLE) "
                "IN ACCELERATOR")
      .AddStage("load p2",
                "INSERT INTO p2 SELECT CAST(x AS INTEGER) % 4, AVG(y) "
                "FROM p1 GROUP BY CAST(x AS INTEGER) % 4");
  auto report = pipeline.Run(system_.MakeSqlExecutor());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->stages.size(), 4u);
  // The two INSERT ... SELECT stages ran on the accelerator.
  EXPECT_TRUE(report->stages[1].on_accelerator);
  EXPECT_TRUE(report->stages[3].on_accelerator);
  auto rs = system_.Query("SELECT COUNT(*) FROM p2");
  ASSERT_TRUE(rs.ok());
  EXPECT_GT(rs->At(0, 0).AsInteger(), 0);
}

TEST_F(OperatorTest, PipelineStopsOnFailure) {
  Pipeline pipeline("bad");
  pipeline.AddStage("ok", "CREATE TABLE okt (x INT) IN ACCELERATOR")
      .AddStage("fails", "INSERT INTO nosuch VALUES (1)")
      .AddStage("never", "INSERT INTO okt VALUES (1)");
  auto report = pipeline.Run(system_.MakeSqlExecutor());
  ASSERT_FALSE(report.ok());
  // Third stage never ran.
  auto rs = system_.Query("SELECT COUNT(*) FROM okt");
  EXPECT_EQ(rs->At(0, 0).AsInteger(), 0);
}

}  // namespace
}  // namespace idaa::analytics
