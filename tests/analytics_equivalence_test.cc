// Numerical-equivalence and determinism suite for the morsel-parallel
// analytics operators (the batch path):
//  1. Per operator: parallel-batch results match the serial row path —
//     bit-exact for integer/categorical outputs (DISCRETIZE, ONEHOT,
//     SAMPLE, SUMMARIZE, APRIORI, DECISIONTREE), within epsilon for
//     floating-point model state (KMEANS, LINREG, NAIVEBAYES, NORMALIZE,
//     IMPUTE means).
//  2. Determinism: the batch path produces bit-identical results (%.17g)
//     regardless of the accelerator's thread count, because the chunked
//     partial states are fixed-size and merged in ascending order.
//  3. Scan-pin regression: an open AnalyticsInput holds the table's groom
//     pin, so GROOM cannot reclaim or rebuild rows mid-model-fit.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "analytics/batch_input.h"
#include "analytics/operator.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "idaa/system.h"

namespace idaa {
namespace {

SystemOptions AnalyticsOptions(size_t threads) {
  SystemOptions options;
  options.accelerator.num_threads = threads;
  options.accelerator.num_slices = 4;
  options.accelerator.zone_size = 256;
  options.accelerator.morsel_size = 512;  // many morsels even on small data
  return options;
}

/// Deterministic feature table: three well-separated Gaussian clusters (so
/// k-means assignments are robust to epsilon-level centroid differences), a
/// linear y = 2x + 3 relation for LINREG, categorical columns for the
/// classifiers, and NULLs sprinkled into x.
void SeedFeatures(IdaaSystem& system, size_t rows) {
  ASSERT_TRUE(system
                  .Execute("CREATE TABLE feats (id INT NOT NULL, x DOUBLE, "
                              "y DOUBLE, z DOUBLE, cat VARCHAR, "
                              "label VARCHAR)")
                  .ok());
  Schema schema({{"ID", DataType::kInteger, false},
                 {"X", DataType::kDouble, true},
                 {"Y", DataType::kDouble, true},
                 {"Z", DataType::kDouble, true},
                 {"CAT", DataType::kVarchar, true},
                 {"LABEL", DataType::kVarchar, true}});
  static const char* kCats[] = {"RED", "GREEN", "BLUE"};
  static const char* kLabels[] = {"C0", "C1", "C2"};
  Rng rng(11);
  loader::GeneratorSource source(schema, rows, [&rng](size_t i) {
    size_t cluster = i % 3;
    double base = static_cast<double>(cluster) * 40.0;
    double xv = rng.Gaussian(base, 1.0);
    double yv = 2.0 * xv + 3.0 + rng.Gaussian(0, 0.5);
    double zv = rng.Gaussian(base, 1.0);
    return Row{Value::Integer(static_cast<int64_t>(i)),
               i % 17 == 13 ? Value::Null() : Value::Double(xv),
               Value::Double(yv), Value::Double(zv),
               Value::Varchar(kCats[i % 3]), Value::Varchar(kLabels[cluster])};
  });
  loader::LoadOptions options;
  options.batch_size = 4096;
  auto report = system.loader().Load("feats", &source, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(system.Execute("CALL SYSPROC.ACCEL_ADD_TABLES('feats')").ok());
}

/// Market-basket table for APRIORI: three items per transaction drawn from
/// a fixed correlated pattern, with occasional NULL items.
void SeedBasket(IdaaSystem& system, size_t tids) {
  ASSERT_TRUE(
      system
          .Execute("CREATE TABLE basket (tid INT NOT NULL, item VARCHAR)")
          .ok());
  Schema schema({{"TID", DataType::kInteger, false},
                 {"ITEM", DataType::kVarchar, true}});
  static const char* kItems[] = {"BREAD", "MILK", "BEER", "DIAPERS", "EGGS"};
  loader::GeneratorSource source(schema, tids * 3, [](size_t i) {
    size_t tid = i / 3;
    size_t j = i % 3;
    return Row{Value::Integer(static_cast<int64_t>(tid)),
               (tid * 3 + j) % 23 == 7
                   ? Value::Null()
                   : Value::Varchar(kItems[(tid + j * j) % 5])};
  });
  auto report = system.loader().Load("basket", &source);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(
      system.Execute("CALL SYSPROC.ACCEL_ADD_TABLES('basket')").ok());
}

std::string CanonicalValue(const Value& v) {
  return v.is_double() ? StrFormat("%.17g", v.AsDouble()) : v.ToString();
}

std::string CanonicalRow(const Row& row) {
  std::string line;
  for (const Value& v : row) {
    line += CanonicalValue(v);
    line += "|";
  }
  return line;
}

/// SELECT row order is not contractual across scan paths, so output tables
/// are compared as canonically-sorted row lists. Every table here either
/// has a unique leading id or bit-identical values in both runs, so the
/// sort pairs up the same logical rows.
std::vector<Row> SortedRows(const ResultSet& rs) {
  std::vector<Row> rows = rs.rows();
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return CanonicalRow(a) < CanonicalRow(b);
  });
  return rows;
}

struct OpCapture {
  std::vector<Row> summary;                 // CALL result, in emitted order
  std::vector<std::vector<Row>> outputs;    // sorted rows per output AOT
};

/// Run one CALL with the accelerator's batch path toggled as requested,
/// then read the output AOTs back (always on the default path, so the CALL
/// toggle is the only variable).
OpCapture RunOp(IdaaSystem& system, bool batch_path, const std::string& call,
                const std::vector<std::string>& outputs) {
  system.accelerator().SetBatchPathEnabled(batch_path);
  auto rs = system.Query(call);
  system.accelerator().SetBatchPathEnabled(true);
  EXPECT_TRUE(rs.ok()) << call << ": " << rs.status().ToString();
  OpCapture cap;
  if (!rs.ok()) return cap;
  cap.summary = rs->rows();
  for (const std::string& table : outputs) {
    auto out = system.Query("SELECT * FROM " + table);
    EXPECT_TRUE(out.ok()) << table << ": " << out.status().ToString();
    cap.outputs.push_back(out.ok() ? SortedRows(*out) : std::vector<Row>{});
  }
  return cap;
}

void ExpectRowsNear(const std::vector<Row>& batch,
                    const std::vector<Row>& serial, double rel_tol,
                    const std::string& what) {
  ASSERT_EQ(batch.size(), serial.size()) << what;
  for (size_t r = 0; r < batch.size(); ++r) {
    ASSERT_EQ(batch[r].size(), serial[r].size()) << what << " row " << r;
    for (size_t c = 0; c < batch[r].size(); ++c) {
      const Value& a = batch[r][c];
      const Value& b = serial[r][c];
      if (a.is_double() && b.is_double()) {
        double scale = std::max(
            1.0, std::max(std::abs(a.AsDouble()), std::abs(b.AsDouble())));
        EXPECT_NEAR(a.AsDouble(), b.AsDouble(), rel_tol * scale)
            << what << " row " << r << " col " << c;
      } else {
        EXPECT_EQ(a.ToString(), b.ToString())
            << what << " row " << r << " col " << c;
      }
    }
  }
}

void ExpectRowsExact(const std::vector<Row>& batch,
                     const std::vector<Row>& serial, const std::string& what) {
  ASSERT_EQ(batch.size(), serial.size()) << what;
  for (size_t r = 0; r < batch.size(); ++r) {
    EXPECT_EQ(CanonicalRow(batch[r]), CanonicalRow(serial[r]))
        << what << " row " << r;
  }
}

void ExpectCapturesNear(const OpCapture& batch, const OpCapture& serial,
                        double rel_tol, const std::string& what) {
  ExpectRowsNear(batch.summary, serial.summary, rel_tol, what + " summary");
  ASSERT_EQ(batch.outputs.size(), serial.outputs.size());
  for (size_t t = 0; t < batch.outputs.size(); ++t) {
    ExpectRowsNear(batch.outputs[t], serial.outputs[t], rel_tol,
                   what + " output " + std::to_string(t));
  }
}

void ExpectCapturesExact(const OpCapture& batch, const OpCapture& serial,
                         const std::string& what) {
  ExpectRowsExact(batch.summary, serial.summary, what + " summary");
  ASSERT_EQ(batch.outputs.size(), serial.outputs.size());
  for (size_t t = 0; t < batch.outputs.size(); ++t) {
    ExpectRowsExact(batch.outputs[t], serial.outputs[t],
                    what + " output " + std::to_string(t));
  }
}

constexpr double kRelTol = 1e-6;
constexpr size_t kRows = 5000;  // > one 4096-row chunk: real partial merges

class AnalyticsEquivalenceTest : public ::testing::Test {
 protected:
  AnalyticsEquivalenceTest() : system_(AnalyticsOptions(4)) {}

  void SetUp() override { SeedFeatures(system_, kRows); }

  /// Batch-vs-serial differential run of one CALL.
  void Compare(const std::string& call, const std::vector<std::string>& outs,
               bool exact) {
    OpCapture batch = RunOp(system_, /*batch_path=*/true, call, outs);
    OpCapture serial = RunOp(system_, /*batch_path=*/false, call, outs);
    if (exact) {
      ExpectCapturesExact(batch, serial, call);
    } else {
      ExpectCapturesNear(batch, serial, kRelTol, call);
    }
  }

  IdaaSystem system_;
};

TEST_F(AnalyticsEquivalenceTest, KMeansMatchesSerial) {
  // Integer parts of the summary (k, iterations, rows, skipped) and the
  // full assignments AOT must be identical; inertia is epsilon-compared.
  Compare("CALL IDAA.KMEANS('input=feats', 'output=feats_k', "
          "'centroids_output=feats_c', 'columns=x,y,z', 'k=3', 'seed=5')",
          {"feats_k"}, /*exact=*/false);
}

TEST_F(AnalyticsEquivalenceTest, KMeansAssignmentsExact) {
  // With well-separated clusters, the assignments AOT (input features +
  // CLUSTER) is bit-identical: extraction is exact and no point sits near
  // a centroid boundary.
  OpCapture batch = RunOp(
      system_, true,
      "CALL IDAA.KMEANS('input=feats', 'output=feats_k', 'columns=x,y,z', "
      "'k=3', 'seed=5')",
      {"feats_k"});
  OpCapture serial = RunOp(
      system_, false,
      "CALL IDAA.KMEANS('input=feats', 'output=feats_k', 'columns=x,y,z', "
      "'k=3', 'seed=5')",
      {"feats_k"});
  ASSERT_EQ(batch.outputs.size(), 1u);
  ASSERT_EQ(serial.outputs.size(), 1u);
  ExpectRowsExact(batch.outputs[0], serial.outputs[0], "kmeans assignments");
}

TEST_F(AnalyticsEquivalenceTest, LinregMatchesSerial) {
  Compare("CALL IDAA.LINREG('input=feats', 'target=y', 'columns=x', "
          "'output=feats_r')",
          {"feats_r"}, /*exact=*/false);
}

TEST_F(AnalyticsEquivalenceTest, NaiveBayesMatchesSerial) {
  Compare("CALL IDAA.NAIVEBAYES('input=feats', 'label=label', "
          "'columns=x,z', 'output=feats_nb')",
          {"feats_nb"}, /*exact=*/false);
}

TEST_F(AnalyticsEquivalenceTest, DecisionTreeMatchesSerial) {
  // The parallel split search reduces per-feature bests in ascending
  // feature order with a strict improvement test, replicating the serial
  // tie-breaking — the whole run is exact.
  Compare("CALL IDAA.DECISIONTREE('input=feats', 'label=label', "
          "'columns=x,z', 'max_depth=4', 'output=feats_dt')",
          {"feats_dt"}, /*exact=*/true);
}

TEST_F(AnalyticsEquivalenceTest, AprioriMatchesSerial) {
  SeedBasket(system_, 300);
  // Support counts are integers and the per-tid grouping is set-union:
  // exact on both the summary and the itemsets AOT.
  Compare("CALL IDAA.APRIORI('input=basket', 'tid_column=tid', "
          "'item_column=item', 'min_support=0.2', 'max_size=3', "
          "'output=basket_fi')",
          {"basket_fi"}, /*exact=*/true);
}

TEST_F(AnalyticsEquivalenceTest, NormalizeZscoreMatchesSerial) {
  Compare("CALL IDAA.NORMALIZE('input=feats', 'output=feats_n', "
          "'columns=x,y,z')",
          {"feats_n"}, /*exact=*/false);
}

TEST_F(AnalyticsEquivalenceTest, NormalizeMinMaxMatchesSerial) {
  Compare("CALL IDAA.NORMALIZE('input=feats', 'output=feats_m', "
          "'columns=x,y', 'method=minmax')",
          {"feats_m"}, /*exact=*/false);
}

TEST_F(AnalyticsEquivalenceTest, DiscretizeMatchesSerial) {
  // Bin boundaries derive from a chunked min/max (comparisons commute):
  // bit-exact.
  Compare("CALL IDAA.DISCRETIZE('input=feats', 'output=feats_d', "
          "'column=y', 'bins=8')",
          {"feats_d"}, /*exact=*/true);
}

TEST_F(AnalyticsEquivalenceTest, ImputeMatchesSerial) {
  Compare("CALL IDAA.IMPUTE('input=feats', 'output=feats_i', "
          "'columns=x,cat')",
          {"feats_i"}, /*exact=*/false);
}

TEST_F(AnalyticsEquivalenceTest, OneHotMatchesSerial) {
  Compare("CALL IDAA.ONEHOT('input=feats', 'output=feats_o', "
          "'column=cat')",
          {"feats_o"}, /*exact=*/true);
}

TEST_F(AnalyticsEquivalenceTest, SampleMatchesSerial) {
  // The Bernoulli draw stream is kept sequential in both paths, so the
  // sampled subset is identical row for row.
  Compare("CALL IDAA.SAMPLE('input=feats', 'output=feats_s', "
          "'fraction=0.25', 'seed=7')",
          {"feats_s"}, /*exact=*/true);
}

TEST_F(AnalyticsEquivalenceTest, SummarizeMatchesSerial) {
  // Per-column audits run the same serial accumulation inside each column
  // task: exact.
  Compare("CALL IDAA.SUMMARIZE('input=feats', 'output=feats_sum')",
          {"feats_sum"}, /*exact=*/true);
}

TEST_F(AnalyticsEquivalenceTest, NonNumericErrorsSurviveBatchPath) {
  // Error surface parity: a VARCHAR feature column must produce the serial
  // path's error text with the batch path enabled.
  for (bool batch : {true, false}) {
    system_.accelerator().SetBatchPathEnabled(batch);
    auto rs = system_.Query(
        "CALL IDAA.KMEANS('input=feats', 'output=feats_k', "
        "'columns=x,cat', 'k=2')");
    EXPECT_FALSE(rs.ok());
    EXPECT_NE(rs.status().message().find("not numeric"), std::string::npos)
        << rs.status().ToString();
  }
  system_.accelerator().SetBatchPathEnabled(true);
}

// -- determinism across thread counts ---------------------------------------

/// Full-pipeline canonical capture on a fresh system with `threads` worker
/// threads: every summary row and every output AOT rendered at full double
/// precision. The batch path's chunked partial merges are fixed-order, so
/// these strings must be bit-identical for any thread count.
std::vector<std::string> RunPipelineCanonical(size_t threads) {
  IdaaSystem system(AnalyticsOptions(threads));
  SeedFeatures(system, kRows);
  SeedBasket(system, 300);
  std::vector<std::string> lines;
  auto run = [&](const std::string& call,
                 const std::vector<std::string>& outputs) {
    auto rs = system.Query(call);
    ASSERT_TRUE(rs.ok()) << call << ": " << rs.status().ToString();
    lines.push_back("== " + call);
    for (const Row& row : rs->rows()) lines.push_back(CanonicalRow(row));
    for (const std::string& table : outputs) {
      auto out = system.Query("SELECT * FROM " + table);
      ASSERT_TRUE(out.ok()) << table << ": " << out.status().ToString();
      lines.push_back("-- " + table);
      for (const Row& row : SortedRows(*out)) {
        lines.push_back(CanonicalRow(row));
      }
    }
  };
  run("CALL IDAA.NORMALIZE('input=feats', 'output=feats_n', "
      "'columns=x,y,z')",
      {"feats_n"});
  run("CALL IDAA.KMEANS('input=feats_n', 'output=feats_k', "
      "'centroids_output=feats_c', 'columns=x,y,z', 'k=3', 'seed=5')",
      {"feats_k", "feats_c"});
  run("CALL IDAA.LINREG('input=feats', 'target=y', 'columns=x', "
      "'output=feats_r')",
      {"feats_r"});
  run("CALL IDAA.NAIVEBAYES('input=feats', 'label=label', 'columns=x,z', "
      "'output=feats_nb')",
      {"feats_nb"});
  run("CALL IDAA.DECISIONTREE('input=feats', 'label=label', 'columns=x,z', "
      "'max_depth=4', 'output=feats_dt')",
      {"feats_dt"});
  run("CALL IDAA.APRIORI('input=basket', 'tid_column=tid', "
      "'item_column=item', 'min_support=0.2', 'output=basket_fi')",
      {"basket_fi"});
  run("CALL IDAA.SUMMARIZE('input=feats_n')", {});
  return lines;
}

TEST(AnalyticsDeterminismTest, BitIdenticalAcrossThreadCounts) {
  std::vector<std::string> one = RunPipelineCanonical(1);
  std::vector<std::string> two = RunPipelineCanonical(2);
  std::vector<std::string> eight = RunPipelineCanonical(8);
  ASSERT_FALSE(one.empty());
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
}

// -- scan-pin regression (GROOM vs in-flight analytics) ----------------------

TEST(AnalyticsPinTest, OpenInputBlocksGroomUntilReleased) {
  IdaaSystem system(AnalyticsOptions(4));
  SeedFeatures(system, 1200);
  // Make reclaimable garbage: committed deletes older than any snapshot.
  ASSERT_TRUE(system.Execute("DELETE FROM feats WHERE id % 3 = 0").ok());
  ASSERT_TRUE(system.replication().Flush().ok());

  ASSERT_TRUE(system.Begin().ok());
  analytics::AnalyticsContext ctx(&system.catalog(), &system.accelerator(),
                                  &system.txn_manager(),
                                  system.current_transaction(),
                                  &system.metrics());
  auto in = ctx.OpenInput("feats");
  ASSERT_TRUE(in.ok()) << in.status().ToString();

  size_t versions_before =
      (*system.accelerator().GetTable("feats"))->NumVersions();
  std::atomic<bool> groom_done{false};
  std::thread groomer([&system, &groom_done] {
    system.accelerator().GroomAll();
    groom_done.store(true);
  });
  // One-sided check: the pin must hold GROOM off. (If grooming wrongly
  // proceeded, it finishes in microseconds and this fails deterministically;
  // if it is correctly blocked, slow scheduling only ever passes.)
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(groom_done.load())
      << "GROOM rebuilt slices while an analytics input held the scan pin";
  EXPECT_EQ((*system.accelerator().GetTable("feats"))->NumVersions(),
            versions_before);

  // The pinned input still sees exactly the snapshot's live rows.
  std::vector<Row> rows = (*in)->GatherRows({});
  EXPECT_EQ(rows.size(), 1200u - 400u);  // ids 0,3,6,... deleted

  in->reset();  // release the pin: groom may now reclaim
  groomer.join();
  EXPECT_TRUE(groom_done.load());
  ASSERT_TRUE(system.Commit().ok());
  EXPECT_LT((*system.accelerator().GetTable("feats"))->NumVersions(),
            versions_before);
}

TEST(AnalyticsPinTest, GroomRacesLongKMeansCall) {
  // End-to-end: GROOM hammers the accelerator while KMEANS CALLs run. The
  // fits must succeed, see a stable row count, and produce the same model
  // every repetition (the input can never shrink mid-extraction).
  IdaaSystem system(AnalyticsOptions(4));
  SeedFeatures(system, kRows);
  ASSERT_TRUE(system.Execute("DELETE FROM feats WHERE id % 5 = 0").ok());
  ASSERT_TRUE(system.replication().Flush().ok());
  auto live = system.Query("SELECT COUNT(*) FROM feats WHERE x IS NOT NULL");
  ASSERT_TRUE(live.ok());
  const int64_t expected_rows = live->At(0, 0).AsInteger();

  std::atomic<bool> stop{false};
  std::thread groomer([&system, &stop] {
    while (!stop.load()) {
      system.accelerator().GroomAll();
      std::this_thread::yield();
    }
  });

  std::string first_summary;
  for (int rep = 0; rep < 4; ++rep) {
    auto rs = system.Query(
        "CALL IDAA.KMEANS('input=feats', 'output=feats_k', "
        "'columns=x,y,z', 'k=3', 'max_iters=40', 'seed=5')");
    ASSERT_TRUE(rs.ok()) << rs.status().ToString();
    ASSERT_EQ(rs->NumRows(), 1u);
    EXPECT_EQ(rs->At(0, 3).AsInteger(), expected_rows) << "rep " << rep;
    std::string canonical = CanonicalRow(rs->rows()[0]);
    if (rep == 0) {
      first_summary = canonical;
    } else {
      EXPECT_EQ(canonical, first_summary) << "rep " << rep;
    }
  }
  stop.store(true);
  groomer.join();
}

}  // namespace
}  // namespace idaa
