// TransactionManager (MVCC visibility oracle) and LockManager tests.

#include <gtest/gtest.h>

#include <thread>

#include "txn/lock_manager.h"
#include "txn/transaction_manager.h"

namespace idaa {
namespace {

TEST(TransactionManagerTest, BeginAssignsIncreasingIds) {
  TransactionManager tm;
  Transaction* a = tm.Begin();
  Transaction* b = tm.Begin();
  EXPECT_LT(a->id(), b->id());
  EXPECT_EQ(tm.NumActive(), 2u);
}

TEST(TransactionManagerTest, CommitPublishesCsn) {
  TransactionManager tm;
  Transaction* a = tm.Begin();
  EXPECT_EQ(tm.CommitCsnOf(a->id()), kInfiniteCsn);
  ASSERT_TRUE(tm.Commit(a).ok());
  EXPECT_EQ(tm.CommitCsnOf(a->id()), 1u);
  EXPECT_EQ(tm.LastCommittedCsn(), 1u);
  EXPECT_EQ(tm.StateOf(a->id()), TxnState::kCommitted);
}

TEST(TransactionManagerTest, DoubleCommitFails) {
  TransactionManager tm;
  Transaction* a = tm.Begin();
  ASSERT_TRUE(tm.Commit(a).ok());
  EXPECT_FALSE(tm.Commit(a).ok());
  EXPECT_FALSE(tm.Abort(a).ok());
}

TEST(TransactionManagerTest, AbortRunsUndoInReverse) {
  TransactionManager tm;
  Transaction* a = tm.Begin();
  std::vector<int> order;
  a->AddUndo([&] { order.push_back(1); });
  a->AddUndo([&] { order.push_back(2); });
  ASSERT_TRUE(tm.Abort(a).ok());
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
  EXPECT_EQ(tm.StateOf(a->id()), TxnState::kAborted);
}

TEST(TransactionManagerTest, CommitListenerFires) {
  TransactionManager tm;
  int fired = 0;
  tm.AddCommitListener([&](const Transaction&) { ++fired; });
  Transaction* a = tm.Begin();
  Transaction* b = tm.Begin();
  ASSERT_TRUE(tm.Commit(a).ok());
  ASSERT_TRUE(tm.Abort(b).ok());  // abort does not fire
  EXPECT_EQ(fired, 1);
}

// -- visibility: the exact semantics the paper requires -----------------------

TEST(VisibilityTest, OwnUncommittedChangesVisible) {
  TransactionManager tm;
  Transaction* t = tm.Begin();
  // Row created by t itself, not deleted.
  EXPECT_TRUE(tm.IsVisible(t->id(), kInvalidTxnId, t->id(), t->snapshot_csn()));
  // Row created and deleted by t itself.
  EXPECT_FALSE(tm.IsVisible(t->id(), t->id(), t->id(), t->snapshot_csn()));
}

TEST(VisibilityTest, OtherUncommittedInvisible) {
  TransactionManager tm;
  Transaction* writer = tm.Begin();
  Transaction* reader = tm.Begin();
  EXPECT_FALSE(tm.IsVisible(writer->id(), kInvalidTxnId, reader->id(),
                            reader->snapshot_csn()));
}

TEST(VisibilityTest, SnapshotIsolationAgainstLaterCommits) {
  TransactionManager tm;
  Transaction* reader = tm.Begin();  // snapshot = 0
  Transaction* writer = tm.Begin();
  ASSERT_TRUE(tm.Commit(writer).ok());  // csn 1 > reader snapshot
  EXPECT_FALSE(tm.IsVisible(writer->id(), kInvalidTxnId, reader->id(),
                            reader->snapshot_csn()));
  // A new reader sees it.
  Transaction* reader2 = tm.Begin();
  EXPECT_TRUE(tm.IsVisible(writer->id(), kInvalidTxnId, reader2->id(),
                           reader2->snapshot_csn()));
}

TEST(VisibilityTest, CommittedDeleteHidesRow) {
  TransactionManager tm;
  Transaction* creator = tm.Begin();
  ASSERT_TRUE(tm.Commit(creator).ok());
  Transaction* deleter = tm.Begin();
  ASSERT_TRUE(tm.Commit(deleter).ok());
  Transaction* reader = tm.Begin();
  EXPECT_FALSE(tm.IsVisible(creator->id(), deleter->id(), reader->id(),
                            reader->snapshot_csn()));
}

TEST(VisibilityTest, DeleteAfterSnapshotStillVisible) {
  TransactionManager tm;
  Transaction* creator = tm.Begin();
  ASSERT_TRUE(tm.Commit(creator).ok());
  Transaction* reader = tm.Begin();  // snapshot includes creator only
  Transaction* deleter = tm.Begin();
  ASSERT_TRUE(tm.Commit(deleter).ok());
  // The delete committed after the reader's snapshot: row still visible.
  EXPECT_TRUE(tm.IsVisible(creator->id(), deleter->id(), reader->id(),
                           reader->snapshot_csn()));
}

TEST(VisibilityTest, AbortedCreatorInvisible) {
  TransactionManager tm;
  Transaction* creator = tm.Begin();
  ASSERT_TRUE(tm.Abort(creator).ok());
  Transaction* reader = tm.Begin();
  EXPECT_FALSE(tm.IsVisible(creator->id(), kInvalidTxnId, reader->id(),
                            reader->snapshot_csn()));
}

TEST(VisibilityTest, AbortedDeleterIgnored) {
  TransactionManager tm;
  Transaction* creator = tm.Begin();
  ASSERT_TRUE(tm.Commit(creator).ok());
  Transaction* deleter = tm.Begin();
  ASSERT_TRUE(tm.Abort(deleter).ok());
  Transaction* reader = tm.Begin();
  EXPECT_TRUE(tm.IsVisible(creator->id(), deleter->id(), reader->id(),
                           reader->snapshot_csn()));
}

TEST(VisibilityTest, RefreshSnapshotSeesNewCommits) {
  TransactionManager tm;
  Transaction* reader = tm.Begin();
  Transaction* writer = tm.Begin();
  ASSERT_TRUE(tm.Commit(writer).ok());
  EXPECT_FALSE(tm.IsVisible(writer->id(), kInvalidTxnId, reader->id(),
                            reader->snapshot_csn()));
  tm.RefreshSnapshot(reader);
  EXPECT_TRUE(tm.IsVisible(writer->id(), kInvalidTxnId, reader->id(),
                           reader->snapshot_csn()));
}

TEST(TransactionManagerTest, OldestActiveSnapshot) {
  TransactionManager tm;
  Transaction* old_txn = tm.Begin();  // snapshot 0
  Transaction* w = tm.Begin();
  ASSERT_TRUE(tm.Commit(w).ok());
  Transaction* young = tm.Begin();  // snapshot 1
  EXPECT_EQ(tm.OldestActiveSnapshot(), 0u);
  ASSERT_TRUE(tm.Commit(old_txn).ok());
  EXPECT_EQ(tm.OldestActiveSnapshot(), young->snapshot_csn());
  ASSERT_TRUE(tm.Commit(young).ok());
  EXPECT_EQ(tm.OldestActiveSnapshot(), tm.LastCommittedCsn());
}

// -- locks ---------------------------------------------------------------------

TEST(LockManagerTest, SharedLocksCoexist) {
  LockManager locks(std::chrono::milliseconds(10));
  EXPECT_TRUE(locks.Acquire(1, 100, LockMode::kShared).ok());
  EXPECT_TRUE(locks.Acquire(2, 100, LockMode::kShared).ok());
  EXPECT_EQ(locks.NumHeld(1), 1u);
}

TEST(LockManagerTest, ExclusiveBlocksOthers) {
  LockManager locks(std::chrono::milliseconds(10));
  EXPECT_TRUE(locks.Acquire(1, 100, LockMode::kExclusive).ok());
  EXPECT_TRUE(locks.Acquire(2, 100, LockMode::kShared).IsConflict());
  EXPECT_TRUE(
      locks.Acquire(2, 100, LockMode::kExclusive).IsConflict());
  // Same txn re-acquires freely.
  EXPECT_TRUE(locks.Acquire(1, 100, LockMode::kShared).ok());
  EXPECT_TRUE(locks.Acquire(1, 100, LockMode::kExclusive).ok());
}

TEST(LockManagerTest, SharedBlocksExclusiveFromOther) {
  LockManager locks(std::chrono::milliseconds(10));
  EXPECT_TRUE(locks.Acquire(1, 100, LockMode::kShared).ok());
  EXPECT_TRUE(
      locks.Acquire(2, 100, LockMode::kExclusive).IsConflict());
}

TEST(LockManagerTest, UpgradeWhenSoleHolder) {
  LockManager locks(std::chrono::milliseconds(10));
  EXPECT_TRUE(locks.Acquire(1, 100, LockMode::kShared).ok());
  EXPECT_TRUE(locks.Acquire(1, 100, LockMode::kExclusive).ok());
  EXPECT_TRUE(locks.Acquire(2, 100, LockMode::kShared).IsConflict());
}

TEST(LockManagerTest, ReleaseSharedKeepsExclusive) {
  LockManager locks(std::chrono::milliseconds(10));
  EXPECT_TRUE(locks.Acquire(1, 100, LockMode::kShared).ok());
  EXPECT_TRUE(locks.Acquire(1, 200, LockMode::kExclusive).ok());
  locks.ReleaseShared(1);
  EXPECT_EQ(locks.NumHeld(1), 1u);  // only table 200 (X) remains
  EXPECT_TRUE(locks.Acquire(2, 100, LockMode::kExclusive).ok());
}

TEST(LockManagerTest, ReleaseAllFreesWaiters) {
  LockManager locks(std::chrono::milliseconds(500));
  ASSERT_TRUE(locks.Acquire(1, 100, LockMode::kExclusive).ok());
  std::thread waiter([&] {
    // Blocks until txn 1 releases.
    EXPECT_TRUE(locks.Acquire(2, 100, LockMode::kExclusive).ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  locks.ReleaseAll(1);
  waiter.join();
  EXPECT_EQ(locks.NumHeld(2), 1u);
}

TEST(LockManagerTest, DifferentTablesIndependent) {
  LockManager locks(std::chrono::milliseconds(10));
  EXPECT_TRUE(locks.Acquire(1, 100, LockMode::kExclusive).ok());
  EXPECT_TRUE(locks.Acquire(2, 200, LockMode::kExclusive).ok());
}

}  // namespace
}  // namespace idaa
