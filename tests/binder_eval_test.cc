// Binder (name resolution, aggregation, pushdown) and expression
// evaluation (three-valued logic, functions) tests.

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "sql/binder.h"
#include "sql/expression_eval.h"
#include "sql/parser.h"

namespace idaa::sql {
namespace {

class BinderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TableInfo t;
    t.name = "T";
    t.schema = Schema({{"ID", DataType::kInteger, false},
                       {"NAME", DataType::kVarchar, true},
                       {"AMOUNT", DataType::kDouble, true}});
    ASSERT_TRUE(catalog_.CreateTable(t).ok());
    TableInfo u;
    u.name = "U";
    u.schema = Schema({{"ID", DataType::kInteger, false},
                       {"TAG", DataType::kVarchar, true}});
    ASSERT_TRUE(catalog_.CreateTable(u).ok());
  }

  Result<BoundSelect> Bind(const std::string& sql) {
    auto stmt = ParseStatement(sql);
    if (!stmt.ok()) return stmt.status();
    Binder binder(catalog_);
    return binder.BindSelect(*static_cast<SelectStatement*>(stmt->get()));
  }

  Catalog catalog_;
};

TEST_F(BinderTest, ResolvesColumns) {
  auto plan = Bind("SELECT id, name FROM t");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->select_exprs[0]->index, 0u);
  EXPECT_EQ(plan->select_exprs[1]->index, 1u);
  EXPECT_EQ(plan->output_schema.Column(0).name, "ID");
  EXPECT_EQ(plan->output_schema.Column(1).type, DataType::kVarchar);
}

TEST_F(BinderTest, UnknownColumnFails) {
  auto plan = Bind("SELECT nosuch FROM t");
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kSemanticError);
}

TEST_F(BinderTest, UnknownTableFails) {
  EXPECT_FALSE(Bind("SELECT 1 FROM nosuch").ok());
}

TEST_F(BinderTest, AmbiguousColumnFails) {
  auto plan = Bind("SELECT id FROM t JOIN u ON t.id = u.id");
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("ambiguous"), std::string::npos);
}

TEST_F(BinderTest, QualifiedColumnsInJoin) {
  auto plan = Bind("SELECT t.id, u.id, u.tag FROM t JOIN u ON t.id = u.id");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->select_exprs[0]->index, 0u);
  EXPECT_EQ(plan->select_exprs[1]->index, 3u);  // u starts at offset 3
  EXPECT_EQ(plan->select_exprs[2]->index, 4u);
}

TEST_F(BinderTest, AliasResolution) {
  auto plan = Bind("SELECT x.id FROM t AS x");
  ASSERT_TRUE(plan.ok());
  // Original name no longer visible under alias.
  EXPECT_FALSE(Bind("SELECT t.id FROM t AS x").ok());
}

TEST_F(BinderTest, StarExpansion) {
  auto plan = Bind("SELECT * FROM t JOIN u ON t.id = u.id");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->select_exprs.size(), 5u);
  EXPECT_EQ(plan->output_schema.NumColumns(), 5u);
}

TEST_F(BinderTest, QualifiedStar) {
  auto plan = Bind("SELECT u.* FROM t JOIN u ON t.id = u.id");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->select_exprs.size(), 2u);
}

TEST_F(BinderTest, SingleTablePredicatePushdown) {
  auto plan = Bind(
      "SELECT t.id FROM t JOIN u ON t.id = u.id "
      "WHERE t.amount > 5 AND u.tag = 'x' AND t.id + u.id > 3");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // amount>5 pushed to t, tag='x' pushed to u, cross-table conjunct residual.
  ASSERT_NE(plan->tables[0].scan_predicate, nullptr);
  ASSERT_NE(plan->tables[1].scan_predicate, nullptr);
  ASSERT_NE(plan->where, nullptr);
  // Pushed predicates are rebased to table-local column indexes.
  EXPECT_EQ(plan->tables[1].scan_predicate->children[0]->index, 1u);  // TAG
}

TEST_F(BinderTest, NoPushdownWithLeftJoin) {
  auto plan = Bind(
      "SELECT t.id FROM t LEFT JOIN u ON t.id = u.id WHERE t.amount > 5");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->tables[0].scan_predicate, nullptr);
  ASSERT_NE(plan->where, nullptr);
}

TEST_F(BinderTest, AggregationGroupKeySlots) {
  auto plan = Bind(
      "SELECT name, COUNT(*), SUM(amount) + 1 FROM t GROUP BY name");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE(plan->has_aggregation);
  EXPECT_EQ(plan->group_keys.size(), 1u);
  EXPECT_EQ(plan->aggregates.size(), 2u);
  // First select item references key slot 0.
  EXPECT_EQ(plan->select_exprs[0]->kind, BoundExprKind::kSlotRef);
  EXPECT_EQ(plan->select_exprs[0]->index, 0u);
}

TEST_F(BinderTest, DuplicateAggregatesShareSlot) {
  auto plan = Bind("SELECT SUM(amount), SUM(amount) * 2 FROM t");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->aggregates.size(), 1u);
}

TEST_F(BinderTest, UngroupedColumnFails) {
  auto plan = Bind("SELECT name, COUNT(*) FROM t");
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kSemanticError);
}

TEST_F(BinderTest, GroupByExpressionMatching) {
  auto plan = Bind("SELECT id % 10, COUNT(*) FROM t GROUP BY id % 10");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->select_exprs[0]->kind, BoundExprKind::kSlotRef);
}

TEST_F(BinderTest, AggregateInWhereFails) {
  EXPECT_FALSE(Bind("SELECT id FROM t WHERE SUM(amount) > 5").ok());
}

TEST_F(BinderTest, NestedAggregateFails) {
  EXPECT_FALSE(Bind("SELECT SUM(COUNT(*)) FROM t GROUP BY id").ok());
}

TEST_F(BinderTest, HavingWithoutGroupingFails) {
  EXPECT_FALSE(Bind("SELECT id FROM t HAVING id > 1").ok());
}

TEST_F(BinderTest, OrderByPosition) {
  auto plan = Bind("SELECT name, id FROM t ORDER BY 2");
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->order_by.size(), 1u);
  EXPECT_EQ(plan->order_by[0].expr->index, 0u);  // ID column index
}

TEST_F(BinderTest, OrderByPositionOutOfRangeFails) {
  EXPECT_FALSE(Bind("SELECT name FROM t ORDER BY 3").ok());
}

TEST_F(BinderTest, OrderByAlias) {
  auto plan = Bind("SELECT amount * 2 AS double_amt FROM t ORDER BY double_amt");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
}

TEST_F(BinderTest, InsertValuesCoercion) {
  auto stmt = ParseStatement("INSERT INTO t VALUES (1, 'a', 2)");
  ASSERT_TRUE(stmt.ok());
  Binder binder(catalog_);
  auto bound = binder.BindInsert(*static_cast<InsertStatement*>(stmt->get()));
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  // INTEGER literal 2 coerced to DOUBLE column.
  EXPECT_TRUE(bound->values_rows[0][2].is_double());
}

TEST_F(BinderTest, InsertColumnListMapsAndNullsRest) {
  auto stmt = ParseStatement("INSERT INTO t (amount, id) VALUES (1.5, 7)");
  ASSERT_TRUE(stmt.ok());
  Binder binder(catalog_);
  auto bound = binder.BindInsert(*static_cast<InsertStatement*>(stmt->get()));
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ(bound->values_rows[0][0].AsInteger(), 7);
  EXPECT_TRUE(bound->values_rows[0][1].is_null());
  EXPECT_DOUBLE_EQ(bound->values_rows[0][2].AsDouble(), 1.5);
}

TEST_F(BinderTest, InsertNotNullViolationFails) {
  auto stmt = ParseStatement("INSERT INTO t (name) VALUES ('x')");
  ASSERT_TRUE(stmt.ok());
  Binder binder(catalog_);
  auto bound = binder.BindInsert(*static_cast<InsertStatement*>(stmt->get()));
  EXPECT_FALSE(bound.ok());  // ID is NOT NULL
}

TEST_F(BinderTest, InsertSelectArityMismatchFails) {
  auto stmt = ParseStatement("INSERT INTO t SELECT id FROM u");
  ASSERT_TRUE(stmt.ok());
  Binder binder(catalog_);
  EXPECT_FALSE(
      binder.BindInsert(*static_cast<InsertStatement*>(stmt->get())).ok());
}

// ---------------------------------------------------------------------------
// Expression evaluation: parameterized over (expression, expected) pairs.
// ---------------------------------------------------------------------------

struct EvalCase {
  const char* expr;
  Value expected;
};

class EvalTest : public ::testing::TestWithParam<EvalCase> {};

TEST_P(EvalTest, ConstantExpression) {
  auto parsed = ParseExpression(GetParam().expr);
  ASSERT_TRUE(parsed.ok()) << GetParam().expr;
  Catalog empty;
  Binder binder(empty);
  auto bound = binder.BindScalar(**parsed, Schema{}, "none");
  ASSERT_TRUE(bound.ok()) << GetParam().expr << ": "
                          << bound.status().ToString();
  auto value = EvalExpr(**bound, Row{});
  ASSERT_TRUE(value.ok()) << GetParam().expr << ": "
                          << value.status().ToString();
  if (GetParam().expected.is_double()) {
    ASSERT_TRUE(value->is_double()) << GetParam().expr << " -> "
                                    << value->ToString();
    EXPECT_NEAR(value->AsDouble(), GetParam().expected.AsDouble(), 1e-9)
        << GetParam().expr;
  } else {
    EXPECT_EQ(*value, GetParam().expected)
        << GetParam().expr << " -> " << value->ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Arithmetic, EvalTest,
    ::testing::Values(
        EvalCase{"1 + 2", Value::Integer(3)},
        EvalCase{"7 / 2", Value::Integer(3)},  // integer division
        EvalCase{"7.0 / 2", Value::Double(3.5)},
        EvalCase{"7 % 3", Value::Integer(1)},
        EvalCase{"-(3 + 4)", Value::Integer(-7)},
        EvalCase{"2 * 3 + 4", Value::Integer(10)},
        EvalCase{"1 + NULL", Value::Null()},
        EvalCase{"'a' || 'b' || 'c'", Value::Varchar("abc")},
        EvalCase{"1 || 'x'", Value::Varchar("1x")}));

INSTANTIATE_TEST_SUITE_P(
    ThreeValuedLogic, EvalTest,
    ::testing::Values(
        EvalCase{"TRUE AND FALSE", Value::Boolean(false)},
        EvalCase{"TRUE AND NULL", Value::Null()},
        EvalCase{"FALSE AND NULL", Value::Boolean(false)},
        EvalCase{"TRUE OR NULL", Value::Boolean(true)},
        EvalCase{"FALSE OR NULL", Value::Null()},
        EvalCase{"NOT NULL", Value::Null()},
        EvalCase{"NOT FALSE", Value::Boolean(true)},
        EvalCase{"NULL = NULL", Value::Null()},
        EvalCase{"1 = NULL", Value::Null()},
        EvalCase{"NULL IS NULL", Value::Boolean(true)},
        EvalCase{"1 IS NOT NULL", Value::Boolean(true)},
        EvalCase{"1 IN (1, 2)", Value::Boolean(true)},
        EvalCase{"3 IN (1, 2)", Value::Boolean(false)},
        EvalCase{"3 IN (1, NULL)", Value::Null()},
        EvalCase{"3 NOT IN (1, 2)", Value::Boolean(true)},
        EvalCase{"2 BETWEEN 1 AND 3", Value::Boolean(true)},
        EvalCase{"0 BETWEEN 1 AND 3", Value::Boolean(false)},
        EvalCase{"0 NOT BETWEEN 1 AND 3", Value::Boolean(true)},
        EvalCase{"NULL BETWEEN 1 AND 3", Value::Null()},
        EvalCase{"'abc' LIKE 'a%'", Value::Boolean(true)},
        EvalCase{"'abc' NOT LIKE 'b%'", Value::Boolean(true)}));

INSTANTIATE_TEST_SUITE_P(
    Functions, EvalTest,
    ::testing::Values(
        EvalCase{"ABS(-5)", Value::Integer(5)},
        EvalCase{"ABS(-5.5)", Value::Double(5.5)},
        EvalCase{"SIGN(-3)", Value::Integer(-1)},
        EvalCase{"SQRT(16.0)", Value::Double(4.0)},
        EvalCase{"POWER(2, 10)", Value::Double(1024.0)},
        EvalCase{"FLOOR(2.7)", Value::Double(2.0)},
        EvalCase{"CEIL(2.1)", Value::Double(3.0)},
        EvalCase{"ROUND(2.345, 2)", Value::Double(2.35)},
        EvalCase{"ROUND(7)", Value::Integer(7)},
        EvalCase{"MOD(10, 3)", Value::Integer(1)},
        EvalCase{"LEAST(3, 1, 2)", Value::Integer(1)},
        EvalCase{"GREATEST(3, 1, 2)", Value::Integer(3)},
        EvalCase{"UPPER('abc')", Value::Varchar("ABC")},
        EvalCase{"LOWER('ABC')", Value::Varchar("abc")},
        EvalCase{"LENGTH('hello')", Value::Integer(5)},
        EvalCase{"TRIM('  x ')", Value::Varchar("x")},
        EvalCase{"SUBSTR('hello', 2, 3)", Value::Varchar("ell")},
        EvalCase{"SUBSTR('hello', 4)", Value::Varchar("lo")},
        EvalCase{"SUBSTR('hi', 9)", Value::Varchar("")},
        EvalCase{"CONCAT('a', 1, 'b')", Value::Varchar("a1b")},
        EvalCase{"REPLACE('aXbX', 'X', 'y')", Value::Varchar("ayby")},
        EvalCase{"COALESCE(NULL, NULL, 7)", Value::Integer(7)},
        EvalCase{"COALESCE(NULL, NULL)", Value::Null()},
        EvalCase{"NULLIF(1, 1)", Value::Null()},
        EvalCase{"NULLIF(1, 2)", Value::Integer(1)},
        EvalCase{"UPPER(NULL)", Value::Null()},
        EvalCase{"YEAR(DATE '2016-03-15')", Value::Integer(2016)},
        EvalCase{"MONTH(DATE '2016-03-15')", Value::Integer(3)},
        EvalCase{"DAY(DATE '2016-03-15')", Value::Integer(15)},
        EvalCase{"CAST('12' AS INTEGER) + 1", Value::Integer(13)},
        EvalCase{"CASE WHEN 1 > 2 THEN 'a' WHEN 2 > 1 THEN 'b' END",
                 Value::Varchar("b")},
        EvalCase{"CASE WHEN 1 > 2 THEN 'a' END", Value::Null()},
        EvalCase{"DATE '2016-03-15' + 1 = DATE '2016-03-16'",
                 Value::Boolean(true)},
        EvalCase{"DATE '2016-03-16' - DATE '2016-03-15'", Value::Integer(1)}));

TEST(EvalErrorTest, DivisionByZero) {
  Catalog empty;
  Binder binder(empty);
  auto parsed = ParseExpression("1 / 0");
  auto bound = binder.BindScalar(**parsed, Schema{}, "none");
  ASSERT_TRUE(bound.ok());
  EXPECT_FALSE(EvalExpr(**bound, Row{}).ok());
}

TEST(EvalErrorTest, UnknownFunction) {
  Catalog empty;
  Binder binder(empty);
  auto parsed = ParseExpression("FROBNICATE(1)");
  auto bound = binder.BindScalar(**parsed, Schema{}, "none");
  ASSERT_TRUE(bound.ok());  // resolved lazily
  EXPECT_FALSE(EvalExpr(**bound, Row{}).ok());
}

TEST(AggregateAccumulatorTest, SumAvgMinMax) {
  BoundAggregate agg;
  agg.func = AggFunc::kSum;
  agg.result_type = DataType::kInteger;
  AggregateAccumulator sum(agg);
  sum.Accumulate(Value::Integer(1));
  sum.Accumulate(Value::Integer(2));
  sum.Accumulate(Value::Null());
  EXPECT_EQ(sum.Finalize().AsInteger(), 3);

  agg.func = AggFunc::kAvg;
  AggregateAccumulator avg(agg);
  avg.Accumulate(Value::Integer(1));
  avg.Accumulate(Value::Integer(2));
  EXPECT_DOUBLE_EQ(avg.Finalize().AsDouble(), 1.5);

  agg.func = AggFunc::kMin;
  AggregateAccumulator min(agg);
  min.Accumulate(Value::Integer(5));
  min.Accumulate(Value::Integer(3));
  EXPECT_EQ(min.Finalize().AsInteger(), 3);
}

TEST(AggregateAccumulatorTest, EmptyInputSemantics) {
  BoundAggregate agg;
  agg.func = AggFunc::kSum;
  AggregateAccumulator sum(agg);
  EXPECT_TRUE(sum.Finalize().is_null());

  agg.func = AggFunc::kCount;
  AggregateAccumulator count(agg);
  EXPECT_EQ(count.Finalize().AsInteger(), 0);
}

TEST(AggregateAccumulatorTest, CountDistinct) {
  BoundAggregate agg;
  agg.func = AggFunc::kCount;
  agg.distinct = true;
  AggregateAccumulator count(agg);
  count.Accumulate(Value::Integer(1));
  count.Accumulate(Value::Integer(1));
  count.Accumulate(Value::Integer(2));
  count.Accumulate(Value::Null());
  EXPECT_EQ(count.Finalize().AsInteger(), 2);
}

TEST(AggregateAccumulatorTest, StddevVariance) {
  BoundAggregate agg;
  agg.func = AggFunc::kVariance;
  AggregateAccumulator var(agg);
  for (int v : {2, 4, 4, 4, 5, 5, 7, 9}) var.Accumulate(Value::Integer(v));
  EXPECT_NEAR(var.Finalize().AsDouble(), 4.0, 1e-9);

  agg.func = AggFunc::kStddev;
  AggregateAccumulator sd(agg);
  for (int v : {2, 4, 4, 4, 5, 5, 7, 9}) sd.Accumulate(Value::Integer(v));
  EXPECT_NEAR(sd.Finalize().AsDouble(), 2.0, 1e-9);
}

}  // namespace
}  // namespace idaa::sql
