// Workload-management tests: admission control (slots, queue, priority,
// shedding), the plan cache through the Connection front door, the
// replication-aware result cache with precise invalidation, and the
// prepared-statement API. The convergence fuzz at the bottom hammers the
// result cache with concurrent DML + replication + faults and asserts zero
// stale reads against an uncached reference session.

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injector.h"
#include "common/rng.h"
#include "federation/wlm.h"
#include "idaa/system.h"

namespace idaa {
namespace {

using federation::AdmissionController;
using federation::Priority;
using federation::WlmOptions;

// ---------------------------------------------------------------------------
// AdmissionController
// ---------------------------------------------------------------------------

TEST(WlmAdmissionTest, GrantsUpToTotalSlotsWithoutQueuing) {
  WlmOptions opts;
  opts.total_slots = 3;
  MetricsRegistry metrics;
  HistogramRegistry histos;
  AdmissionController ac(opts, &metrics, &histos);
  std::vector<AdmissionController::Ticket> tickets;
  for (int i = 0; i < 3; ++i) {
    auto t = ac.Admit("a", Priority::kInteractive, 0);
    ASSERT_TRUE(t.ok());
    tickets.push_back(*t);
  }
  EXPECT_EQ(ac.stats().in_use, 3u);
  EXPECT_EQ(ac.stats().queued, 0u);
  for (const auto& t : tickets) ac.Release(t);
  EXPECT_EQ(ac.stats().in_use, 0u);
}

TEST(WlmAdmissionTest, QueueOverflowShedsWithRetryableUnavailable) {
  WlmOptions opts;
  opts.total_slots = 1;
  opts.max_queue_depth = 0;  // no waiting allowed at all
  MetricsRegistry metrics;
  HistogramRegistry histos;
  AdmissionController ac(opts, &metrics, &histos);
  auto held = ac.Admit("a", Priority::kInteractive, 0);
  ASSERT_TRUE(held.ok());
  auto shed = ac.Admit("a", Priority::kInteractive, 0);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(shed.status().retryable());
  EXPECT_EQ(ac.stats().shed_queue_full, 1u);
  EXPECT_EQ(metrics.Get(metric::kWlmShedQueueFull), 1);
  ac.Release(*held);
}

TEST(WlmAdmissionTest, DeadlineExpiryShedsWithRetryableTimeout) {
  WlmOptions opts;
  opts.total_slots = 1;
  MetricsRegistry metrics;
  HistogramRegistry histos;
  AdmissionController ac(opts, &metrics, &histos);
  auto held = ac.Admit("a", Priority::kInteractive, 0);
  ASSERT_TRUE(held.ok());
  auto shed = ac.Admit("a", Priority::kInteractive, /*deadline_us=*/2000);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kTimeout);
  EXPECT_TRUE(shed.status().retryable());
  EXPECT_EQ(ac.stats().shed_deadline, 1u);
  ac.Release(*held);
  // Slot free again: same request now succeeds immediately.
  auto ok = ac.Admit("a", Priority::kInteractive, 2000);
  ASSERT_TRUE(ok.ok());
  ac.Release(*ok);
}

TEST(WlmAdmissionTest, PerTenantCapIsEnforcedWhileOthersProceed) {
  WlmOptions opts;
  opts.total_slots = 4;
  opts.per_tenant_slots = 1;
  MetricsRegistry metrics;
  HistogramRegistry histos;
  AdmissionController ac(opts, &metrics, &histos);
  auto a1 = ac.Admit("a", Priority::kInteractive, 0);
  ASSERT_TRUE(a1.ok());
  // Tenant a is at its cap: a second statement times out in the queue...
  auto a2 = ac.Admit("a", Priority::kInteractive, 2000);
  EXPECT_FALSE(a2.ok());
  // ...while tenant b sails through.
  auto b1 = ac.Admit("b", Priority::kInteractive, 2000);
  ASSERT_TRUE(b1.ok());
  ac.Release(*a1);
  ac.Release(*b1);
}

TEST(WlmAdmissionTest, InteractiveIsGrantedBeforeWaitingBatch) {
  WlmOptions opts;
  opts.total_slots = 1;
  MetricsRegistry metrics;
  HistogramRegistry histos;
  AdmissionController ac(opts, &metrics, &histos);
  auto held = ac.Admit("a", Priority::kInteractive, 0);
  ASSERT_TRUE(held.ok());

  std::atomic<int> order{0};
  std::atomic<int> batch_rank{-1};
  std::atomic<int> interactive_rank{-1};
  std::thread batch([&] {
    auto t = ac.Admit("a", Priority::kBatch, 2'000'000);
    ASSERT_TRUE(t.ok());
    batch_rank = order.fetch_add(1);
    ac.Release(*t);
  });
  // Make sure the batch statement is queued before the interactive arrives.
  while (ac.stats().waiting == 0) std::this_thread::yield();
  std::thread interactive([&] {
    auto t = ac.Admit("a", Priority::kInteractive, 2'000'000);
    ASSERT_TRUE(t.ok());
    interactive_rank = order.fetch_add(1);
    // Hold briefly so the ranks are unambiguous.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ac.Release(*t);
  });
  while (ac.stats().waiting < 2) std::this_thread::yield();
  ac.Release(*held);
  batch.join();
  interactive.join();
  EXPECT_LT(interactive_rank.load(), batch_rank.load());
}

TEST(WlmAdmissionTest, DisabledControllerGrantsImmediately) {
  WlmOptions opts;
  opts.enabled = false;
  opts.total_slots = 1;
  MetricsRegistry metrics;
  HistogramRegistry histos;
  AdmissionController ac(opts, &metrics, &histos);
  std::vector<AdmissionController::Ticket> tickets;
  for (int i = 0; i < 10; ++i) {
    auto t = ac.Admit("a", Priority::kBatch, 0);
    ASSERT_TRUE(t.ok());
    tickets.push_back(*t);
  }
  for (const auto& t : tickets) ac.Release(t);
}

// ---------------------------------------------------------------------------
// Plan cache through the Connection front door
// ---------------------------------------------------------------------------

TEST(PlanCacheTest, RepeatedStatementShapeHitsTheCache) {
  IdaaSystem system;
  ASSERT_TRUE(system.Execute("CREATE TABLE t (a INT, b INT)").ok());
  ASSERT_TRUE(system.Execute("INSERT INTO t VALUES (1, 10), (2, 20)").ok());

  auto first = system.Execute("SELECT b FROM t WHERE a = 1");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->plan_cache, "miss");
  // Different literal, same shape: served from the cached template.
  auto second = system.Execute("SELECT b FROM t WHERE a = 2");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->plan_cache, "hit");
  ASSERT_EQ(second->rows.NumRows(), 1u);
  EXPECT_EQ(second->rows.At(0, 0).AsInteger(), 20);
  EXPECT_GT(system.metrics().Get(metric::kPlanCacheHits), 0);

  // Opting out bypasses (and does not pollute) the cache.
  federation::ExecOptions opts;
  opts.use_plan_cache = false;
  auto bypass = system.Execute("SELECT b FROM t WHERE a = 1", opts);
  ASSERT_TRUE(bypass.ok());
  EXPECT_EQ(bypass->plan_cache, "bypass");
}

TEST(PlanCacheTest, ExecuteSqlShimSharesTheCacheWithExecute) {
  IdaaSystem system;
  ASSERT_TRUE(system.ExecuteSql("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(system.ExecuteSql("INSERT INTO t VALUES (1), (2), (3)").ok());
  ASSERT_TRUE(system.ExecuteSql("SELECT a FROM t WHERE a = 1").ok());
  auto hit = system.Execute("SELECT a FROM t WHERE a = 3");
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit->plan_cache, "hit");
  ASSERT_EQ(hit->rows.NumRows(), 1u);
  EXPECT_EQ(hit->rows.At(0, 0).AsInteger(), 3);
}

TEST(PlanCacheTest, AdHocStatementWithMarkerIsRejected) {
  IdaaSystem system;
  ASSERT_TRUE(system.Execute("CREATE TABLE t (a INT)").ok());
  auto r = system.Execute("SELECT a FROM t WHERE a = ?");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Prepared statements
// ---------------------------------------------------------------------------

TEST(PreparedStatementTest, BindAndExecuteRepeatedly) {
  IdaaSystem system;
  ASSERT_TRUE(system.Execute("CREATE TABLE t (a INT, s VARCHAR)").ok());
  ASSERT_TRUE(
      system.Execute("INSERT INTO t VALUES (1, 'one'), (2, 'two')").ok());
  auto prepared = system.Prepare("SELECT s FROM t WHERE a = ?");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  EXPECT_EQ(prepared->num_params(), 1u);
  auto r1 = prepared->Execute({Value::Integer(1)});
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  ASSERT_EQ(r1->rows.NumRows(), 1u);
  EXPECT_EQ(r1->rows.At(0, 0).AsVarchar(), "one");
  EXPECT_EQ(r1->plan_cache, "hit");
  auto r2 = prepared->Execute({Value::Integer(2)});
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->rows.At(0, 0).AsVarchar(), "two");
}

TEST(PreparedStatementTest, ParamCountMismatchFailsCleanly) {
  IdaaSystem system;
  ASSERT_TRUE(system.Execute("CREATE TABLE t (a INT, b INT)").ok());
  auto prepared = system.Prepare("SELECT a FROM t WHERE a = ? AND b = ?");
  ASSERT_TRUE(prepared.ok());
  EXPECT_EQ(prepared->num_params(), 2u);
  EXPECT_FALSE(prepared->Bind({Value::Integer(1)}).ok());
  // Execute without any binding is also rejected.
  auto unbound = prepared->Execute();
  EXPECT_FALSE(unbound.ok());
  EXPECT_TRUE(
      prepared->Execute({Value::Integer(1), Value::Integer(2)}).ok());
}

TEST(PreparedStatementTest, MarkerInsideStringLiteralIsNotAParam) {
  IdaaSystem system;
  ASSERT_TRUE(system.Execute("CREATE TABLE t (s VARCHAR)").ok());
  ASSERT_TRUE(system.Execute("INSERT INTO t VALUES ('what?')").ok());
  auto prepared = system.Prepare("SELECT s FROM t WHERE s = 'what?'");
  ASSERT_TRUE(prepared.ok());
  EXPECT_EQ(prepared->num_params(), 0u);
  auto r = prepared->Execute();
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.NumRows(), 1u);
}

TEST(PreparedStatementTest, NegativeAndMixedParams) {
  IdaaSystem system;
  ASSERT_TRUE(system.Execute("CREATE TABLE t (a INT, b DOUBLE)").ok());
  auto ins = system.Prepare("INSERT INTO t VALUES (?, ?)");
  ASSERT_TRUE(ins.ok());
  ASSERT_TRUE(ins->Execute({Value::Integer(-5), Value::Double(2.5)}).ok());
  ASSERT_TRUE(ins->Execute({Value::Integer(7), Value::Double(-0.5)}).ok());
  auto rs = system.Query("SELECT a FROM t WHERE a < 0");
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->NumRows(), 1u);
  EXPECT_EQ(rs->At(0, 0).AsInteger(), -5);
}

TEST(PreparedStatementTest, NonCacheableKindsStillPrepareAndExecute) {
  IdaaSystem system;
  auto ddl = system.Prepare("CREATE TABLE t (a INT)");
  ASSERT_TRUE(ddl.ok());
  EXPECT_EQ(ddl->num_params(), 0u);
  ASSERT_TRUE(ddl->Execute().ok());
  ASSERT_TRUE(system.Execute("INSERT INTO t VALUES (1)").ok());
  auto rs = system.Query("SELECT a FROM t");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->NumRows(), 1u);
}

TEST(PreparedStatementTest, CachedMatchesFreshUnderConcurrentGroom) {
  // Differential check: a prepared/cached SELECT must agree with an
  // uncached fresh parse while GROOM reorganizes the table underneath.
  SystemOptions options;
  options.accelerator.zone_size = 64;
  IdaaSystem system(options);
  ASSERT_TRUE(system.Execute("CREATE TABLE g (id INT, v INT)").ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(system
                    .Execute("INSERT INTO g VALUES (" + std::to_string(i) +
                             ", " + std::to_string(i * 3) + ")")
                    .ok());
  }
  ASSERT_TRUE(system.Execute("CALL SYSPROC.ACCEL_ADD_TABLES('g')").ok());

  auto prepared = system.Prepare("SELECT v FROM g WHERE id = ?");
  ASSERT_TRUE(prepared.ok());
  std::atomic<bool> stop{false};
  std::thread groomer([&] {
    auto conn = system.NewConnection();
    while (!stop) {
      (void)conn->Execute("CALL SYSPROC.ACCEL_GROOM()");
      std::this_thread::yield();
    }
  });
  federation::ExecOptions raw;
  raw.use_plan_cache = false;
  raw.use_result_cache = false;
  auto ref_conn = system.NewConnection();
  for (int round = 0; round < 50; ++round) {
    int id = round * 4 % 200;
    auto cached = prepared->Execute({Value::Integer(id)});
    ASSERT_TRUE(cached.ok()) << cached.status().ToString();
    auto fresh = ref_conn->Execute(
        "SELECT v FROM g WHERE id = " + std::to_string(id), raw);
    ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
    ASSERT_EQ(cached->rows.NumRows(), fresh->rows.NumRows());
    ASSERT_EQ(cached->rows.NumRows(), 1u);
    EXPECT_EQ(cached->rows.At(0, 0).AsInteger(),
              fresh->rows.At(0, 0).AsInteger());
  }
  stop = true;
  groomer.join();
}

// ---------------------------------------------------------------------------
// Result cache
// ---------------------------------------------------------------------------

TEST(ResultCacheTest, SecondIdenticalSelectIsServedFromCache) {
  IdaaSystem system;
  ASSERT_TRUE(system.Execute("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(system.Execute("INSERT INTO t VALUES (1), (2)").ok());
  auto first = system.Execute("SELECT a FROM t ORDER BY a");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->result_cache, "store");
  auto second = system.Execute("SELECT a FROM t ORDER BY a");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->result_cache, "hit");
  ASSERT_EQ(second->rows.NumRows(), 2u);
  EXPECT_EQ(second->rows.At(1, 0).AsInteger(), 2);
  EXPECT_GT(system.metrics().Get(metric::kResultCacheHits), 0);
}

TEST(ResultCacheTest, DifferentParamsAreDifferentEntries) {
  IdaaSystem system;
  ASSERT_TRUE(system.Execute("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(system.Execute("INSERT INTO t VALUES (1), (2)").ok());
  ASSERT_TRUE(system.Execute("SELECT a FROM t WHERE a = 1").ok());
  // Same plan shape, different literal: must NOT hit the first result.
  auto other = system.Execute("SELECT a FROM t WHERE a = 2");
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(other->plan_cache, "hit");
  EXPECT_NE(other->result_cache, "hit");
  ASSERT_EQ(other->rows.NumRows(), 1u);
  EXPECT_EQ(other->rows.At(0, 0).AsInteger(), 2);
}

TEST(ResultCacheTest, DmlEvictsExactlyTheWrittenTable) {
  IdaaSystem system;
  ASSERT_TRUE(system.Execute("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(system.Execute("CREATE TABLE u (b INT)").ok());
  ASSERT_TRUE(system.Execute("INSERT INTO t VALUES (1)").ok());
  ASSERT_TRUE(system.Execute("INSERT INTO u VALUES (10)").ok());
  ASSERT_TRUE(system.Execute("SELECT a FROM t").ok());
  ASSERT_TRUE(system.Execute("SELECT b FROM u").ok());

  ASSERT_TRUE(system.Execute("INSERT INTO t VALUES (2)").ok());

  // t's entry is gone — and the fresh read sees the new row...
  auto t_read = system.Execute("SELECT a FROM t");
  ASSERT_TRUE(t_read.ok());
  EXPECT_NE(t_read->result_cache, "hit");
  EXPECT_EQ(t_read->rows.NumRows(), 2u);
  // ...while u's untouched entry still serves.
  auto u_read = system.Execute("SELECT b FROM u");
  ASSERT_TRUE(u_read.ok());
  EXPECT_EQ(u_read->result_cache, "hit");
}

TEST(ResultCacheTest, JoinEvictsWhenEitherSideChanges) {
  IdaaSystem system;
  ASSERT_TRUE(system.Execute("CREATE TABLE f (id INT, d INT)").ok());
  ASSERT_TRUE(system.Execute("CREATE TABLE d (id INT, name VARCHAR)").ok());
  ASSERT_TRUE(system.Execute("INSERT INTO f VALUES (1, 1)").ok());
  ASSERT_TRUE(system.Execute("INSERT INTO d VALUES (1, 'x')").ok());
  const std::string join =
      "SELECT name FROM f JOIN d ON f.d = d.id ORDER BY name";
  ASSERT_TRUE(system.Execute(join).ok());
  auto hit = system.Execute(join);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit->result_cache, "hit");
  // Writing the dimension side must evict the join's cached result.
  ASSERT_TRUE(system.Execute("INSERT INTO d VALUES (2, 'y')").ok());
  auto after = system.Execute(join);
  ASSERT_TRUE(after.ok());
  EXPECT_NE(after->result_cache, "hit");
  // And writing the fact side likewise.
  ASSERT_TRUE(system.Execute(join).ok());
  ASSERT_TRUE(system.Execute("INSERT INTO f VALUES (2, 2)").ok());
  auto after2 = system.Execute(join);
  ASSERT_TRUE(after2.ok());
  EXPECT_NE(after2->result_cache, "hit");
  EXPECT_EQ(after2->rows.NumRows(), 2u);
}

TEST(ResultCacheTest, ExplicitTransactionBypassesTheCache) {
  IdaaSystem system;
  ASSERT_TRUE(system.Execute("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(system.Execute("INSERT INTO t VALUES (1)").ok());
  ASSERT_TRUE(system.Execute("SELECT a FROM t").ok());
  ASSERT_TRUE(system.Begin().ok());
  // Inside the txn: no cached serve (snapshot semantics), no store.
  auto in_txn = system.Execute("SELECT a FROM t");
  ASSERT_TRUE(in_txn.ok());
  EXPECT_EQ(in_txn->result_cache, "bypass");
  ASSERT_TRUE(system.Execute("INSERT INTO t VALUES (2)").ok());
  ASSERT_TRUE(system.Commit().ok());
  // The commit evicted t: next read sees both rows.
  auto after = system.Execute("SELECT a FROM t");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->rows.NumRows(), 2u);
}

TEST(ResultCacheTest, RolledBackTransactionDoesNotServeStaleEither) {
  IdaaSystem system;
  ASSERT_TRUE(system.Execute("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(system.Execute("INSERT INTO t VALUES (1)").ok());
  ASSERT_TRUE(system.Execute("SELECT a FROM t").ok());
  ASSERT_TRUE(system.Begin().ok());
  ASSERT_TRUE(system.Execute("INSERT INTO t VALUES (2)").ok());
  ASSERT_TRUE(system.Rollback().ok());
  auto after = system.Execute("SELECT a FROM t");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->rows.NumRows(), 1u);
}

TEST(ResultCacheTest, RevokeBlocksCachedServe) {
  IdaaSystem system;
  ASSERT_TRUE(system.Execute("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(system.Execute("INSERT INTO t VALUES (1)").ok());
  auto conn = system.NewConnection();
  conn->SetUser("alice");
  system.authorization().CreateUser("alice");
  ASSERT_TRUE(system.authorization()
                  .Grant("alice", "T", governance::Privilege::kSelect)
                  .ok());
  ASSERT_TRUE(conn->Execute("SELECT a FROM t").ok());
  auto hit = conn->Execute("SELECT a FROM t");
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit->result_cache, "hit");
  // Revoke between hits: the cached entry must not leak past governance.
  ASSERT_TRUE(system.authorization()
                  .Revoke("alice", "T", governance::Privilege::kSelect)
                  .ok());
  auto denied = conn->Execute("SELECT a FROM t");
  EXPECT_FALSE(denied.ok());
}

TEST(ResultCacheTest, ReplicationApplyEvictsExactlyTheAppliedTable) {
  SystemOptions options;
  options.replication_batch_size = 0;  // manual Flush
  IdaaSystem system(options);
  ASSERT_TRUE(system.Execute("CREATE TABLE r (a INT)").ok());
  ASSERT_TRUE(system.Execute("CREATE TABLE s (b INT)").ok());
  ASSERT_TRUE(system.Execute("INSERT INTO r VALUES (1)").ok());
  ASSERT_TRUE(system.Execute("INSERT INTO s VALUES (1)").ok());
  ASSERT_TRUE(system.Execute("CALL SYSPROC.ACCEL_ADD_TABLES('r')").ok());
  ASSERT_TRUE(system.Execute("CALL SYSPROC.ACCEL_ADD_TABLES('s')").ok());
  ASSERT_TRUE(system.Execute("SELECT COUNT(*) FROM r").ok());
  ASSERT_TRUE(system.Execute("SELECT COUNT(*) FROM s").ok());

  // Write r through DB2 and apply the captured batch to the replica.
  ASSERT_TRUE(system.Execute("INSERT INTO r VALUES (2)").ok());
  ASSERT_TRUE(system.replication().Flush().ok());

  auto r_read = system.Execute("SELECT COUNT(*) FROM r");
  ASSERT_TRUE(r_read.ok());
  EXPECT_NE(r_read->result_cache, "hit");
  EXPECT_EQ(r_read->rows.At(0, 0).AsInteger(), 2);
  auto s_read = system.Execute("SELECT COUNT(*) FROM s");
  ASSERT_TRUE(s_read.ok());
  EXPECT_EQ(s_read->result_cache, "hit");
}

TEST(ResultCacheTest, DisabledWlmNeverServesOrStores) {
  SystemOptions options;
  options.wlm.enabled = false;
  IdaaSystem system(options);
  ASSERT_TRUE(system.Execute("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(system.Execute("INSERT INTO t VALUES (1)").ok());
  auto first = system.Execute("SELECT a FROM t");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->result_cache, "bypass");
  auto second = system.Execute("SELECT a FROM t");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->result_cache, "bypass");
}

// ---------------------------------------------------------------------------
// EXPLAIN ANALYZE surfacing
// ---------------------------------------------------------------------------

TEST(WlmExplainTest, ExplainAnalyzeShowsWlmDecisions) {
  IdaaSystem system;
  ASSERT_TRUE(system.Execute("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(system.Execute("INSERT INTO t VALUES (1)").ok());
  // Warm the plan cache with the inner statement shape.
  ASSERT_TRUE(system.Execute("SELECT a FROM t WHERE a = 1").ok());
  auto explain = system.Execute("EXPLAIN ANALYZE SELECT a FROM t WHERE a = 1");
  ASSERT_TRUE(explain.ok()) << explain.status().ToString();
  bool found_wlm = false;
  std::string detail;
  for (size_t i = 0; i < explain->rows.NumRows(); ++i) {
    if (explain->rows.At(i, 0).AsVarchar() == "wlm") {
      found_wlm = true;
      detail = explain->rows.At(i, 2).AsVarchar();
    }
  }
  ASSERT_TRUE(found_wlm) << "no wlm row in EXPLAIN ANALYZE output";
  EXPECT_NE(detail.find("plan_cache="), std::string::npos);
  // The warm-up run stored the inner SELECT's result, so the wlm row must
  // report the hit a bare re-execution would get.
  EXPECT_NE(detail.find("result_cache=hit"), std::string::npos) << detail;
  EXPECT_NE(detail.find("tenant=default"), std::string::npos);
  EXPECT_NE(detail.find("queued_us="), std::string::npos);
  EXPECT_NE(detail.find("slot="), std::string::npos);
}

TEST(WlmExplainTest, ExplainAnalyzeReportsInnerSelectCacheState) {
  IdaaSystem system;
  ASSERT_TRUE(system.Execute("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(system.Execute("INSERT INTO t VALUES (1)").ok());
  auto WlmDetail = [&](const std::string& sql) -> std::string {
    auto explain = system.Execute(sql);
    EXPECT_TRUE(explain.ok()) << explain.status().ToString();
    if (!explain.ok()) return "";
    for (size_t i = 0; i < explain->rows.NumRows(); ++i) {
      if (explain->rows.At(i, 0).AsVarchar() == "wlm") {
        return explain->rows.At(i, 2).AsVarchar();
      }
    }
    return "";
  };
  // Nothing cached yet: a bare run of the inner SELECT would miss.
  EXPECT_NE(WlmDetail("EXPLAIN ANALYZE SELECT a FROM t WHERE a = 1")
                .find("result_cache=miss"),
            std::string::npos);
  // Prime through the front door; the same shape + params now reports a hit
  // (lowercase prefix exercises the case-insensitive EXPLAIN ANALYZE strip).
  ASSERT_TRUE(system.Execute("SELECT a FROM t WHERE a = 1").ok());
  EXPECT_NE(WlmDetail("explain analyze SELECT a FROM t WHERE a = 1")
                .find("result_cache=hit"),
            std::string::npos);
  // Different literal values are a distinct cache entry — still a miss.
  EXPECT_NE(WlmDetail("EXPLAIN ANALYZE SELECT a FROM t WHERE a = 2")
                .find("result_cache=miss"),
            std::string::npos);
  // An invalidating write evicts: back to miss.
  ASSERT_TRUE(system.Execute("INSERT INTO t VALUES (3)").ok());
  EXPECT_NE(WlmDetail("EXPLAIN ANALYZE SELECT a FROM t WHERE a = 1")
                .find("result_cache=miss"),
            std::string::npos);
}

TEST(WlmExplainTest, StatementResultCarriesTenantAndSlot) {
  IdaaSystem system;
  ASSERT_TRUE(system.Execute("CREATE TABLE t (a INT)").ok());
  federation::ExecOptions opts;
  opts.tenant_id = "analytics";
  auto r = system.Execute("SELECT a FROM t", opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->tenant, "analytics");
  EXPECT_GT(r->slot, 0u);  // WLM gated (auto-commit, enabled)
}

// ---------------------------------------------------------------------------
// Overload shedding through the SQL front door
// ---------------------------------------------------------------------------

TEST(WlmOverloadTest, ShedStatementsFailFastAndRetryable) {
  SystemOptions options;
  options.wlm.total_slots = 1;
  options.wlm.max_queue_depth = 1;
  IdaaSystem system(options);
  ASSERT_TRUE(system.Execute("CREATE TABLE t (a INT)").ok());
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(
        system.Execute("INSERT INTO t VALUES (" + std::to_string(i) + ")")
            .ok());
  }

  constexpr int kThreads = 8;
  std::atomic<int> ok_count{0};
  std::atomic<int> shed_count{0};
  std::atomic<int> non_retryable{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      auto conn = system.NewConnection();
      federation::ExecOptions opts;
      opts.deadline_us = 500;  // shed quickly under contention
      opts.use_result_cache = false;
      for (int q = 0; q < 25; ++q) {
        auto r = conn->Execute("SELECT COUNT(*), SUM(a) FROM t GROUP BY a",
                               opts);
        if (r.ok()) {
          ++ok_count;
        } else {
          ++shed_count;
          if (!r.status().retryable()) ++non_retryable;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_GT(ok_count.load(), 0);
  EXPECT_GT(shed_count.load(), 0) << "overload never shed anything";
  EXPECT_EQ(non_retryable.load(), 0)
      << "shed statements must carry a retryable Status";
}

// ---------------------------------------------------------------------------
// Convergence fuzz: zero stale reads under random DML + replication + faults
// ---------------------------------------------------------------------------

std::vector<std::string> CanonicalRows(const ResultSet& rs) {
  std::vector<std::string> lines;
  for (size_t i = 0; i < rs.NumRows(); ++i) {
    std::string line;
    for (size_t j = 0; j < rs.schema().columns().size(); ++j) {
      line += rs.At(i, j).ToString();
      line += "|";
    }
    lines.push_back(std::move(line));
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

class WlmConvergenceFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WlmConvergenceFuzz, ResultCacheNoStaleReadsUnderFaults) {
  SystemOptions options;
  options.replication_batch_size = 0;  // Flush is a fuzz action
  options.accelerator.zone_size = 32;
  IdaaSystem system(options);
  ASSERT_TRUE(system.Execute("CREATE TABLE t0 (id INT, v INT)").ok());
  ASSERT_TRUE(system.Execute("CREATE TABLE t1 (id INT, v INT)").ok());
  ASSERT_TRUE(system.Execute("CREATE TABLE t2 (id INT, v INT)").ok());
  for (int i = 0; i < 40; ++i) {
    for (const char* t : {"t0", "t1", "t2"}) {
      ASSERT_TRUE(system
                      .Execute("INSERT INTO " + std::string(t) + " VALUES (" +
                               std::to_string(i) + ", " +
                               std::to_string(i * 2) + ")")
                      .ok());
    }
  }
  ASSERT_TRUE(system.Execute("CALL SYSPROC.ACCEL_ADD_TABLES('t0')").ok());
  ASSERT_TRUE(system.Execute("CALL SYSPROC.ACCEL_ADD_TABLES('t1')").ok());

  FaultSpec spec;
  spec.probability = 0.1;
  system.fault_injector().ArmChannel(spec);
  system.fault_injector().Arm(FaultInjector::AcceleratorSite("ACCEL1"), spec);

  Rng rng(GetParam());
  auto cached_conn = system.NewConnection();
  auto fresh_conn = system.NewConnection();
  federation::ExecOptions raw;
  raw.use_plan_cache = false;
  raw.use_result_cache = false;

  const std::vector<std::string> queries = {
      "SELECT COUNT(*), SUM(v) FROM t0",
      "SELECT COUNT(*), SUM(v) FROM t1",
      "SELECT COUNT(*), SUM(v) FROM t2",
      "SELECT id, v FROM t0 WHERE id < 10 ORDER BY id",
      "SELECT t0.id, t1.v FROM t0 JOIN t1 ON t0.id = t1.id "
      "WHERE t0.id < 5 ORDER BY t0.id",
  };

  auto run_with_retries =
      [&](Connection& conn, const std::string& sql,
          const federation::ExecOptions& opts)
      -> Result<federation::StatementResult> {
    for (int attempt = 0; attempt < 200; ++attempt) {
      auto r = conn.Execute(sql, opts);
      if (r.ok()) return r;
      EXPECT_TRUE(r.status().retryable() ||
                  r.status().code() == StatusCode::kConflict)
          << sql << ": " << r.status().ToString();
      std::this_thread::yield();
    }
    return Status::Internal("retries exhausted for: " + sql);
  };

  int stale_reads = 0;
  int cache_hits = 0;
  for (int step = 0; step < 300; ++step) {
    int dice = static_cast<int>(rng.Uniform(0, 99));
    if (dice < 55) {
      // Cached read, then an uncached reference read of the same query with
      // no intervening mutation: any mismatch is a stale serve.
      const std::string& q =
          queries[rng.Uniform(0, static_cast<int>(queries.size()) - 1)];
      auto cached = run_with_retries(*cached_conn, q, {});
      ASSERT_TRUE(cached.ok()) << cached.status().ToString();
      if (cached->result_cache == "hit") ++cache_hits;
      auto fresh = run_with_retries(*fresh_conn, q, raw);
      ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
      if (CanonicalRows(cached->rows) != CanonicalRows(fresh->rows)) {
        ++stale_reads;
        ADD_FAILURE() << "stale read (cache=" << cached->result_cache
                      << ") for: " << q;
      }
    } else if (dice < 85) {
      const char* tables[] = {"t0", "t1", "t2"};
      const std::string t = tables[rng.Uniform(0, 2)];
      int id = static_cast<int>(rng.Uniform(0, 39));
      std::string dml;
      switch (rng.Uniform(0, 2)) {
        case 0:
          dml = "INSERT INTO " + t + " VALUES (" + std::to_string(id) + ", " +
                std::to_string(step) + ")";
          break;
        case 1:
          dml = "UPDATE " + t + " SET v = " + std::to_string(step) +
                " WHERE id = " + std::to_string(id);
          break;
        default:
          dml = "DELETE FROM " + t + " WHERE id = " + std::to_string(id);
          break;
      }
      auto r = cached_conn->Execute(dml);
      if (!r.ok()) {
        EXPECT_TRUE(r.status().retryable() ||
                    r.status().code() == StatusCode::kConflict)
            << dml << ": " << r.status().ToString();
      }
    } else if (dice < 95) {
      auto flushed = system.replication().Flush();
      if (!flushed.ok()) {
        EXPECT_TRUE(flushed.status().retryable())
            << flushed.status().ToString();
      }
    } else {
      // Explicit transaction: writes must only evict at commit.
      ASSERT_TRUE(cached_conn->Begin().ok());
      int id = static_cast<int>(rng.Uniform(0, 39));
      auto w = cached_conn->Execute("UPDATE t2 SET v = " +
                                    std::to_string(step) + " WHERE id = " +
                                    std::to_string(id));
      if (!w.ok()) {
        EXPECT_TRUE(w.status().retryable() ||
                    w.status().code() == StatusCode::kConflict);
      }
      if (rng.Uniform(0, 1) == 0) {
        (void)cached_conn->Commit();
      } else {
        (void)cached_conn->Rollback();
      }
    }
  }
  system.fault_injector().Reset();
  EXPECT_EQ(stale_reads, 0) << "seed " << GetParam();
  EXPECT_GT(cache_hits, 0) << "fuzz never exercised a cached serve; seed "
                           << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, WlmConvergenceFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace idaa
