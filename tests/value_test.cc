#include "common/value.h"

#include <gtest/gtest.h>

namespace idaa {
namespace {

TEST(ValueTest, NullBasics) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.ToString(), "NULL");
  EXPECT_FALSE(v.Type().ok());
  EXPECT_EQ(v, Value::Null());
}

TEST(ValueTest, TypedConstruction) {
  EXPECT_TRUE(Value::Boolean(true).AsBoolean());
  EXPECT_EQ(Value::Integer(-7).AsInteger(), -7);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::Varchar("abc").AsVarchar(), "abc");
  EXPECT_EQ(Value::Date(10).AsDate(), 10);
  EXPECT_EQ(Value::Timestamp(123456).AsTimestamp(), 123456);
}

TEST(ValueTest, DynamicType) {
  EXPECT_EQ(*Value::Integer(1).Type(), DataType::kInteger);
  EXPECT_EQ(*Value::Double(1).Type(), DataType::kDouble);
  EXPECT_EQ(*Value::Varchar("x").Type(), DataType::kVarchar);
  EXPECT_EQ(*Value::Boolean(false).Type(), DataType::kBoolean);
  EXPECT_EQ(*Value::Date(0).Type(), DataType::kDate);
  EXPECT_EQ(*Value::Timestamp(0).Type(), DataType::kTimestamp);
}

TEST(ValueTest, ToDouble) {
  EXPECT_DOUBLE_EQ(*Value::Integer(4).ToDouble(), 4.0);
  EXPECT_DOUBLE_EQ(*Value::Double(4.5).ToDouble(), 4.5);
  EXPECT_DOUBLE_EQ(*Value::Boolean(true).ToDouble(), 1.0);
  EXPECT_FALSE(Value::Varchar("4").ToDouble().ok());
  EXPECT_FALSE(Value::Null().ToDouble().ok());
}

TEST(ValueTest, CompareSameTypes) {
  EXPECT_EQ(*Value::Integer(1).Compare(Value::Integer(2)), -1);
  EXPECT_EQ(*Value::Integer(2).Compare(Value::Integer(2)), 0);
  EXPECT_EQ(*Value::Integer(3).Compare(Value::Integer(2)), 1);
  EXPECT_EQ(*Value::Varchar("a").Compare(Value::Varchar("b")), -1);
  EXPECT_EQ(*Value::Boolean(false).Compare(Value::Boolean(true)), -1);
}

TEST(ValueTest, CompareCrossNumeric) {
  EXPECT_EQ(*Value::Integer(2).Compare(Value::Double(2.0)), 0);
  EXPECT_EQ(*Value::Integer(2).Compare(Value::Double(2.5)), -1);
  EXPECT_EQ(*Value::Double(3.0).Compare(Value::Integer(2)), 1);
}

TEST(ValueTest, CompareNullFails) {
  EXPECT_FALSE(Value::Null().Compare(Value::Integer(1)).ok());
  EXPECT_FALSE(Value::Integer(1).Compare(Value::Null()).ok());
}

TEST(ValueTest, CompareIncompatibleFails) {
  EXPECT_FALSE(Value::Varchar("1").Compare(Value::Integer(1)).ok());
  EXPECT_FALSE(Value::Boolean(true).Compare(Value::Integer(1)).ok());
}

TEST(ValueTest, CastIntegerToDouble) {
  auto v = Value::Integer(3).CastTo(DataType::kDouble);
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->AsDouble(), 3.0);
}

TEST(ValueTest, CastDoubleToIntegerRounds) {
  EXPECT_EQ(Value::Double(2.6).CastTo(DataType::kInteger)->AsInteger(), 3);
  EXPECT_EQ(Value::Double(-2.6).CastTo(DataType::kInteger)->AsInteger(), -3);
}

TEST(ValueTest, CastStringToNumber) {
  EXPECT_EQ(Value::Varchar("42").CastTo(DataType::kInteger)->AsInteger(), 42);
  EXPECT_DOUBLE_EQ(Value::Varchar("2.5").CastTo(DataType::kDouble)->AsDouble(),
                   2.5);
  EXPECT_FALSE(Value::Varchar("xyz").CastTo(DataType::kInteger).ok());
  EXPECT_FALSE(Value::Varchar("1.5x").CastTo(DataType::kDouble).ok());
}

TEST(ValueTest, CastAnythingToVarchar) {
  EXPECT_EQ(Value::Integer(9).CastTo(DataType::kVarchar)->AsVarchar(), "9");
  EXPECT_EQ(Value::Boolean(true).CastTo(DataType::kVarchar)->AsVarchar(),
            "TRUE");
}

TEST(ValueTest, CastNullStaysNull) {
  for (DataType t : {DataType::kBoolean, DataType::kInteger, DataType::kDouble,
                     DataType::kVarchar, DataType::kDate,
                     DataType::kTimestamp}) {
    auto v = Value::Null().CastTo(t);
    ASSERT_TRUE(v.ok());
    EXPECT_TRUE(v->is_null());
  }
}

TEST(ValueTest, CastStringToDate) {
  auto v = Value::Varchar("1970-01-02").CastTo(DataType::kDate);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsDate(), 1);
}

TEST(ValueTest, DateTimestampConversion) {
  auto ts = Value::Date(2).CastTo(DataType::kTimestamp);
  ASSERT_TRUE(ts.ok());
  EXPECT_EQ(ts->AsTimestamp(), 2LL * 86'400'000'000LL);
  auto back = ts->CastTo(DataType::kDate);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->AsDate(), 2);
}

TEST(ValueTest, HashEqualValuesAgree) {
  EXPECT_EQ(Value::Integer(7).Hash(), Value::Integer(7).Hash());
  EXPECT_EQ(Value::Varchar("hi").Hash(), Value::Varchar("hi").Hash());
  EXPECT_EQ(Value::Null().Hash(), Value::Null().Hash());
}

TEST(ValueTest, ByteSize) {
  EXPECT_EQ(Value::Null().ByteSize(), 1u);
  EXPECT_EQ(Value::Integer(1).ByteSize(), 8u);
  EXPECT_EQ(Value::Varchar("abcd").ByteSize(), 8u);  // 4 chars + 4 len
  EXPECT_EQ(Value::Date(1).ByteSize(), 4u);
}

TEST(DateTest, ParseFormatRoundTrip) {
  const char* dates[] = {"1970-01-01", "1999-12-31", "2000-02-29",
                         "2016-03-15", "2026-07-06", "1969-12-31",
                         "1900-03-01"};
  for (const char* text : dates) {
    auto days = ParseDate(text);
    ASSERT_TRUE(days.ok()) << text;
    EXPECT_EQ(FormatDate(*days), text);
  }
}

TEST(DateTest, KnownEpochOffsets) {
  EXPECT_EQ(*ParseDate("1970-01-01"), 0);
  EXPECT_EQ(*ParseDate("1970-02-01"), 31);
  EXPECT_EQ(*ParseDate("1971-01-01"), 365);
  EXPECT_EQ(*ParseDate("1972-12-31"), 365 + 365 + 365);  // 1972 is leap
  EXPECT_EQ(*ParseDate("1969-12-31"), -1);
}

TEST(DateTest, RejectsInvalid) {
  EXPECT_FALSE(ParseDate("not-a-date").ok());
  EXPECT_FALSE(ParseDate("2021-13-01").ok());
  EXPECT_FALSE(ParseDate("2021-02-29").ok());  // not a leap year
  EXPECT_FALSE(ParseDate("2021-04-31").ok());
}

TEST(DateTest, LeapYearFebruary) {
  EXPECT_TRUE(ParseDate("2024-02-29").ok());
  EXPECT_FALSE(ParseDate("2100-02-29").ok());  // century non-leap
  EXPECT_TRUE(ParseDate("2000-02-29").ok());   // 400-year leap
}

TEST(DataTypeTest, FromStringAliases) {
  EXPECT_EQ(*DataTypeFromString("int"), DataType::kInteger);
  EXPECT_EQ(*DataTypeFromString("BIGINT"), DataType::kInteger);
  EXPECT_EQ(*DataTypeFromString("Float"), DataType::kDouble);
  EXPECT_EQ(*DataTypeFromString("text"), DataType::kVarchar);
  EXPECT_FALSE(DataTypeFromString("BLOB").ok());
}

}  // namespace
}  // namespace idaa
