// SQL lexer + parser tests, including a parameterized round-trip suite:
// parse -> ToSql -> parse must be stable.

#include <gtest/gtest.h>

#include "sql/lexer.h"
#include "sql/parser.h"

namespace idaa::sql {
namespace {

TEST(LexerTest, BasicTokens) {
  auto tokens = Tokenize("SELECT a, 42, 3.5, 'str' FROM t;");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE((*tokens)[0].IsKeyword("SELECT"));
  EXPECT_EQ((*tokens)[1].type, TokenType::kIdentifier);
  EXPECT_EQ((*tokens)[3].int_value, 42);
  EXPECT_DOUBLE_EQ((*tokens)[5].double_value, 3.5);
  EXPECT_EQ((*tokens)[7].text, "str");
  EXPECT_EQ((*tokens).back().type, TokenType::kEof);
}

TEST(LexerTest, OperatorsTwoChar) {
  auto tokens = Tokenize("<= >= <> != ||");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kLtEq);
  EXPECT_EQ((*tokens)[1].type, TokenType::kGtEq);
  EXPECT_EQ((*tokens)[2].type, TokenType::kNotEq);
  EXPECT_EQ((*tokens)[3].type, TokenType::kNotEq);
  EXPECT_EQ((*tokens)[4].type, TokenType::kConcat);
}

TEST(LexerTest, StringEscapes) {
  auto tokens = Tokenize("'it''s'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "it's");
}

TEST(LexerTest, LineComment) {
  auto tokens = Tokenize("SELECT 1 -- comment here\n");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens->size(), 3u);  // SELECT, 1, EOF
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("'oops").ok());
}

TEST(LexerTest, UnknownCharacterFails) {
  EXPECT_FALSE(Tokenize("SELECT @x").ok());
}

TEST(LexerTest, KeywordsUpperCased) {
  auto tokens = Tokenize("select From WHERE");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[1].text, "FROM");
  EXPECT_EQ((*tokens)[2].text, "WHERE");
}

TEST(LexerTest, QuotedIdentifierKeepsCase) {
  auto tokens = Tokenize("\"MixedCase\"");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kIdentifier);
  EXPECT_EQ((*tokens)[0].text, "MixedCase");
}

// ---------------------------------------------------------------------------
// Parser: structure checks
// ---------------------------------------------------------------------------

TEST(ParserTest, SelectFull) {
  auto stmt = ParseStatement(
      "SELECT a, SUM(b) AS total FROM t JOIN u ON t.id = u.id "
      "WHERE a > 1 GROUP BY a HAVING SUM(b) > 10 ORDER BY total DESC LIMIT 5");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  auto* select = static_cast<SelectStatement*>(stmt->get());
  EXPECT_EQ(select->items.size(), 2u);
  EXPECT_EQ(select->items[1].alias, "total");
  ASSERT_TRUE(select->from.has_value());
  EXPECT_EQ(select->joins.size(), 1u);
  ASSERT_TRUE(select->where != nullptr);
  EXPECT_EQ(select->group_by.size(), 1u);
  ASSERT_TRUE(select->having != nullptr);
  EXPECT_EQ(select->order_by.size(), 1u);
  EXPECT_FALSE(select->order_by[0].ascending);
  EXPECT_EQ(select->limit, 5);
}

TEST(ParserTest, SelectStar) {
  auto stmt = ParseStatement("SELECT * FROM t");
  ASSERT_TRUE(stmt.ok());
  auto* select = static_cast<SelectStatement*>(stmt->get());
  EXPECT_EQ(select->items[0].expr->kind, ExprKind::kStar);
}

TEST(ParserTest, JoinVariants) {
  auto stmt = ParseStatement(
      "SELECT 1 FROM a LEFT OUTER JOIN b ON a.x = b.x CROSS JOIN c "
      "INNER JOIN d ON d.y = a.y");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  auto* select = static_cast<SelectStatement*>(stmt->get());
  ASSERT_EQ(select->joins.size(), 3u);
  EXPECT_EQ(select->joins[0].type, JoinType::kLeft);
  EXPECT_EQ(select->joins[1].type, JoinType::kCross);
  EXPECT_EQ(select->joins[2].type, JoinType::kInner);
}

TEST(ParserTest, InsertValues) {
  auto stmt =
      ParseStatement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')");
  ASSERT_TRUE(stmt.ok());
  auto* insert = static_cast<InsertStatement*>(stmt->get());
  EXPECT_EQ(insert->table_name, "t");
  EXPECT_EQ(insert->columns.size(), 2u);
  EXPECT_EQ(insert->values_rows.size(), 2u);
  EXPECT_EQ(insert->select, nullptr);
}

TEST(ParserTest, InsertSelect) {
  auto stmt = ParseStatement("INSERT INTO t SELECT a FROM u WHERE a > 0");
  ASSERT_TRUE(stmt.ok());
  auto* insert = static_cast<InsertStatement*>(stmt->get());
  ASSERT_NE(insert->select, nullptr);
  EXPECT_TRUE(insert->values_rows.empty());
}

TEST(ParserTest, UpdateDelete) {
  auto up = ParseStatement("UPDATE t SET a = a + 1, b = 'x' WHERE a < 3");
  ASSERT_TRUE(up.ok());
  auto* update = static_cast<UpdateStatement*>(up->get());
  EXPECT_EQ(update->assignments.size(), 2u);
  ASSERT_NE(update->where, nullptr);

  auto del = ParseStatement("DELETE FROM t");
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(static_cast<DeleteStatement*>(del->get())->where, nullptr);
}

TEST(ParserTest, CreateTableInAccelerator) {
  auto stmt = ParseStatement(
      "CREATE TABLE aot (id INT NOT NULL, v VARCHAR(32)) IN ACCELERATOR "
      "DISTRIBUTE BY (id)");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  auto* create = static_cast<CreateTableStatement*>(stmt->get());
  EXPECT_TRUE(create->in_accelerator);
  ASSERT_TRUE(create->distribute_by.has_value());
  EXPECT_EQ(*create->distribute_by, "id");
  ASSERT_EQ(create->columns.size(), 2u);
  EXPECT_TRUE(create->columns[0].not_null);
  EXPECT_EQ(create->columns[1].type, DataType::kVarchar);
}

TEST(ParserTest, CreateTableIfNotExists) {
  auto stmt = ParseStatement("CREATE TABLE IF NOT EXISTS t (a INT)");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(static_cast<CreateTableStatement*>(stmt->get())->if_not_exists);
}

TEST(ParserTest, DropTable) {
  auto stmt = ParseStatement("DROP TABLE IF EXISTS t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(static_cast<DropTableStatement*>(stmt->get())->if_exists);
}

TEST(ParserTest, GrantRevoke) {
  auto grant = ParseStatement("GRANT SELECT, INSERT ON t TO alice");
  ASSERT_TRUE(grant.ok());
  auto* g = static_cast<GrantStatement*>(grant->get());
  EXPECT_EQ(g->privileges, (std::vector<std::string>{"SELECT", "INSERT"}));
  EXPECT_EQ(g->grantee, "alice");

  auto revoke = ParseStatement("REVOKE SELECT ON t FROM alice");
  ASSERT_TRUE(revoke.ok());
}

TEST(ParserTest, CallWithLiterals) {
  auto stmt =
      ParseStatement("CALL SYSPROC.ACCEL_ADD_TABLES('sales')");
  ASSERT_TRUE(stmt.ok());
  auto* call = static_cast<CallStatement*>(stmt->get());
  EXPECT_EQ(call->procedure_name, "SYSPROC.ACCEL_ADD_TABLES");
  ASSERT_EQ(call->arguments.size(), 1u);
  EXPECT_EQ(call->arguments[0].AsVarchar(), "sales");
}

TEST(ParserTest, CallNegativeNumberArg) {
  auto stmt = ParseStatement("CALL p(-5, -2.5)");
  ASSERT_TRUE(stmt.ok());
  auto* call = static_cast<CallStatement*>(stmt->get());
  EXPECT_EQ(call->arguments[0].AsInteger(), -5);
  EXPECT_DOUBLE_EQ(call->arguments[1].AsDouble(), -2.5);
}

TEST(ParserTest, CallRejectsExpressions) {
  EXPECT_FALSE(ParseStatement("CALL p(a + 1)").ok());
}

TEST(ParserTest, ExpressionPrecedence) {
  auto e = ParseExpression("1 + 2 * 3");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->ToSql(), "(1 + (2 * 3))");

  e = ParseExpression("NOT a = 1 AND b = 2 OR c = 3");
  ASSERT_TRUE(e.ok());
  // NOT binds over comparison... here NOT applies to (a = 1).
  EXPECT_EQ((*e)->ToSql(), "((NOT ((a = 1)) AND (b = 2)) OR (c = 3))");
}

TEST(ParserTest, BetweenInLikeIsNull) {
  EXPECT_TRUE(ParseExpression("a BETWEEN 1 AND 10").ok());
  EXPECT_TRUE(ParseExpression("a NOT BETWEEN 1 AND 10").ok());
  EXPECT_TRUE(ParseExpression("a IN (1, 2, 3)").ok());
  EXPECT_TRUE(ParseExpression("a NOT IN ('x')").ok());
  EXPECT_TRUE(ParseExpression("a LIKE 'x%'").ok());
  EXPECT_TRUE(ParseExpression("a IS NULL").ok());
  EXPECT_TRUE(ParseExpression("a IS NOT NULL").ok());
}

TEST(ParserTest, CaseExpression) {
  auto e = ParseExpression(
      "CASE WHEN a > 0 THEN 'pos' WHEN a < 0 THEN 'neg' ELSE 'zero' END");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->kind, ExprKind::kCase);
  EXPECT_TRUE((*e)->has_else);
  EXPECT_EQ((*e)->children.size(), 5u);
}

TEST(ParserTest, CastWithLength) {
  auto e = ParseExpression("CAST(a AS VARCHAR(10))");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->cast_type, DataType::kVarchar);
}

TEST(ParserTest, DateLiteral) {
  auto e = ParseExpression("DATE '2016-03-15'");
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE((*e)->literal.is_date());
}

TEST(ParserTest, CountDistinct) {
  auto e = ParseExpression("COUNT(DISTINCT x)");
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE((*e)->distinct);
}

TEST(ParserTest, TrailingGarbageFails) {
  EXPECT_FALSE(ParseStatement("SELECT 1 FROM t garbage extra").ok());
  EXPECT_FALSE(ParseStatement("DROP TABLE t t2").ok());
}

TEST(ParserTest, ErrorsCarryOffsets) {
  auto r = ParseStatement("SELECT FROM t");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("offset"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Round-trip property: parse(ToSql(parse(s))) == stable
// ---------------------------------------------------------------------------

class RoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTripTest, ParseToSqlParseIsStable) {
  auto first = ParseStatement(GetParam());
  ASSERT_TRUE(first.ok()) << GetParam() << ": " << first.status().ToString();
  std::string sql1 = (*first)->ToSql();
  auto second = ParseStatement(sql1);
  ASSERT_TRUE(second.ok()) << sql1 << ": " << second.status().ToString();
  EXPECT_EQ((*second)->ToSql(), sql1);
}

INSTANTIATE_TEST_SUITE_P(
    Statements, RoundTripTest,
    ::testing::Values(
        "SELECT 1",
        "SELECT a, b FROM t",
        "SELECT DISTINCT a FROM t WHERE a > 1 AND b < 2 OR c = 3",
        "SELECT t.a, u.b FROM t JOIN u ON t.id = u.id",
        "SELECT a FROM t LEFT JOIN u ON t.id = u.id WHERE u.id IS NULL",
        "SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 2",
        "SELECT a FROM t ORDER BY a DESC LIMIT 10",
        "SELECT CASE WHEN a > 0 THEN 1 ELSE 0 END FROM t",
        "SELECT CAST(a AS DOUBLE) FROM t",
        "SELECT a FROM t WHERE a BETWEEN 1 AND 10",
        "SELECT a FROM t WHERE a IN (1, 2, 3)",
        "SELECT a FROM t WHERE name LIKE 'A%'",
        "SELECT a FROM t WHERE a IS NOT NULL",
        "SELECT UPPER(name) || '!' FROM t",
        "SELECT -a + 2 * (b - 1) FROM t",
        "INSERT INTO t VALUES (1, 'x')",
        "INSERT INTO t (a, b) VALUES (1, 2), (3, 4)",
        "INSERT INTO t SELECT a, b FROM u WHERE a > 0",
        "UPDATE t SET a = a + 1 WHERE b = 'x'",
        "DELETE FROM t WHERE a < 0",
        "CREATE TABLE x (a INTEGER NOT NULL, b DOUBLE, c VARCHAR)",
        "CREATE TABLE x (a INTEGER) IN ACCELERATOR",
        "CREATE TABLE x (a INTEGER) IN ACCELERATOR DISTRIBUTE BY (a)",
        "DROP TABLE x",
        "GRANT SELECT ON t TO bob",
        "REVOKE SELECT, INSERT ON t TO bob",
        "CALL SYSPROC.ACCEL_ADD_TABLES('t')",
        "SELECT COUNT(DISTINCT a), SUM(b), AVG(c), MIN(d), MAX(e) FROM t",
        "SELECT a FROM t WHERE d = DATE '2016-03-15'"));

}  // namespace
}  // namespace idaa::sql
