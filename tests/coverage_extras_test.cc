// Additional coverage: loader single-transaction mode and real CSV files,
// join edge cases, update-version grooming, audit utilities, channel
// statement metering, and accelerator byte accounting.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "idaa/system.h"
#include "loader/record_source.h"

namespace idaa {
namespace {

TEST(LoaderExtraTest, SingleTransactionMode) {
  IdaaSystem system;
  ASSERT_TRUE(
      system.Execute("CREATE TABLE t (n INT) IN ACCELERATOR").ok());
  Schema schema({{"N", DataType::kInteger, true}});
  loader::GeneratorSource source(schema, 100, [](size_t i) {
    return Row{Value::Integer(static_cast<int64_t>(i))};
  });
  loader::LoadOptions options;
  options.batch_size = 32;
  options.commit_per_batch = false;  // one transaction for the whole load
  auto report = system.loader().Load("t", &source, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->rows_loaded, 100u);
  EXPECT_EQ(report->batches, 4u);
  auto rs = system.Query("SELECT COUNT(*) FROM t");
  EXPECT_EQ(rs->At(0, 0).AsInteger(), 100);
}

TEST(LoaderExtraTest, CsvFileSourceHappyPath) {
  IdaaSystem system;
  ASSERT_TRUE(system
                  .Execute("CREATE TABLE f (id INT NOT NULL, s VARCHAR) "
                              "IN ACCELERATOR")
                  .ok());
  std::string path = ::testing::TempDir() + "/idaa_loader_test.csv";
  {
    std::ofstream out(path);
    out << "1,alpha\n2,\"beta, with comma\"\n3,gamma\n";
  }
  Schema schema({{"ID", DataType::kInteger, false},
                 {"S", DataType::kVarchar, true}});
  loader::CsvFileSource source(path, schema);
  auto report = system.loader().Load("f", &source);
  std::remove(path.c_str());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->rows_loaded, 3u);
  auto rs = system.Query("SELECT s FROM f WHERE id = 2");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->At(0, 0).AsVarchar(), "beta, with comma");
}

TEST(JoinEdgeTest, LeftJoinAgainstFullyFilteredRight) {
  IdaaSystem system;
  ASSERT_TRUE(system.Execute("CREATE TABLE l (a INT)").ok());
  ASSERT_TRUE(system.Execute("CREATE TABLE r (a INT, b INT)").ok());
  ASSERT_TRUE(system.Execute("INSERT INTO l VALUES (1), (2)").ok());
  ASSERT_TRUE(system.Execute("INSERT INTO r VALUES (1, 10)").ok());
  // WHERE on the right table of a LEFT JOIN must not drop unmatched rows
  // prematurely (pushdown is disabled for left joins).
  auto rs = system.Query(
      "SELECT l.a, r.b FROM l LEFT JOIN r ON l.a = r.a ORDER BY l.a");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->NumRows(), 2u);
  EXPECT_EQ(rs->At(0, 1).AsInteger(), 10);
  EXPECT_TRUE(rs->At(1, 1).is_null());
}

TEST(JoinEdgeTest, CrossJoinWithEmptySide) {
  IdaaSystem system;
  ASSERT_TRUE(system.Execute("CREATE TABLE a (x INT)").ok());
  ASSERT_TRUE(system.Execute("CREATE TABLE b (y INT)").ok());
  ASSERT_TRUE(system.Execute("INSERT INTO a VALUES (1)").ok());
  auto rs = system.Query("SELECT COUNT(*) FROM a CROSS JOIN b");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->At(0, 0).AsInteger(), 0);
}

TEST(GroomExtraTest, UpdateVersionsReclaimed) {
  IdaaSystem system;
  ASSERT_TRUE(
      system.Execute("CREATE TABLE u (id INT NOT NULL, v INT) "
                        "IN ACCELERATOR")
          .ok());
  ASSERT_TRUE(system.Execute("INSERT INTO u VALUES (1, 0)").ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(system.Execute("UPDATE u SET v = v + 1").ok());
  }
  auto table = system.accelerator().GetTable("u");
  EXPECT_EQ((*table)->NumVersions(), 6u);  // 1 live + 5 superseded
  ASSERT_TRUE(system.Execute("CALL SYSPROC.ACCEL_GROOM()").ok());
  EXPECT_EQ((*table)->NumVersions(), 1u);
  auto rs = system.Query("SELECT v FROM u");
  EXPECT_EQ(rs->At(0, 0).AsInteger(), 5);
}

TEST(AuditExtraTest, ClearAndFilter) {
  governance::AuditLog audit;
  audit.Record("alice", "SELECT", "T", true);
  audit.Record("bob", "INSERT", "T", false, "denied");
  EXPECT_EQ(audit.Size(), 2u);
  auto alice = audit.EntriesForUser("ALICE");  // case-insensitive user match
  ASSERT_EQ(alice.size(), 1u);
  EXPECT_EQ(alice[0].action, "SELECT");
  EXPECT_TRUE(alice[0].allowed);
  audit.Clear();
  EXPECT_EQ(audit.Size(), 0u);
}

TEST(ChannelExtraTest, StatementTextIsMetered) {
  MetricsRegistry metrics;
  federation::TransferChannel channel(&metrics);
  channel.SendStatement("SELECT 1 FROM somewhere");
  EXPECT_EQ(metrics.Get(metric::kFederationBytesToAccel),
            std::string("SELECT 1 FROM somewhere").size());
  EXPECT_EQ(metrics.Get(metric::kFederationRoundTrips), 1u);
}

TEST(AccelExtraTest, TableByteSizeGrowsWithData) {
  IdaaSystem system;
  ASSERT_TRUE(
      system.Execute("CREATE TABLE s (v VARCHAR) IN ACCELERATOR").ok());
  auto table = system.accelerator().GetTable("s");
  size_t empty = (*table)->ByteSize();
  ASSERT_TRUE(system.Begin().ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(system
                    .Execute("INSERT INTO s VALUES ('value_" +
                                std::to_string(i) + "')")
                    .ok());
  }
  ASSERT_TRUE(system.Commit().ok());
  EXPECT_GT((*table)->ByteSize(), empty);
}

TEST(RouterExtraTest, TableLessSelectAlwaysLocal) {
  IdaaSystem system;
  system.SetAccelerationMode(federation::AccelerationMode::kAll);
  auto r = system.Execute("SELECT 1 + 1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->routed_to, federation::Target::kDb2);
}

TEST(ConnectionExtraTest, BeginTwiceFails) {
  IdaaSystem system;
  ASSERT_TRUE(system.Begin().ok());
  EXPECT_FALSE(system.Begin().ok());
  ASSERT_TRUE(system.Commit().ok());
  EXPECT_FALSE(system.Commit().ok());
  EXPECT_FALSE(system.Rollback().ok());
}

TEST(ConnectionExtraTest, SetRegisterWithSemicolonAndCase) {
  IdaaSystem system;
  EXPECT_TRUE(
      system.Execute("set current query acceleration = none;").ok());
  EXPECT_EQ(system.acceleration_mode(), federation::AccelerationMode::kNone);
}

}  // namespace
}  // namespace idaa
