// Additional coverage: loader single-transaction mode and real CSV files,
// join edge cases, update-version grooming, audit utilities, channel
// statement metering, and accelerator byte accounting.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "accel/sharded_accelerator.h"
#include "common/string_util.h"
#include "idaa/system.h"
#include "loader/record_source.h"

namespace idaa {
namespace {

TEST(LoaderExtraTest, SingleTransactionMode) {
  IdaaSystem system;
  ASSERT_TRUE(
      system.Execute("CREATE TABLE t (n INT) IN ACCELERATOR").ok());
  Schema schema({{"N", DataType::kInteger, true}});
  loader::GeneratorSource source(schema, 100, [](size_t i) {
    return Row{Value::Integer(static_cast<int64_t>(i))};
  });
  loader::LoadOptions options;
  options.batch_size = 32;
  options.commit_per_batch = false;  // one transaction for the whole load
  auto report = system.loader().Load("t", &source, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->rows_loaded, 100u);
  EXPECT_EQ(report->batches, 4u);
  auto rs = system.Query("SELECT COUNT(*) FROM t");
  EXPECT_EQ(rs->At(0, 0).AsInteger(), 100);
}

TEST(LoaderExtraTest, CsvFileSourceHappyPath) {
  IdaaSystem system;
  ASSERT_TRUE(system
                  .Execute("CREATE TABLE f (id INT NOT NULL, s VARCHAR) "
                              "IN ACCELERATOR")
                  .ok());
  std::string path = ::testing::TempDir() + "/idaa_loader_test.csv";
  {
    std::ofstream out(path);
    out << "1,alpha\n2,\"beta, with comma\"\n3,gamma\n";
  }
  Schema schema({{"ID", DataType::kInteger, false},
                 {"S", DataType::kVarchar, true}});
  loader::CsvFileSource source(path, schema);
  auto report = system.loader().Load("f", &source);
  std::remove(path.c_str());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->rows_loaded, 3u);
  auto rs = system.Query("SELECT s FROM f WHERE id = 2");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->At(0, 0).AsVarchar(), "beta, with comma");
}

TEST(JoinEdgeTest, LeftJoinAgainstFullyFilteredRight) {
  IdaaSystem system;
  ASSERT_TRUE(system.Execute("CREATE TABLE l (a INT)").ok());
  ASSERT_TRUE(system.Execute("CREATE TABLE r (a INT, b INT)").ok());
  ASSERT_TRUE(system.Execute("INSERT INTO l VALUES (1), (2)").ok());
  ASSERT_TRUE(system.Execute("INSERT INTO r VALUES (1, 10)").ok());
  // WHERE on the right table of a LEFT JOIN must not drop unmatched rows
  // prematurely (pushdown is disabled for left joins).
  auto rs = system.Query(
      "SELECT l.a, r.b FROM l LEFT JOIN r ON l.a = r.a ORDER BY l.a");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->NumRows(), 2u);
  EXPECT_EQ(rs->At(0, 1).AsInteger(), 10);
  EXPECT_TRUE(rs->At(1, 1).is_null());
}

TEST(JoinEdgeTest, CrossJoinWithEmptySide) {
  IdaaSystem system;
  ASSERT_TRUE(system.Execute("CREATE TABLE a (x INT)").ok());
  ASSERT_TRUE(system.Execute("CREATE TABLE b (y INT)").ok());
  ASSERT_TRUE(system.Execute("INSERT INTO a VALUES (1)").ok());
  auto rs = system.Query("SELECT COUNT(*) FROM a CROSS JOIN b");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->At(0, 0).AsInteger(), 0);
}

TEST(GroomExtraTest, UpdateVersionsReclaimed) {
  IdaaSystem system;
  ASSERT_TRUE(
      system.Execute("CREATE TABLE u (id INT NOT NULL, v INT) "
                        "IN ACCELERATOR")
          .ok());
  ASSERT_TRUE(system.Execute("INSERT INTO u VALUES (1, 0)").ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(system.Execute("UPDATE u SET v = v + 1").ok());
  }
  auto table = system.accelerator().GetTable("u");
  EXPECT_EQ((*table)->NumVersions(), 6u);  // 1 live + 5 superseded
  ASSERT_TRUE(system.Execute("CALL SYSPROC.ACCEL_GROOM()").ok());
  EXPECT_EQ((*table)->NumVersions(), 1u);
  auto rs = system.Query("SELECT v FROM u");
  EXPECT_EQ(rs->At(0, 0).AsInteger(), 5);
}

TEST(AuditExtraTest, ClearAndFilter) {
  governance::AuditLog audit;
  audit.Record("alice", "SELECT", "T", true);
  audit.Record("bob", "INSERT", "T", false, "denied");
  EXPECT_EQ(audit.Size(), 2u);
  auto alice = audit.EntriesForUser("ALICE");  // case-insensitive user match
  ASSERT_EQ(alice.size(), 1u);
  EXPECT_EQ(alice[0].action, "SELECT");
  EXPECT_TRUE(alice[0].allowed);
  audit.Clear();
  EXPECT_EQ(audit.Size(), 0u);
}

TEST(ChannelExtraTest, StatementTextIsMetered) {
  MetricsRegistry metrics;
  federation::TransferChannel channel(&metrics);
  channel.SendStatement("SELECT 1 FROM somewhere");
  EXPECT_EQ(metrics.Get(metric::kFederationBytesToAccel),
            std::string("SELECT 1 FROM somewhere").size());
  EXPECT_EQ(metrics.Get(metric::kFederationRoundTrips), 1u);
}

TEST(AccelExtraTest, TableByteSizeGrowsWithData) {
  IdaaSystem system;
  ASSERT_TRUE(
      system.Execute("CREATE TABLE s (v VARCHAR) IN ACCELERATOR").ok());
  auto table = system.accelerator().GetTable("s");
  size_t empty = (*table)->ByteSize();
  ASSERT_TRUE(system.Begin().ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(system
                    .Execute("INSERT INTO s VALUES ('value_" +
                                std::to_string(i) + "')")
                    .ok());
  }
  ASSERT_TRUE(system.Commit().ok());
  EXPECT_GT((*table)->ByteSize(), empty);
}

TEST(RouterExtraTest, TableLessSelectAlwaysLocal) {
  IdaaSystem system;
  system.SetAccelerationMode(federation::AccelerationMode::kAll);
  auto r = system.Execute("SELECT 1 + 1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->routed_to, federation::Target::kDb2);
}

TEST(ConnectionExtraTest, BeginTwiceFails) {
  IdaaSystem system;
  ASSERT_TRUE(system.Begin().ok());
  EXPECT_FALSE(system.Begin().ok());
  ASSERT_TRUE(system.Commit().ok());
  EXPECT_FALSE(system.Commit().ok());
  EXPECT_FALSE(system.Rollback().ok());
}

TEST(ConnectionExtraTest, SetRegisterWithSemicolonAndCase) {
  IdaaSystem system;
  EXPECT_TRUE(
      system.Execute("set current query acceleration = none;").ok());
  EXPECT_EQ(system.acceleration_mode(), federation::AccelerationMode::kNone);
}

// ---------------------------------------------------------------------------
// Per-zone encoding: decode fallback, shard re-home, cache invalidation
// ---------------------------------------------------------------------------

namespace {
SystemOptions SmallZoneOptions() {
  SystemOptions options;
  options.accelerator.zone_size = 16;
  options.accelerator.num_slices = 2;
  options.accelerator.morsel_size = 32;
  return options;
}

void SeedEncoded(IdaaSystem& system, const char* extra_ddl = "") {
  ASSERT_TRUE(system
                  .Execute(std::string("CREATE TABLE ztab (id INT NOT NULL, "
                                       "grp INT, v DOUBLE) ") +
                           extra_ddl + " IN ACCELERATOR")
                  .ok());
  for (int base = 0; base < 128; base += 32) {
    std::string insert = "INSERT INTO ztab VALUES ";
    for (int i = base; i < base + 32; ++i) {
      if (i != base) insert += ", ";
      insert += StrFormat("(%d, %d, %d.25)", i, i % 7, i / 16);
    }
    ASSERT_TRUE(system.Execute(insert).ok());
  }
}
}  // namespace

TEST(EncodingCoverageTest, CrossTypePredicateTakesDecodeFallback) {
  IdaaSystem system(SmallZoneOptions());
  SeedEncoded(system);
  system.accelerator().GroomAll();  // sequential ids -> FOR-packed zones

  // Same-type comparison evaluates directly on the packed form.
  uint64_t enc_before = system.metrics().Get(metric::kAccelRowsEncodedEval);
  auto direct = system.Query("SELECT COUNT(*) FROM ztab WHERE id > 10");
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(direct->At(0, 0).AsInteger(), 117);
  EXPECT_GT(system.metrics().Get(metric::kAccelRowsEncodedEval), enc_before);

  // A double literal against the INT column forces the per-zone scratch
  // decode (Value::Compare cross-type rule has no packed specialization).
  uint64_t fb_before = system.metrics().Get(metric::kAccelRowsDecodeFallback);
  auto fallback = system.Query("SELECT COUNT(*) FROM ztab WHERE id > 10.5");
  ASSERT_TRUE(fallback.ok());
  EXPECT_EQ(fallback->At(0, 0).AsInteger(), 117);
  EXPECT_GT(system.metrics().Get(metric::kAccelRowsDecodeFallback),
            fb_before);
}

TEST(EncodingCoverageTest, AddShardRehomeReencodesMovedRows) {
  SystemOptions options = SmallZoneOptions();
  options.accelerator_shards = 2;
  IdaaSystem system(options);
  SeedEncoded(system, "DISTRIBUTE BY (grp)");
  auto* sharded =
      dynamic_cast<accel::ShardedAccelerator*>(&system.accelerator());
  ASSERT_NE(sharded, nullptr);
  sharded->GroomAll();

  auto canonical_count = [&](const char* sql) {
    auto rs = system.Query(sql);
    EXPECT_TRUE(rs.ok()) << rs.status().ToString();
    return rs.ok() ? rs->At(0, 0).AsInteger() : -1;
  };
  ASSERT_EQ(canonical_count("SELECT COUNT(*) FROM ztab"), 128);

  // Online shard add re-homes partitioned rows; moved rows land in the new
  // shard's hot tail and the next groom compacts them there.
  ASSERT_TRUE(sharded->AddShard().ok());
  ASSERT_EQ(canonical_count("SELECT COUNT(*) FROM ztab"), 128);
  sharded->GroomAll();
  ASSERT_EQ(canonical_count("SELECT COUNT(*) FROM ztab"), 128);

  size_t encoded_rows = 0;
  for (size_t s = 0; s < sharded->num_shards(); ++s) {
    auto table = sharded->shard(s).GetTable("ztab");
    ASSERT_TRUE(table.ok());
    encoded_rows += (*table)->EncodingStats().columns.encoded_rows;
  }
  EXPECT_GT(encoded_rows, 0u);

  auto sum = system.Query("SELECT SUM(id), SUM(v) FROM ztab");
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(sum->At(0, 0).AsInteger(), 128 * 127 / 2);
}

TEST(EncodingCoverageTest, ResultCacheDroppedOnCompactionEpochBump) {
  IdaaSystem system(SmallZoneOptions());
  SeedEncoded(system);

  const std::string query = "SELECT grp, SUM(v) FROM ztab GROUP BY grp";
  ASSERT_TRUE(system.Execute(query).ok());
  auto hit = system.Execute(query);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit->result_cache, "hit");

  // GROOM compacts full zones: no logical data change, but the physical
  // layout the cached result was computed on is gone — the compaction
  // epoch bumps and the entry is dropped.
  auto table_before = system.accelerator().GetTable("ztab");
  ASSERT_TRUE(table_before.ok());
  uint64_t epoch_before = (*table_before)->compaction_epoch();
  auto groomed = system.accelerator().GroomAll();
  EXPECT_GT(groomed.zones_compacted, 0u);
  EXPECT_GT((*table_before)->compaction_epoch(), epoch_before);

  auto after = system.Execute(query);
  ASSERT_TRUE(after.ok());
  EXPECT_NE(after->result_cache, "hit");
  // Identical results either way, and the re-stored entry serves again.
  auto rehit = system.Execute(query);
  ASSERT_TRUE(rehit.ok());
  EXPECT_EQ(rehit->result_cache, "hit");
}

}  // namespace
}  // namespace idaa
