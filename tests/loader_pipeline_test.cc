// Parallel load-pipeline tests: ordered-commit determinism (bit-identical
// table state across worker counts), backpressure bounds, the bad-record
// reject policy, atomic all-or-nothing loads, resume tokens (exactly-once
// re-runs) and retry/backoff across injected channel faults.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "idaa/system.h"
#include "loader/record_source.h"

namespace idaa {
namespace {

Schema EventSchema() {
  return Schema({{"ID", DataType::kInteger, false},
                 {"TAG", DataType::kVarchar, true},
                 {"SCORE", DataType::kDouble, true}});
}

/// Deterministic CSV body with NULLs, quoted fields, embedded delimiters
/// and quotes — every shape the parser must keep stable across chunking.
std::string EventCsv(size_t rows) {
  std::ostringstream os;
  for (size_t i = 0; i < rows; ++i) {
    os << i << ",";
    switch (i % 5) {
      case 0:
        os << "plain" << i;
        break;
      case 1:
        os << "\"quoted,comma" << i << "\"";
        break;
      case 2:
        os << "\"doubled\"\"quote" << i << "\"";
        break;
      case 3:
        break;  // unquoted empty -> NULL
      case 4:
        os << "\"\"";  // quoted empty -> empty string
        break;
    }
    os << "," << (i % 7 == 0 ? std::string() : std::to_string(i * 0.25))
       << "\n";
  }
  return os.str();
}

/// Physical fingerprint of an accelerator table: every slice's stored
/// content in storage order.
std::string TableFingerprint(accel::Accelerator& accel,
                             const std::string& name) {
  auto table = accel.GetTable(name);
  EXPECT_TRUE(table.ok());
  std::string out;
  for (size_t s = 0; s < (*table)->num_slices(); ++s) {
    out += "slice " + std::to_string(s) + ":\n";
    out += (*table)->SliceContentString(s);
    out += "\n";
  }
  return out;
}

class LoadPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SystemOptions options;
    options.replication_batch_size = 0;
    system_ = std::make_unique<IdaaSystem>(options);
  }

  int64_t Count(const std::string& table) {
    auto rs = system_->Query("SELECT COUNT(*) FROM " + table);
    EXPECT_TRUE(rs.ok()) << rs.status().ToString();
    return rs->At(0, 0).AsInteger();
  }

  std::unique_ptr<IdaaSystem> system_;
};

TEST_F(LoadPipelineTest, BitIdenticalAcrossWorkerCounts) {
  const std::string csv = EventCsv(3000);
  // Worker count 0 is the legacy serial row-at-a-time path; 1/2/8 exercise
  // the pipeline. All four must produce byte-identical physical layout:
  // same slice assignment (round-robin order), same column content, same
  // zone-map runs — only then is parallel loading a pure speedup.
  const size_t worker_counts[] = {0, 1, 2, 8};
  std::vector<std::string> fingerprints;
  for (size_t workers : worker_counts) {
    SystemOptions options;
    options.replication_batch_size = 0;
    IdaaSystem sys(options);
    ASSERT_TRUE(sys.Execute("CREATE TABLE ev (id INT NOT NULL, "
                               "tag VARCHAR, score DOUBLE) IN ACCELERATOR")
                    .ok());
    loader::CsvStringSource source(csv, EventSchema());
    loader::LoadOptions lo;
    lo.batch_size = 128;
    lo.num_workers = workers;
    auto report = sys.loader().Load("ev", &source, lo);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->rows_loaded, 3000u);
    EXPECT_EQ(report->workers, workers);
    fingerprints.push_back(TableFingerprint(sys.accelerator(), "EV"));
  }
  for (size_t i = 1; i < fingerprints.size(); ++i) {
    EXPECT_EQ(fingerprints[0], fingerprints[i])
        << "worker count " << worker_counts[i]
        << " produced different physical state than serial load";
  }
}

TEST_F(LoadPipelineTest, BitIdenticalWithHashDistribution) {
  const std::string csv = EventCsv(2000);
  std::vector<std::string> fingerprints;
  for (size_t workers : {1u, 8u}) {
    SystemOptions options;
    options.replication_batch_size = 0;
    IdaaSystem sys(options);
    ASSERT_TRUE(sys.Execute("CREATE TABLE evd (id INT NOT NULL, "
                               "tag VARCHAR, score DOUBLE) IN ACCELERATOR "
                               "DISTRIBUTE BY (id)")
                    .ok());
    loader::CsvStringSource source(csv, EventSchema());
    loader::LoadOptions lo;
    lo.batch_size = 64;
    lo.num_workers = workers;
    ASSERT_TRUE(sys.loader().Load("evd", &source, lo).ok());
    fingerprints.push_back(TableFingerprint(sys.accelerator(), "EVD"));
  }
  EXPECT_EQ(fingerprints[0], fingerprints[1]);
}

TEST_F(LoadPipelineTest, BackpressureBoundsQueuedBatches) {
  ASSERT_TRUE(system_->Execute("CREATE TABLE bp (id INT NOT NULL, "
                                  "tag VARCHAR, score DOUBLE) IN ACCELERATOR")
                  .ok());
  loader::CsvStringSource source(EventCsv(1000), EventSchema());
  loader::LoadOptions lo;
  lo.batch_size = 8;  // 125 batches through the pipeline
  lo.num_workers = 8;
  lo.queue_depth = 3;
  auto report = system_->loader().Load("bp", &source, lo);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->rows_loaded, 1000u);
  EXPECT_EQ(report->batches, 125u);
  EXPECT_GT(report->peak_queued_batches, 0u);
  EXPECT_LE(report->peak_queued_batches, lo.queue_depth)
      << "bounded queues must hold at most queue_depth batches";
  EXPECT_EQ(Count("bp"), 1000);
}

// ---------------------------------------------------------------------------
// Reject policy
// ---------------------------------------------------------------------------

constexpr char kDirtyCsv[] =
    "1,a,0.5\n"
    "oops,a,0.5\n"   // record 1: bad INTEGER
    "3,b,0.25\n"
    "4,c,bad\n"      // record 3: bad DOUBLE
    "5,d\n"          // record 4: arity mismatch
    "6,e,1.5\n";

TEST_F(LoadPipelineTest, RejectBudgetZeroAbortsOnFirstBadRecord) {
  ASSERT_TRUE(system_->Execute("CREATE TABLE r0 (id INT NOT NULL, "
                                  "tag VARCHAR, score DOUBLE) IN ACCELERATOR")
                  .ok());
  loader::CsvStringSource source(kDirtyCsv, EventSchema());
  loader::LoadOptions lo;  // max_rejects defaults to 0
  auto report = system_->loader().Load("r0", &source, lo);
  EXPECT_FALSE(report.ok());
}

TEST_F(LoadPipelineTest, RejectBudgetDivertsUpToMax) {
  ASSERT_TRUE(system_->Execute("CREATE TABLE r3 (id INT NOT NULL, "
                                  "tag VARCHAR, score DOUBLE) IN ACCELERATOR")
                  .ok());
  loader::CsvStringSource source(kDirtyCsv, EventSchema());
  loader::LoadOptions lo;
  lo.max_rejects = 3;
  lo.batch_size = 2;
  auto report = system_->loader().Load("r3", &source, lo);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->rows_loaded, 3u);
  EXPECT_EQ(report->rows_rejected, 3u);
  ASSERT_EQ(report->reject_samples.size(), 3u);
  EXPECT_EQ(report->reject_samples[0].record_index, 1u);
  EXPECT_EQ(report->reject_samples[0].raw, "oops,a,0.5");
  EXPECT_EQ(report->reject_samples[1].record_index, 3u);
  EXPECT_EQ(report->reject_samples[2].record_index, 4u);
  EXPECT_EQ(Count("r3"), 3);
  EXPECT_EQ(system_->metrics().Get(metric::kLoaderRowsRejected), 3u);
}

TEST_F(LoadPipelineTest, RejectBudgetExceededAborts) {
  ASSERT_TRUE(system_->Execute("CREATE TABLE r2 (id INT NOT NULL, "
                                  "tag VARCHAR, score DOUBLE) IN ACCELERATOR")
                  .ok());
  loader::CsvStringSource source(kDirtyCsv, EventSchema());
  loader::LoadOptions lo;
  lo.max_rejects = 2;  // third bad record blows the budget
  auto report = system_->loader().Load("r2", &source, lo);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.status().message().find("max_rejects"), std::string::npos);
}

TEST_F(LoadPipelineTest, UnlimitedRejectsNeverAborts) {
  ASSERT_TRUE(system_->Execute("CREATE TABLE ru (id INT NOT NULL, "
                                  "tag VARCHAR, score DOUBLE) IN ACCELERATOR")
                  .ok());
  // Every record bad except one.
  loader::CsvStringSource source("x,a,1\ny,b,2\n7,c,3\nz,d,4\n",
                                 EventSchema());
  loader::LoadOptions lo;
  lo.max_rejects = loader::kUnlimitedRejects;
  auto report = system_->loader().Load("ru", &source, lo);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->rows_loaded, 1u);
  EXPECT_EQ(report->rows_rejected, 3u);
}

TEST_F(LoadPipelineTest, RejectFileRecordsRawRecordsAndErrors) {
  ASSERT_TRUE(system_->Execute("CREATE TABLE rf (id INT NOT NULL, "
                                  "tag VARCHAR, score DOUBLE) IN ACCELERATOR")
                  .ok());
  const std::string path = "loader_pipeline_rejects.csv";
  loader::CsvStringSource source(kDirtyCsv, EventSchema());
  loader::LoadOptions lo;
  lo.max_rejects = loader::kUnlimitedRejects;
  lo.reject_file = path;
  auto report = system_->loader().Load("rf", &source, lo);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  in.close();
  std::remove(path.c_str());
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("oops"), std::string::npos);
  EXPECT_EQ(lines[0].substr(0, 2), "1,");  // leading record index
}

// ---------------------------------------------------------------------------
// Atomic vs restartable commit
// ---------------------------------------------------------------------------

TEST_F(LoadPipelineTest, AtomicModeRollsBackDirectLoad) {
  ASSERT_TRUE(system_->Execute("CREATE TABLE at (id INT NOT NULL, "
                                  "tag VARCHAR, score DOUBLE) IN ACCELERATOR")
                  .ok());
  std::string csv = EventCsv(100);
  csv += "boom,x,1\n";  // bad record in the final batch
  loader::CsvStringSource source(csv, EventSchema());
  loader::LoadOptions lo;
  lo.commit_per_batch = false;  // all-or-nothing
  lo.batch_size = 10;
  auto report = system_->loader().Load("at", &source, lo);
  EXPECT_FALSE(report.ok());
  // MVCC: the aborted transaction's rows are invisible — no partial load.
  EXPECT_EQ(Count("at"), 0);
}

TEST_F(LoadPipelineTest, AtomicModeRollsBackDb2Load) {
  ASSERT_TRUE(system_->Execute("CREATE TABLE atd (n INT NOT NULL)").ok());
  Schema schema({{"N", DataType::kInteger, false}});
  loader::CsvStringSource source("1\n2\nnope\n4\n", schema);
  loader::LoadOptions lo;
  lo.commit_per_batch = false;
  lo.batch_size = 1;
  auto report = system_->loader().Load("atd", &source, lo);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(Count("atd"), 0);
}

TEST_F(LoadPipelineTest, AtomicModeCommitsAllOnSuccess) {
  ASSERT_TRUE(system_->Execute("CREATE TABLE ats (id INT NOT NULL, "
                                  "tag VARCHAR, score DOUBLE) IN ACCELERATOR")
                  .ok());
  loader::CsvStringSource source(EventCsv(500), EventSchema());
  loader::LoadOptions lo;
  lo.commit_per_batch = false;
  lo.batch_size = 64;
  auto report = system_->loader().Load("ats", &source, lo);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->resume_token, 0u);  // atomic loads are not resumable
  EXPECT_EQ(Count("ats"), 500);
}

// ---------------------------------------------------------------------------
// Resume token (exactly-once re-run)
// ---------------------------------------------------------------------------

TEST_F(LoadPipelineTest, ResumeTokenLoadsExactlyOnce) {
  ASSERT_TRUE(
      system_->Execute("CREATE TABLE rs (n INT NOT NULL) IN ACCELERATOR")
          .ok());
  // 100 records, 10 per batch; record 35 (batch 3) is bad.
  std::ostringstream os;
  for (int i = 0; i < 100; ++i) {
    if (i == 35) {
      os << "bad\n";
    } else {
      os << i << "\n";
    }
  }
  const std::string csv = os.str();
  Schema schema({{"N", DataType::kInteger, false}});

  loader::LoadOptions lo;
  lo.batch_size = 10;
  lo.max_rejects = 0;
  loader::LoadProgress progress;
  lo.progress = &progress;
  {
    loader::CsvStringSource source(csv, schema);
    auto report = system_->loader().Load("rs", &source, lo);
    ASSERT_FALSE(report.ok());
  }
  // Batches 0-2 committed durably before the bad record aborted batch 3.
  EXPECT_EQ(progress.batches_committed.load(), 3u);
  EXPECT_EQ(progress.rows_committed.load(), 30u);
  EXPECT_EQ(Count("rs"), 30);

  // Re-run from the progress token, this time tolerating the bad record.
  loader::LoadOptions resume = lo;
  resume.resume_token = progress.batches_committed.load();
  resume.max_rejects = 1;
  loader::CsvStringSource source(csv, schema);
  auto report = system_->loader().Load("rs", &source, resume);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->batches_skipped, 3u);
  EXPECT_EQ(report->rows_loaded, 69u);  // batches 3..9 minus the reject
  EXPECT_EQ(report->rows_rejected, 1u);
  EXPECT_EQ(report->resume_token, 10u);

  // Exactly-once: every good record present exactly one time.
  auto rs = system_->Query("SELECT COUNT(*), COUNT(DISTINCT n) FROM rs");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->At(0, 0).AsInteger(), 99);
  EXPECT_EQ(rs->At(0, 1).AsInteger(), 99);
}

TEST_F(LoadPipelineTest, ResumeRequiresRestartableMode) {
  ASSERT_TRUE(
      system_->Execute("CREATE TABLE rr (n INT) IN ACCELERATOR").ok());
  Schema schema({{"N", DataType::kInteger, true}});
  loader::CsvStringSource source("1\n", schema);
  loader::LoadOptions lo;
  lo.resume_token = 2;
  lo.commit_per_batch = false;
  EXPECT_FALSE(system_->loader().Load("rr", &source, lo).ok());
  lo.commit_per_batch = true;
  lo.num_workers = 0;
  EXPECT_FALSE(system_->loader().Load("rr", &source, lo).ok());
}

// ---------------------------------------------------------------------------
// Retry/backoff across injected channel faults
// ---------------------------------------------------------------------------

TEST_F(LoadPipelineTest, RetriesRecoverFromTransientChannelFaults) {
  ASSERT_TRUE(system_->Execute("CREATE TABLE rt (id INT NOT NULL, "
                                  "tag VARCHAR, score DOUBLE) IN ACCELERATOR")
                  .ok());
  FaultSpec spec;
  spec.probability = 1.0;
  spec.code = StatusCode::kChannelError;
  spec.max_failures = 2;  // fails twice, then the link recovers
  system_->fault_injector().Arm(fault_site::kChannelToAccel, spec);

  loader::CsvStringSource source(EventCsv(200), EventSchema());
  loader::LoadOptions lo;
  lo.batch_size = 50;
  lo.retry.max_attempts = 4;
  lo.retry.initial_backoff_us = 50;
  auto report = system_->loader().Load("rt", &source, lo);
  system_->fault_injector().Reset();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->rows_loaded, 200u);
  EXPECT_EQ(report->retries, 2u);
  EXPECT_EQ(system_->metrics().Get(metric::kLoaderRetries), 2u);
  EXPECT_EQ(Count("rt"), 200);
}

TEST_F(LoadPipelineTest, NonColumnarTypesFallBackToRowPath) {
  // DATE is outside the columnar wire format; the load must fall back to
  // the row path and still succeed end to end.
  ASSERT_TRUE(system_->Execute("CREATE TABLE dts (id INT NOT NULL, "
                                  "d DATE) IN ACCELERATOR")
                  .ok());
  Schema schema(
      {{"ID", DataType::kInteger, false}, {"D", DataType::kDate, true}});
  loader::CsvStringSource source("1,2016-03-15\n2,2016-03-16\n3,\n", schema);
  auto report = system_->loader().Load("dts", &source);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->direct);
  EXPECT_FALSE(report->columnar);
  EXPECT_EQ(report->rows_loaded, 3u);
  EXPECT_EQ(Count("dts"), 3);
}

TEST_F(LoadPipelineTest, ReportRendersLoadSummary) {
  ASSERT_TRUE(system_->Execute("CREATE TABLE rep (id INT NOT NULL, "
                                  "tag VARCHAR, score DOUBLE) IN ACCELERATOR")
                  .ok());
  loader::CsvStringSource source(EventCsv(300), EventSchema());
  loader::LoadOptions lo;
  lo.batch_size = 100;
  auto report = system_->loader().Load("rep", &source, lo);
  ASSERT_TRUE(report.ok());
  const std::string text = report->Render();
  EXPECT_NE(text.find("direct-to-accelerator (columnar)"), std::string::npos);
  EXPECT_NE(text.find("rows: 300 loaded"), std::string::npos);
  EXPECT_NE(text.find("rows/s"), std::string::npos);
  EXPECT_NE(text.find("resume_token=3"), std::string::npos);
}

TEST_F(LoadPipelineTest, ViaDb2PipelineReplicatesLikeSerial) {
  ASSERT_TRUE(system_->Execute("CREATE TABLE vr (n INT)").ok());
  ASSERT_TRUE(
      system_->Execute("CALL SYSPROC.ACCEL_ADD_TABLES('vr')").ok());
  Schema schema({{"N", DataType::kInteger, true}});
  loader::CsvStringSource source("1\n2\n3\n4\n5\n", schema);
  loader::LoadOptions lo;
  lo.num_workers = 4;
  lo.batch_size = 2;
  auto report = system_->loader().Load("vr", &source, lo);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->direct);
  ASSERT_TRUE(system_->replication().Flush().ok());
  EXPECT_EQ(Count("vr"), 5);
}

}  // namespace
}  // namespace idaa
