// Tests for the extended surface: multiple connections, SET CURRENT QUERY
// ACCELERATION, EXPLAIN, ACCEL_LOAD_TABLES / ACCEL_GET_TABLES_INFO, the
// SUMMARIZE operator, and the cardinality-informed ENABLE heuristic.

#include <gtest/gtest.h>

#include "idaa/system.h"

namespace idaa {
namespace {

using federation::AccelerationMode;
using federation::Target;

// ---------------------------------------------------------------------------
// Connections
// ---------------------------------------------------------------------------

TEST(ConnectionTest, IndependentSessions) {
  IdaaSystem system;
  auto conn_a = system.NewConnection();
  auto conn_b = system.NewConnection();
  conn_a->SetUser("alice");
  EXPECT_EQ(conn_b->user(), governance::AuthorizationManager::kAdmin);
  conn_a->SetAccelerationMode(AccelerationMode::kNone);
  EXPECT_EQ(conn_b->acceleration_mode(), AccelerationMode::kEligible);
}

TEST(ConnectionTest, SnapshotIsolationBetweenConnectionsViaSql) {
  IdaaSystem system;
  ASSERT_TRUE(
      system.Execute("CREATE TABLE iso (x INT) IN ACCELERATOR").ok());
  ASSERT_TRUE(system.Execute("INSERT INTO iso VALUES (1)").ok());

  auto reader = system.NewConnection();
  auto writer = system.NewConnection();
  ASSERT_TRUE(reader->Begin().ok());
  auto before = reader->Query("SELECT COUNT(*) FROM iso");
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->At(0, 0).AsInteger(), 1);

  // Writer commits while the reader transaction stays open.
  ASSERT_TRUE(writer->Execute("INSERT INTO iso VALUES (2)").ok());

  auto during = reader->Query("SELECT COUNT(*) FROM iso");
  ASSERT_TRUE(during.ok());
  EXPECT_EQ(during->At(0, 0).AsInteger(), 1);  // snapshot stable
  ASSERT_TRUE(reader->Commit().ok());
  auto after = reader->Query("SELECT COUNT(*) FROM iso");
  EXPECT_EQ(after->At(0, 0).AsInteger(), 2);
}

TEST(ConnectionTest, UncommittedWritesInvisibleToOtherConnection) {
  IdaaSystem system;
  ASSERT_TRUE(
      system.Execute("CREATE TABLE w (x INT) IN ACCELERATOR").ok());
  auto writer = system.NewConnection();
  auto reader = system.NewConnection();
  ASSERT_TRUE(writer->Begin().ok());
  ASSERT_TRUE(writer->Execute("INSERT INTO w VALUES (1)").ok());
  // Writer sees its own uncommitted row; the reader does not.
  EXPECT_EQ(writer->Query("SELECT COUNT(*) FROM w")->At(0, 0).AsInteger(), 1);
  EXPECT_EQ(reader->Query("SELECT COUNT(*) FROM w")->At(0, 0).AsInteger(), 0);
  ASSERT_TRUE(writer->Commit().ok());
  EXPECT_EQ(reader->Query("SELECT COUNT(*) FROM w")->At(0, 0).AsInteger(), 1);
}

TEST(ConnectionTest, DestructorRollsBackOpenTransaction) {
  IdaaSystem system;
  ASSERT_TRUE(
      system.Execute("CREATE TABLE d (x INT) IN ACCELERATOR").ok());
  {
    auto conn = system.NewConnection();
    ASSERT_TRUE(conn->Begin().ok());
    ASSERT_TRUE(conn->Execute("INSERT INTO d VALUES (1)").ok());
    // Connection dropped without commit.
  }
  EXPECT_EQ(system.Query("SELECT COUNT(*) FROM d")->At(0, 0).AsInteger(), 0);
}

// ---------------------------------------------------------------------------
// SET CURRENT QUERY ACCELERATION
// ---------------------------------------------------------------------------

TEST(SetRegisterTest, ChangesRouting) {
  IdaaSystem system;
  ASSERT_TRUE(system.Execute("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(system.Execute("INSERT INTO t VALUES (1)").ok());
  ASSERT_TRUE(system.Execute("CALL SYSPROC.ACCEL_ADD_TABLES('t')").ok());

  ASSERT_TRUE(
      system.Execute("SET CURRENT QUERY ACCELERATION = NONE").ok());
  EXPECT_EQ(system.acceleration_mode(), AccelerationMode::kNone);
  auto r = system.Execute("SELECT COUNT(*) FROM t");
  EXPECT_EQ(r->routed_to, Target::kDb2);

  ASSERT_TRUE(
      system.Execute("SET CURRENT QUERY ACCELERATION = ALL").ok());
  r = system.Execute("SELECT COUNT(*) FROM t");
  EXPECT_EQ(r->routed_to, Target::kAccelerator);
}

TEST(SetRegisterTest, InvalidValueFails) {
  IdaaSystem system;
  auto r = system.Execute("SET CURRENT QUERY ACCELERATION = SOMETIMES");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kSyntaxError);
}

// ---------------------------------------------------------------------------
// EXPLAIN
// ---------------------------------------------------------------------------

class ExplainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        system_.Execute("CREATE TABLE t (id INT NOT NULL, v DOUBLE)").ok());
    ASSERT_TRUE(system_.Execute("INSERT INTO t VALUES (1, 1.0)").ok());
    ASSERT_TRUE(
        system_.Execute("CALL SYSPROC.ACCEL_ADD_TABLES('t')").ok());
  }

  std::string Aspect(const ResultSet& rs, const std::string& aspect) {
    for (const Row& row : rs.rows()) {
      if (row[0].AsVarchar() == aspect) return row[1].AsVarchar();
    }
    return "";
  }

  IdaaSystem system_;
};

TEST_F(ExplainTest, ReportsTargetAndDoesNotExecute) {
  auto r = system_.Execute("EXPLAIN SELECT SUM(v) FROM t");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(Aspect(r->rows, "TARGET"), "ACCELERATOR");
  EXPECT_NE(r->detail.find("not executed"), std::string::npos);
}

TEST_F(ExplainTest, ReportsSliceAggregation) {
  auto r = system_.Execute("EXPLAIN SELECT id, COUNT(*) FROM t GROUP BY id");
  ASSERT_TRUE(r.ok());
  EXPECT_NE(Aspect(r->rows, "AGGREGATION").find("data slices"),
            std::string::npos);
  // Expression keys force coordinator aggregation.
  r = system_.Execute(
      "EXPLAIN SELECT id % 2, COUNT(*) FROM t GROUP BY id % 2");
  ASSERT_TRUE(r.ok());
  EXPECT_NE(Aspect(r->rows, "AGGREGATION").find("coordinator"),
            std::string::npos);
}

TEST_F(ExplainTest, ReportsIndexAccessOnDb2) {
  system_.SetAccelerationMode(AccelerationMode::kNone);
  auto r = system_.Execute("EXPLAIN SELECT v FROM t WHERE id = 1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Aspect(r->rows, "TARGET"), "DB2");
  EXPECT_NE(Aspect(r->rows, "TABLE T").find("hash index"),
            std::string::npos);
  r = system_.Execute("EXPLAIN SELECT v FROM t WHERE v > 0.5");
  ASSERT_TRUE(r.ok());
  EXPECT_NE(Aspect(r->rows, "TABLE T").find("table scan"),
            std::string::npos);
}

TEST_F(ExplainTest, RequiresSelectPrivilege) {
  system_.SetUser("nobody");
  auto r = system_.Execute("EXPLAIN SELECT * FROM t");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotAuthorized());
}

// ---------------------------------------------------------------------------
// New procedures
// ---------------------------------------------------------------------------

TEST(ProcedureTest, AccelLoadTablesRepairsDivergence) {
  SystemOptions options;
  options.replication_batch_size = 0;
  IdaaSystem system(options);
  ASSERT_TRUE(system.Execute("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(system.Execute("CALL SYSPROC.ACCEL_ADD_TABLES('t')").ok());
  // Diverge: DB2 gets rows the replica never sees (no flush), then pending
  // changes are superseded by a reload.
  ASSERT_TRUE(system.Execute("INSERT INTO t VALUES (1), (2), (3)").ok());
  EXPECT_EQ(system.replication().PendingChanges(), 3u);
  system.SetAccelerationMode(federation::AccelerationMode::kEligible);
  EXPECT_EQ(system.Query("SELECT COUNT(*) FROM t")->At(0, 0).AsInteger(), 0);

  ASSERT_TRUE(system.Execute("CALL SYSPROC.ACCEL_LOAD_TABLES('t')").ok());
  EXPECT_EQ(system.Query("SELECT COUNT(*) FROM t")->At(0, 0).AsInteger(), 3);
  EXPECT_EQ(system.replication().PendingChanges(), 0u);
  // Incremental update keeps working afterwards.
  ASSERT_TRUE(system.Execute("INSERT INTO t VALUES (4)").ok());
  ASSERT_TRUE(system.replication().Flush().ok());
  EXPECT_EQ(system.Query("SELECT COUNT(*) FROM t")->At(0, 0).AsInteger(), 4);
}

TEST(ProcedureTest, AccelLoadTablesRejectsNonAccelerated) {
  IdaaSystem system;
  ASSERT_TRUE(system.Execute("CREATE TABLE plain (a INT)").ok());
  EXPECT_FALSE(
      system.Execute("CALL SYSPROC.ACCEL_LOAD_TABLES('plain')").ok());
  ASSERT_TRUE(
      system.Execute("CREATE TABLE aot (a INT) IN ACCELERATOR").ok());
  EXPECT_FALSE(
      system.Execute("CALL SYSPROC.ACCEL_LOAD_TABLES('aot')").ok());
}

TEST(ProcedureTest, GetTablesInfoListsEverything) {
  IdaaSystem system;
  ASSERT_TRUE(system.Execute("CREATE TABLE a (x INT)").ok());
  ASSERT_TRUE(system.Execute("INSERT INTO a VALUES (1), (2)").ok());
  ASSERT_TRUE(system.Execute("CALL SYSPROC.ACCEL_ADD_TABLES('a')").ok());
  ASSERT_TRUE(
      system.Execute("CREATE TABLE b (x INT) IN ACCELERATOR").ok());
  ASSERT_TRUE(system.Execute("CREATE TABLE c (x INT)").ok());

  auto rs = system.Query("CALL SYSPROC.ACCEL_GET_TABLES_INFO()");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->NumRows(), 3u);
  std::map<std::string, std::string> kinds;
  std::map<std::string, bool> replicated;
  for (const Row& row : rs->rows()) {
    kinds[row[0].AsVarchar()] = row[1].AsVarchar();
    replicated[row[0].AsVarchar()] = row[4].AsBoolean();
  }
  EXPECT_EQ(kinds["A"], "ACCELERATED");
  EXPECT_EQ(kinds["B"], "ACCELERATOR_ONLY");
  EXPECT_EQ(kinds["C"], "DB2_ONLY");
  EXPECT_TRUE(replicated["A"]);
  EXPECT_FALSE(replicated["B"]);
}

// ---------------------------------------------------------------------------
// SUMMARIZE operator
// ---------------------------------------------------------------------------

TEST(SummarizeTest, AuditsColumns) {
  IdaaSystem system;
  ASSERT_TRUE(system
                  .Execute("CREATE TABLE d (n INT, s VARCHAR) "
                              "IN ACCELERATOR")
                  .ok());
  ASSERT_TRUE(system
                  .Execute("INSERT INTO d VALUES (1, 'a'), (2, 'b'), "
                              "(3, 'a'), (NULL, NULL)")
                  .ok());
  auto r = system.Execute("CALL IDAA.SUMMARIZE('input=d')");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.NumRows(), 2u);
  // Column N: 3 values, 1 null, distinct 3, min 1 max 3, mean 2.
  const Row& n_row = r->rows.rows()[0];
  EXPECT_EQ(n_row[0].AsVarchar(), "N");
  EXPECT_EQ(n_row[2].AsInteger(), 3);
  EXPECT_EQ(n_row[3].AsInteger(), 1);
  EXPECT_EQ(n_row[4].AsInteger(), 3);
  EXPECT_EQ(n_row[5].AsVarchar(), "1");
  EXPECT_EQ(n_row[6].AsVarchar(), "3");
  EXPECT_DOUBLE_EQ(n_row[7].AsDouble(), 2.0);
  // Column S: strings — mean/stddev are NULL, distinct 2.
  const Row& s_row = r->rows.rows()[1];
  EXPECT_EQ(s_row[4].AsInteger(), 2);
  EXPECT_TRUE(s_row[7].is_null());
}

TEST(SummarizeTest, MaterializesOutputAot) {
  IdaaSystem system;
  ASSERT_TRUE(
      system.Execute("CREATE TABLE d (n INT) IN ACCELERATOR").ok());
  ASSERT_TRUE(system.Execute("INSERT INTO d VALUES (5)").ok());
  ASSERT_TRUE(
      system.Execute("CALL IDAA.SUMMARIZE('input=d', 'output=d_audit')")
          .ok());
  auto rs = system.Query("SELECT column, n FROM d_audit");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs->NumRows(), 1u);
}

// ---------------------------------------------------------------------------
// Cardinality-informed ENABLE heuristic
// ---------------------------------------------------------------------------

TEST(HeuristicTest, LargeScanOffloadsUnderEnable) {
  IdaaSystem system;
  system.federation().mutable_router().set_enable_row_threshold(100);
  ASSERT_TRUE(
      system.Execute("CREATE TABLE big (id INT NOT NULL, v DOUBLE)").ok());
  ASSERT_TRUE(system.Begin().ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(system
                    .Execute("INSERT INTO big VALUES (" +
                                std::to_string(i) + ", 1.0)")
                    .ok());
  }
  ASSERT_TRUE(system.Commit().ok());
  ASSERT_TRUE(system.Execute("CALL SYSPROC.ACCEL_ADD_TABLES('big')").ok());
  system.SetAccelerationMode(AccelerationMode::kEnable);

  // Non-analytical shape, but the scan is large: offload.
  auto wide = system.Execute("SELECT v FROM big WHERE v > 0.5");
  ASSERT_TRUE(wide.ok());
  EXPECT_EQ(wide->routed_to, Target::kAccelerator);
  EXPECT_NE(wide->detail.find("large scan"), std::string::npos);
  // Point lookup still goes to DB2 — same table, same mode.
  auto point = system.Execute("SELECT v FROM big WHERE id = 7");
  ASSERT_TRUE(point.ok());
  EXPECT_EQ(point->routed_to, Target::kDb2);
}

// ---------------------------------------------------------------------------
// Slow-query log
// ---------------------------------------------------------------------------

TEST(SlowQueryLogFeatureTest, FiresExactlyAtOrAboveThreshold) {
  // Deterministic threshold semantics, independent of wall-clock timing:
  // duration < threshold is skipped, duration == threshold and above are
  // recorded.
  IdaaSystem system;
  auto& log = system.slow_query_log();
  EXPECT_FALSE(log.enabled());
  log.set_threshold_us(100);
  EXPECT_FALSE(log.MaybeRecord("below", 99, 0, ""));
  EXPECT_TRUE(log.MaybeRecord("exact", 100, 0, ""));
  EXPECT_TRUE(log.MaybeRecord("above", 101, 0, ""));
  auto entries = log.Entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].sql, "exact");
  EXPECT_EQ(entries[1].sql, "above");
}

TEST(SlowQueryLogFeatureTest, RecordsTraceAndBoundaryBytesEndToEnd) {
  IdaaSystem system;
  ASSERT_TRUE(
      system.Execute("CREATE TABLE slow (a INT, b DOUBLE) IN ACCELERATOR")
          .ok());
  ASSERT_TRUE(
      system.Execute("INSERT INTO slow VALUES (1, 1.0), (2, 2.5)").ok());
  // Threshold 0: every statement qualifies, so the test is deterministic.
  system.slow_query_log().set_threshold_us(0);
  ASSERT_TRUE(system.Execute("SELECT SUM(b) FROM slow").ok());

  auto entries = system.slow_query_log().Entries();
  ASSERT_GE(entries.size(), 1u);
  const auto& entry = entries.back();
  EXPECT_EQ(entry.sql, "SELECT SUM(b) FROM slow");
  // The AOT select moved its statement text and result across the
  // DB2 <-> accelerator boundary.
  EXPECT_GT(entry.boundary_bytes, 0u);
  EXPECT_NE(entry.trace.find("statement"), std::string::npos);
  EXPECT_NE(entry.trace.find("xfer"), std::string::npos);
  EXPECT_NE(entry.trace.find("accel.execute"), std::string::npos);
}

}  // namespace
}  // namespace idaa
