// Tests for string utilities, CSV codec, schema, rows, metrics, RNG and
// the thread pool.

#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "common/csv.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/row.h"
#include "common/schema.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace idaa {
namespace {

// ---------------------------------------------------------------------------
// string_util
// ---------------------------------------------------------------------------

TEST(StringUtilTest, CaseConversion) {
  EXPECT_EQ(ToUpper("aBc9_x"), "ABC9_X");
  EXPECT_EQ(ToLower("AbC"), "abc");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t\n"), "");
}

TEST(StringUtilTest, SplitJoin) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Join({"x", "y"}, ", "), "x, y");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("abc", "ABC"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abcd"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
}

TEST(StringUtilTest, LikeMatch) {
  EXPECT_TRUE(LikeMatch("hello", "hello"));
  EXPECT_TRUE(LikeMatch("hello", "h%"));
  EXPECT_TRUE(LikeMatch("hello", "%llo"));
  EXPECT_TRUE(LikeMatch("hello", "h_llo"));
  EXPECT_TRUE(LikeMatch("hello", "%"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_FALSE(LikeMatch("hello", "h_lo"));
  EXPECT_FALSE(LikeMatch("hello", "hello_"));
  EXPECT_TRUE(LikeMatch("a%b", "a%b"));          // % in text matches itself
  EXPECT_TRUE(LikeMatch("abcabc", "%abc"));      // backtracking
  EXPECT_TRUE(LikeMatch("mississippi", "%ss%ppi"));
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%05.2f", 1.5), "01.50");
}

// ---------------------------------------------------------------------------
// CSV
// ---------------------------------------------------------------------------

TEST(CsvTest, SimpleLine) {
  auto fields = ParseCsvLine("a,b,c");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(*fields, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(CsvTest, QuotedFieldsWithCommasAndQuotes) {
  auto fields = ParseCsvLine(R"(x,"a,b","he said ""hi""",z)");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ((*fields)[1], "a,b");
  EXPECT_EQ((*fields)[2], "he said \"hi\"");
  EXPECT_EQ((*fields)[3], "z");
}

TEST(CsvTest, EmptyFields) {
  auto fields = ParseCsvLine(",,");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(fields->size(), 3u);
}

TEST(CsvTest, UnterminatedQuoteFails) {
  EXPECT_FALSE(ParseCsvLine("\"oops").ok());
}

TEST(CsvTest, FormatRoundTrip) {
  std::vector<std::string> fields = {"plain", "with,comma", "with\"quote",
                                     ""};
  auto parsed = ParseCsvLine(FormatCsvLine(fields));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, fields);
}

TEST(CsvTest, FieldsToTypedRow) {
  Schema schema({{"A", DataType::kInteger, true},
                 {"B", DataType::kDouble, true},
                 {"C", DataType::kVarchar, true}});
  auto row = CsvFieldsToRow({"1", "2.5", "x"}, schema);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[0].AsInteger(), 1);
  EXPECT_DOUBLE_EQ((*row)[1].AsDouble(), 2.5);
  EXPECT_EQ((*row)[2].AsVarchar(), "x");
}

TEST(CsvTest, EmptyFieldBecomesNull) {
  Schema schema({{"A", DataType::kInteger, true}});
  auto row = CsvFieldsToRow({""}, schema);
  ASSERT_TRUE(row.ok());
  EXPECT_TRUE((*row)[0].is_null());
}

TEST(CsvTest, DocumentParsing) {
  Schema schema({{"A", DataType::kInteger, true},
                 {"B", DataType::kVarchar, true}});
  auto rows = ParseCsvDocument("1,x\r\n2,y\n\n3,z\n", schema);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 3u);
  EXPECT_EQ((*rows)[2][1].AsVarchar(), "z");
}

TEST(CsvTest, ArityMismatchFails) {
  Schema schema({{"A", DataType::kInteger, true}});
  EXPECT_FALSE(CsvFieldsToRow({"1", "2"}, schema).ok());
}

// --- round-trip gaps: quoted empty vs NULL, trailing delimiter, CRLF ------

TEST(CsvTest, QuotedEmptyFieldIsNotNull) {
  auto fields = ParseCsvFields(R"(1,"",)");
  ASSERT_TRUE(fields.ok());
  ASSERT_EQ(fields->size(), 3u);
  EXPECT_TRUE((*fields)[1].quoted);
  EXPECT_TRUE((*fields)[1].text.empty());
  EXPECT_FALSE((*fields)[2].quoted);

  Schema schema({{"A", DataType::kInteger, true},
                 {"B", DataType::kVarchar, true},
                 {"C", DataType::kVarchar, true}});
  auto row = QuotedCsvFieldsToRow(*fields, schema);
  ASSERT_TRUE(row.ok());
  ASSERT_TRUE((*row)[1].is_varchar());
  EXPECT_TRUE((*row)[1].AsVarchar().empty());  // "" -> empty string
  EXPECT_TRUE((*row)[2].is_null());            // bare trailing comma -> NULL
}

TEST(CsvTest, TrailingDelimiterYieldsTrailingField) {
  auto fields = ParseCsvLine("a,b,");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(*fields, (std::vector<std::string>{"a", "b", ""}));
}

TEST(CsvTest, RowRoundTripTable) {
  Schema schema({{"ID", DataType::kInteger, true},
                 {"NAME", DataType::kVarchar, true},
                 {"SCORE", DataType::kDouble, true}});
  const std::vector<Row> cases = {
      {Value::Integer(1), Value::Varchar("plain"), Value::Double(0.5)},
      // NULL vs empty string must survive the text round trip distinctly.
      {Value::Integer(2), Value::Null(), Value::Null()},
      {Value::Integer(3), Value::Varchar(""), Value::Double(-1.25)},
      // Delimiters, quotes, CR, LF inside a field.
      {Value::Integer(4), Value::Varchar("a,b"), Value::Double(2.0)},
      {Value::Integer(5), Value::Varchar("say \"hi\""), Value::Double(0)},
      {Value::Integer(6), Value::Varchar("line1\nline2"), Value::Double(7)},
      {Value::Integer(7), Value::Varchar("cr\rlf"), Value::Double(8)},
      // Trailing NULL (renders as a bare trailing delimiter).
      {Value::Null(), Value::Varchar("x"), Value::Null()},
  };
  for (const Row& original : cases) {
    const std::string record = FormatCsvRow(original);
    auto fields = ParseCsvFields(record);
    ASSERT_TRUE(fields.ok()) << record;
    auto row = QuotedCsvFieldsToRow(*fields, schema);
    ASSERT_TRUE(row.ok()) << record;
    EXPECT_EQ(*row, original) << "round trip changed: " << record;
  }
}

TEST(CsvTest, RecordScannerHandlesCrlfAndEmbeddedNewlines) {
  const std::string body =
      "1,a\r\n"
      "2,\"two\nlines\"\r\n"
      "\r\n"          // blank record: skipped
      "3,\"\"\n"      // quoted empty field: record survives
      "4,tail";       // no final newline
  CsvRecordScanner scanner(&body);
  std::vector<std::string> records;
  while (true) {
    auto next = scanner.Next();
    ASSERT_TRUE(next.ok());
    if (!next->has_value()) break;
    records.push_back(std::move(**next));
  }
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records[0], "1,a");
  EXPECT_EQ(records[1], "2,\"two\nlines\"");
  EXPECT_EQ(records[2], "3,\"\"");
  EXPECT_EQ(records[3], "4,tail");
}

TEST(CsvTest, RecordScannerErrorsOnUnterminatedQuote) {
  const std::string body = "1,\"open";
  CsvRecordScanner scanner(&body);
  EXPECT_FALSE(scanner.Next().ok());
}

TEST(CsvTest, DocumentRoundTripPreservesNullVsEmpty) {
  Schema schema({{"A", DataType::kVarchar, true}});
  std::string body;
  body += FormatCsvRow({Value::Null()}) + "\n";      // "" unquoted -> blank
  body += FormatCsvRow({Value::Varchar("")}) + "\n";  // quoted ""
  // A blank line alone would be skipped by the scanner; the NULL row must
  // therefore render as a *quoted empty line marker*... it cannot: a NULL
  // row of one column is an empty record. Documented behavior: such a
  // record is skipped, so single-column NULL rows do not round-trip
  // through text. Multi-column rows always do (tested above).
  auto rows = ParseCsvDocument(body, schema);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_TRUE((*rows)[0][0].is_varchar());
  EXPECT_TRUE((*rows)[0][0].AsVarchar().empty());
}

// ---------------------------------------------------------------------------
// Schema / Row
// ---------------------------------------------------------------------------

TEST(SchemaTest, FindColumnCaseInsensitive) {
  Schema schema({{"ID", DataType::kInteger, false},
                 {"Name", DataType::kVarchar, true}});
  EXPECT_EQ(*schema.ColumnIndex("id"), 0u);
  EXPECT_EQ(*schema.ColumnIndex("NAME"), 1u);
  EXPECT_FALSE(schema.ColumnIndex("missing").ok());
}

TEST(SchemaTest, AddColumnRejectsDuplicates) {
  Schema schema;
  EXPECT_TRUE(schema.AddColumn({"A", DataType::kInteger, true}).ok());
  EXPECT_FALSE(schema.AddColumn({"a", DataType::kDouble, true}).ok());
}

TEST(SchemaTest, ValidateRow) {
  Schema schema({{"A", DataType::kInteger, false},
                 {"B", DataType::kVarchar, true}});
  EXPECT_TRUE(
      schema.ValidateRow({Value::Integer(1), Value::Varchar("x")}).ok());
  EXPECT_TRUE(schema.ValidateRow({Value::Integer(1), Value::Null()}).ok());
  // NOT NULL violation
  EXPECT_FALSE(schema.ValidateRow({Value::Null(), Value::Null()}).ok());
  // type mismatch
  EXPECT_FALSE(
      schema.ValidateRow({Value::Varchar("1"), Value::Null()}).ok());
  // arity
  EXPECT_FALSE(schema.ValidateRow({Value::Integer(1)}).ok());
}

TEST(RowTest, CoerceRowToSchema) {
  Schema schema({{"A", DataType::kDouble, true},
                 {"B", DataType::kInteger, true}});
  auto row = CoerceRowToSchema({Value::Integer(1), Value::Integer(2)}, schema);
  ASSERT_TRUE(row.ok());
  EXPECT_TRUE((*row)[0].is_double());
  EXPECT_TRUE((*row)[1].is_integer());
}

TEST(ResultSetTest, ByteSizeAndToString) {
  Schema schema({{"A", DataType::kInteger, true},
                 {"B", DataType::kVarchar, true}});
  ResultSet rs(schema);
  rs.Append({Value::Integer(1), Value::Varchar("xy")});
  EXPECT_EQ(rs.NumRows(), 1u);
  EXPECT_EQ(rs.ByteSize(), 8u + 6u);
  std::string text = rs.ToString();
  EXPECT_NE(text.find("A"), std::string::npos);
  EXPECT_NE(text.find("xy"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST(MetricsTest, AddAndGet) {
  MetricsRegistry metrics;
  EXPECT_EQ(metrics.Get("x"), 0u);
  metrics.Add("x", 5);
  metrics.Increment("x");
  EXPECT_EQ(metrics.Get("x"), 6u);
}

TEST(MetricsTest, SnapshotSorted) {
  MetricsRegistry metrics;
  metrics.Add("b", 2);
  metrics.Add("a", 1);
  auto snap = metrics.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].first, "a");
}

TEST(MetricsTest, DeltaTracksOnlyNewActivity) {
  MetricsRegistry metrics;
  metrics.Add("x", 10);
  MetricsDelta delta(metrics);
  metrics.Add("x", 3);
  metrics.Add("y", 7);
  EXPECT_EQ(delta.Delta("x"), 3u);
  EXPECT_EQ(delta.Delta("y"), 7u);
  EXPECT_EQ(delta.Delta("z"), 0u);
}

// ---------------------------------------------------------------------------
// Rng / Zipf
// ---------------------------------------------------------------------------

TEST(RngTest, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(0, 1000), b.Uniform(0, 1000));
  }
}

TEST(RngTest, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(5, 10);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 10);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(ZipfTest, SamplesInRangeAndSkewed) {
  ZipfGenerator zipf(100, 1.2, 3);
  size_t ones = 0;
  for (int i = 0; i < 10000; ++i) {
    uint64_t v = zipf.Next();
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 100u);
    if (v == 1) ++ones;
  }
  // Rank 1 should dominate under skew 1.2 (expected ~19%).
  EXPECT_GT(ones, 1000u);
}

TEST(ZipfTest, ZeroSkewIsRoughlyUniform) {
  ZipfGenerator zipf(10, 0.0, 3);
  std::vector<size_t> counts(11, 0);
  for (int i = 0; i < 10000; ++i) ++counts[zipf.Next()];
  for (int r = 1; r <= 10; ++r) {
    EXPECT_GT(counts[r], 700u);
    EXPECT_LT(counts[r], 1300u);
  }
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, ParallelForRunsAll) {
  ThreadPool pool(4);
  std::atomic<int> sum{0};
  pool.ParallelFor(100, [&](size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPoolTest, SubmitReturnsFuture) {
  ThreadPool pool(2);
  std::atomic<bool> ran{false};
  auto f = pool.Submit([&] { ran = true; });
  f.get();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> count{0};
  pool.ParallelFor(10, [&](size_t) { ++count; });
  EXPECT_EQ(count.load(), 10);
}

}  // namespace
}  // namespace idaa
