// Engine equivalence property tests: every query in the supported subset
// must return the same result from the DB2 volcano executor and from the
// accelerator's parallel columnar executor. The routing is flipped via the
// acceleration mode (NONE = DB2, ELIGIBLE = accelerator), exactly like the
// CURRENT QUERY ACCELERATION register in the product.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "common/string_util.h"
#include "idaa/system.h"

namespace idaa {
namespace {

/// Sorted row-text rendering for order-insensitive comparison. Doubles are
/// rounded to 9 significant digits: SUM/AVG over doubles legitimately
/// differ in the last bits between the two engines (different accumulation
/// order across data slices).
/// The equivalence runs re-execute the same SELECT with only the batch
/// path toggled; the result cache would serve the re-run from the first
/// execution and make the comparison vacuous, so it stays off here.
federation::ExecOptions NoResultCache() {
  federation::ExecOptions opts;
  opts.use_result_cache = false;
  return opts;
}

std::vector<std::string> Canonical(const ResultSet& rs, bool keep_order) {
  std::vector<std::string> lines;
  lines.reserve(rs.NumRows());
  for (const Row& row : rs.rows()) {
    std::string line;
    for (const Value& v : row) {
      if (v.is_double()) {
        line += StrFormat("%.9g", v.AsDouble());
      } else {
        line += v.ToString();
      }
      line += "|";
    }
    lines.push_back(std::move(line));
  }
  if (!keep_order) std::sort(lines.begin(), lines.end());
  return lines;
}

class EquivalenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    system_ = new IdaaSystem();
    Seed(*system_);
  }
  static void TearDownTestSuite() {
    delete system_;
    system_ = nullptr;
  }

  static void Seed(IdaaSystem& system) {
    ASSERT_TRUE(system
                    .Execute("CREATE TABLE orders (id INT NOT NULL, "
                                "cust INT, amount DOUBLE, region VARCHAR, "
                                "odate DATE)")
                    .ok());
    ASSERT_TRUE(system
                    .Execute("CREATE TABLE customers (cid INT NOT NULL, "
                                "name VARCHAR, tier VARCHAR)")
                    .ok());
    Rng rng(2016);
    const char* regions[] = {"NORTH", "SOUTH", "EAST", "WEST"};
    const char* tiers[] = {"GOLD", "SILVER", "BRONZE"};
    for (int c = 0; c < 20; ++c) {
      std::string name = c % 7 == 0 ? "NULL" : "'cust_" + std::to_string(c) + "'";
      ASSERT_TRUE(system
                      .Execute(StrFormat(
                          "INSERT INTO customers VALUES (%d, %s, '%s')", c,
                          name.c_str(), tiers[c % 3]))
                      .ok());
    }
    for (int i = 0; i < 300; ++i) {
      int cust = static_cast<int>(rng.Uniform(0, 24));  // some dangling
      double amount = rng.UniformDouble(0, 1000);
      std::string amount_text =
          i % 11 == 0 ? "NULL" : StrFormat("%.2f", amount);
      ASSERT_TRUE(
          system
              .Execute(StrFormat(
                  "INSERT INTO orders VALUES (%d, %d, %s, '%s', DATE "
                  "'2016-0%d-1%d')",
                  i, cust, amount_text.c_str(),
                  regions[rng.Uniform(0, 3)],
                  static_cast<int>(rng.Uniform(1, 9)),
                  static_cast<int>(rng.Uniform(0, 8))))
              .ok());
    }
    ASSERT_TRUE(
        system.Execute("CALL SYSPROC.ACCEL_ADD_TABLES('orders')").ok());
    ASSERT_TRUE(
        system.Execute("CALL SYSPROC.ACCEL_ADD_TABLES('customers')").ok());
    auto flushed = system.replication().Flush();
    ASSERT_TRUE(flushed.ok());
  }

  /// Runs the query on both engines — and on the accelerator a second time
  /// with the vectorized batch path disabled — and expects identical
  /// results from all three. Every query in the suite is therefore also a
  /// batch-vs-row-at-a-time differential.
  void ExpectEquivalent(const std::string& sql) {
    bool ordered = ToUpper(sql).find("ORDER BY") != std::string::npos;

    system_->SetAccelerationMode(federation::AccelerationMode::kNone);
    auto db2 = system_->Execute(sql, NoResultCache());
    ASSERT_TRUE(db2.ok()) << sql << "\nDB2: " << db2.status().ToString();
    EXPECT_EQ(db2->routed_to, federation::Target::kDb2) << sql;

    system_->SetAccelerationMode(federation::AccelerationMode::kEligible);
    auto accel = system_->Execute(sql, NoResultCache());
    ASSERT_TRUE(accel.ok()) << sql << "\nACCEL: " << accel.status().ToString();
    EXPECT_EQ(accel->routed_to, federation::Target::kAccelerator) << sql;

    system_->accelerator().SetBatchPathEnabled(false);
    auto row_path = system_->Execute(sql, NoResultCache());
    system_->accelerator().SetBatchPathEnabled(true);
    ASSERT_TRUE(row_path.ok())
        << sql << "\nROW: " << row_path.status().ToString();

    EXPECT_EQ(Canonical(db2->rows, ordered),
              Canonical(accel->rows, ordered))
        << sql;
    EXPECT_EQ(Canonical(row_path->rows, ordered),
              Canonical(accel->rows, ordered))
        << "batch path diverged from row path: " << sql;
    EXPECT_EQ(db2->rows.schema().NumColumns(),
              accel->rows.schema().NumColumns());
  }

  static IdaaSystem* system_;
};

IdaaSystem* EquivalenceTest::system_ = nullptr;

class QueryEquivalence : public EquivalenceTest,
                         public ::testing::WithParamInterface<const char*> {};

TEST_P(QueryEquivalence, SameResultOnBothEngines) {
  ExpectEquivalent(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Queries, QueryEquivalence,
    ::testing::Values(
        // scans + predicates
        "SELECT * FROM orders WHERE amount > 500",
        "SELECT id, amount FROM orders WHERE amount BETWEEN 100 AND 200",
        "SELECT id FROM orders WHERE region = 'NORTH' AND amount > 900",
        "SELECT id FROM orders WHERE region IN ('NORTH', 'SOUTH') AND id < 50",
        "SELECT id FROM orders WHERE amount IS NULL",
        "SELECT id FROM orders WHERE amount IS NOT NULL AND id % 10 = 3",
        "SELECT id FROM orders WHERE region LIKE 'N%'",
        "SELECT id FROM orders WHERE NOT (region = 'EAST' OR region = 'WEST')",
        "SELECT id FROM orders WHERE odate >= DATE '2016-05-01'",
        // expressions
        "SELECT id, amount * 1.1 AS gross, UPPER(region) FROM orders "
        "WHERE id < 20",
        "SELECT id, CASE WHEN amount > 500 THEN 'big' ELSE 'small' END "
        "FROM orders WHERE id < 30",
        "SELECT id, COALESCE(amount, 0.0) FROM orders WHERE id < 40",
        "SELECT CAST(amount AS INTEGER) FROM orders WHERE id < 25",
        // aggregation
        "SELECT COUNT(*) FROM orders",
        "SELECT COUNT(amount), SUM(amount), AVG(amount), MIN(amount), "
        "MAX(amount) FROM orders",
        "SELECT region, COUNT(*) AS n FROM orders GROUP BY region",
        "SELECT region, SUM(amount) FROM orders GROUP BY region "
        "HAVING SUM(amount) > 1000",
        "SELECT cust, COUNT(*) FROM orders GROUP BY cust",
        "SELECT region, id % 2, AVG(amount) FROM orders GROUP BY region, "
        "id % 2",
        "SELECT COUNT(DISTINCT region) FROM orders",
        "SELECT STDDEV(amount), VARIANCE(amount) FROM orders",
        // slice-aggregation stressors: NULLs in keys, expression keys,
        // ORDER BY + LIMIT after slice-side aggregation
        "SELECT name, COUNT(*) FROM customers GROUP BY name",
        "SELECT amount, COUNT(*) FROM orders GROUP BY amount",
        "SELECT cust % 5, COUNT(*) FROM orders GROUP BY cust % 5",
        "SELECT region, MIN(amount), MAX(amount) FROM orders "
        "GROUP BY region ORDER BY region LIMIT 2",
        "SELECT region, COUNT(*) FROM orders WHERE id BETWEEN 10 AND 250 "
        "GROUP BY region",
        "SELECT MIN(region), MAX(region) FROM orders",
        // distinct / order / limit
        "SELECT DISTINCT region FROM orders",
        "SELECT id, amount FROM orders ORDER BY amount DESC, id ASC LIMIT 10",
        "SELECT region, COUNT(*) FROM orders GROUP BY region ORDER BY 2 DESC",
        "SELECT id FROM orders ORDER BY id LIMIT 5",
        // joins
        "SELECT o.id, c.name FROM orders o JOIN customers c ON o.cust = c.cid "
        "WHERE o.amount > 800",
        "SELECT c.tier, COUNT(*), SUM(o.amount) FROM orders o "
        "JOIN customers c ON o.cust = c.cid GROUP BY c.tier",
        "SELECT o.id FROM orders o LEFT JOIN customers c ON o.cust = c.cid "
        "WHERE c.cid IS NULL",
        "SELECT o.id, c.name FROM orders o LEFT JOIN customers c "
        "ON o.cust = c.cid AND c.tier = 'GOLD' WHERE o.id < 30",
        "SELECT COUNT(*) FROM orders o CROSS JOIN customers c "
        "WHERE o.id < 3 AND c.cid < 3",
        "SELECT o1.id, o2.id FROM orders o1 JOIN orders o2 "
        "ON o1.cust = o2.cust AND o1.id < o2.id WHERE o1.id < 10",
        // three-way join
        "SELECT c.tier, COUNT(*) FROM orders o "
        "JOIN customers c ON o.cust = c.cid "
        "JOIN orders o2 ON o2.id = o.id GROUP BY c.tier"));

// Randomized predicate fuzzing: DB2 and accelerator must agree on 60
// generated filters (exercises zone maps + vectorized scan paths against
// the row-at-a-time reference).
TEST_F(EquivalenceTest, RandomPredicateFuzz) {
  Rng rng(777);
  const char* regions[] = {"NORTH", "SOUTH", "EAST", "WEST"};
  const char* cols[] = {"id", "cust", "amount"};
  const char* ops[] = {"<", "<=", ">", ">=", "=", "<>"};
  for (int i = 0; i < 60; ++i) {
    std::string pred;
    int conjuncts = static_cast<int>(rng.Uniform(1, 3));
    for (int c = 0; c < conjuncts; ++c) {
      if (c > 0) pred += rng.Bernoulli(0.7) ? " AND " : " OR ";
      if (rng.Bernoulli(0.25)) {
        pred += StrFormat("region %s '%s'",
                          rng.Bernoulli(0.5) ? "=" : "<>",
                          regions[rng.Uniform(0, 3)]);
      } else {
        const char* col = cols[rng.Uniform(0, 2)];
        const char* op = ops[rng.Uniform(0, 5)];
        pred += StrFormat("%s %s %d", col, op,
                          static_cast<int>(rng.Uniform(-10, 900)));
      }
    }
    ExpectEquivalent("SELECT id, cust, amount, region FROM orders WHERE " +
                     pred);
  }
}

}  // namespace
}  // namespace idaa
