// Edge-case execution tests: empty inputs, NULL ordering, groom service,
// concurrent sessions, and cross-engine transaction scenarios.

#include <gtest/gtest.h>

#include <thread>

#include "accel/groom.h"
#include "idaa/system.h"

namespace idaa {
namespace {

TEST(ExecutionEdgeTest, TableLessSelect) {
  IdaaSystem system;
  auto rs = system.Query("SELECT 1 + 1, 'x' || 'y', ABS(-2.5)");
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->NumRows(), 1u);
  EXPECT_EQ(rs->At(0, 0).AsInteger(), 2);
  EXPECT_EQ(rs->At(0, 1).AsVarchar(), "xy");
  EXPECT_DOUBLE_EQ(rs->At(0, 2).AsDouble(), 2.5);
}

TEST(ExecutionEdgeTest, EmptyTableQueries) {
  IdaaSystem system;
  ASSERT_TRUE(system.Execute("CREATE TABLE e (a INT, b VARCHAR)").ok());
  auto rs = system.Query("SELECT * FROM e");
  EXPECT_EQ(rs->NumRows(), 0u);
  // Global aggregate over empty input: one row, COUNT 0, SUM NULL.
  rs = system.Query("SELECT COUNT(*), SUM(a) FROM e");
  ASSERT_EQ(rs->NumRows(), 1u);
  EXPECT_EQ(rs->At(0, 0).AsInteger(), 0);
  EXPECT_TRUE(rs->At(0, 1).is_null());
  // Grouped aggregate over empty input: zero rows.
  rs = system.Query("SELECT b, COUNT(*) FROM e GROUP BY b");
  EXPECT_EQ(rs->NumRows(), 0u);
}

TEST(ExecutionEdgeTest, NullsSortHigh) {
  IdaaSystem system;
  ASSERT_TRUE(system.Execute("CREATE TABLE n (a INT)").ok());
  ASSERT_TRUE(
      system.Execute("INSERT INTO n VALUES (2), (NULL), (1)").ok());
  auto asc = system.Query("SELECT a FROM n ORDER BY a ASC");
  ASSERT_EQ(asc->NumRows(), 3u);
  EXPECT_EQ(asc->At(0, 0).AsInteger(), 1);
  EXPECT_TRUE(asc->At(2, 0).is_null());  // NULL last ascending (DB2)
  auto desc = system.Query("SELECT a FROM n ORDER BY a DESC");
  EXPECT_TRUE(desc->At(0, 0).is_null());  // NULL first descending
}

TEST(ExecutionEdgeTest, LimitZeroAndOversized) {
  IdaaSystem system;
  ASSERT_TRUE(system.Execute("CREATE TABLE l (a INT)").ok());
  ASSERT_TRUE(system.Execute("INSERT INTO l VALUES (1), (2)").ok());
  EXPECT_EQ(system.Query("SELECT a FROM l LIMIT 0")->NumRows(), 0u);
  EXPECT_EQ(system.Query("SELECT a FROM l LIMIT 100")->NumRows(), 2u);
}

TEST(ExecutionEdgeTest, DistinctOnNulls) {
  IdaaSystem system;
  ASSERT_TRUE(system.Execute("CREATE TABLE d (a INT)").ok());
  ASSERT_TRUE(
      system.Execute("INSERT INTO d VALUES (1), (NULL), (NULL), (1)").ok());
  // SQL DISTINCT treats NULLs as one group.
  EXPECT_EQ(system.Query("SELECT DISTINCT a FROM d")->NumRows(), 2u);
}

TEST(ExecutionEdgeTest, GroupByNullKey) {
  IdaaSystem system;
  ASSERT_TRUE(system.Execute("CREATE TABLE g (k VARCHAR, v INT)").ok());
  ASSERT_TRUE(system
                  .Execute("INSERT INTO g VALUES ('a', 1), (NULL, 2), "
                              "(NULL, 3)")
                  .ok());
  auto rs = system.Query("SELECT k, SUM(v) FROM g GROUP BY k");
  EXPECT_EQ(rs->NumRows(), 2u);  // NULLs form one group
}

TEST(ExecutionEdgeTest, RuntimeErrorSurfacesNotCrashes) {
  IdaaSystem system;
  ASSERT_TRUE(system.Execute("CREATE TABLE z (a INT)").ok());
  ASSERT_TRUE(system.Execute("INSERT INTO z VALUES (0)").ok());
  auto r = system.Execute("SELECT 1 / a FROM z");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ExecutionEdgeTest, SelfJoinWithAliases) {
  IdaaSystem system;
  ASSERT_TRUE(system.Execute("CREATE TABLE s (a INT)").ok());
  ASSERT_TRUE(system.Execute("INSERT INTO s VALUES (1), (2), (3)").ok());
  auto rs = system.Query(
      "SELECT x.a, y.a FROM s x JOIN s y ON x.a + 1 = y.a ORDER BY x.a");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->NumRows(), 2u);
  EXPECT_EQ(rs->At(0, 0).AsInteger(), 1);
  EXPECT_EQ(rs->At(0, 1).AsInteger(), 2);
}

// ---------------------------------------------------------------------------
// Groom service
// ---------------------------------------------------------------------------

TEST(GroomServiceTest, MaybeGroomRespectsThreshold) {
  IdaaSystem system;
  ASSERT_TRUE(
      system.Execute("CREATE TABLE a (x INT) IN ACCELERATOR").ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(system
                    .Execute("INSERT INTO a VALUES (" + std::to_string(i) +
                                ")")
                    .ok());
  }
  ASSERT_TRUE(system.Execute("DELETE FROM a WHERE x < 5").ok());
  accel::GroomService groom(&system.accelerator(), /*trigger_versions=*/1000);
  // Below threshold: skipped.
  auto stats = groom.MaybeGroom();
  EXPECT_EQ(stats.rows_examined, 0u);
  EXPECT_EQ(groom.runs(), 0u);
  // Unconditional run reclaims the deleted half.
  stats = groom.RunOnce();
  EXPECT_EQ(stats.rows_reclaimed, 5u);
  EXPECT_EQ(groom.total_reclaimed(), 5u);
  EXPECT_EQ(groom.runs(), 1u);
  // Data intact after groom.
  auto rs = system.Query("SELECT COUNT(*) FROM a");
  EXPECT_EQ(rs->At(0, 0).AsInteger(), 5);
}

// ---------------------------------------------------------------------------
// Concurrency
// ---------------------------------------------------------------------------

TEST(ConcurrencyTest, ParallelAcceleratorScansAreSafe) {
  IdaaSystem system;
  ASSERT_TRUE(
      system.Execute("CREATE TABLE big (x INT) IN ACCELERATOR").ok());
  ASSERT_TRUE(system.Begin().ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(system
                    .Execute("INSERT INTO big VALUES (" +
                                std::to_string(i) + ")")
                    .ok());
  }
  ASSERT_TRUE(system.Commit().ok());

  // "Concurrent execution of multiple queries in a single transaction":
  // several reader threads share one transaction's context.
  Transaction* txn = system.txn_manager().Begin();
  auto table = system.accelerator().GetTable("big");
  ASSERT_TRUE(table.ok());
  std::vector<std::thread> readers;
  std::atomic<size_t> total{0};
  std::atomic<bool> failed{false};
  for (int t = 0; t < 8; ++t) {
    readers.emplace_back([&] {
      auto count = (*table)->CountVisible(txn->id(), txn->snapshot_csn(),
                                          system.txn_manager());
      if (!count.ok() || *count != 50) failed = true;
      total += count.ok() ? *count : 0;
    });
  }
  for (auto& r : readers) r.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(total.load(), 400u);
  ASSERT_TRUE(system.txn_manager().Commit(txn).ok());
}

TEST(ConcurrencyTest, WritersAndReadersOnAot) {
  IdaaSystem system;
  ASSERT_TRUE(
      system.Execute("CREATE TABLE c (x INT) IN ACCELERATOR").ok());
  auto table = system.accelerator().GetTable("c");
  ASSERT_TRUE(table.ok());
  std::atomic<bool> failed{false};

  std::thread writer([&] {
    for (int i = 0; i < 200; ++i) {
      Transaction* txn = system.txn_manager().Begin();
      if (!(*table)->Insert({{Value::Integer(i)}}, txn->id()).ok()) {
        failed = true;
      }
      if (!system.txn_manager().Commit(txn).ok()) failed = true;
    }
  });
  std::thread reader([&] {
    size_t last = 0;
    for (int i = 0; i < 100; ++i) {
      Transaction* txn = system.txn_manager().Begin();
      auto count = (*table)->CountVisible(txn->id(), txn->snapshot_csn(),
                                          system.txn_manager());
      if (!count.ok()) {
        failed = true;
        break;
      }
      // Visible count must be monotone (snapshots only move forward).
      if (*count < last) failed = true;
      last = *count;
      (void)system.txn_manager().Commit(txn);
    }
  });
  writer.join();
  reader.join();
  EXPECT_FALSE(failed.load());
  Transaction* txn = system.txn_manager().Begin();
  auto final_count = (*table)->CountVisible(txn->id(), txn->snapshot_csn(),
                                            system.txn_manager());
  EXPECT_EQ(*final_count, 200u);
}

TEST(ConcurrencyTest, SnapshotIsolationAcrossSessions) {
  IdaaSystem system;
  ASSERT_TRUE(
      system.Execute("CREATE TABLE iso (x INT) IN ACCELERATOR").ok());
  ASSERT_TRUE(system.Execute("INSERT INTO iso VALUES (1)").ok());

  // Session A opens a long transaction and reads.
  Transaction* a = system.txn_manager().Begin();
  auto table = system.accelerator().GetTable("iso");
  auto before = (*table)->CountVisible(a->id(), a->snapshot_csn(),
                                       system.txn_manager());
  EXPECT_EQ(*before, 1u);

  // Session B (auto-commit through the facade) inserts meanwhile.
  ASSERT_TRUE(system.Execute("INSERT INTO iso VALUES (2)").ok());

  // A still sees its snapshot; a fresh transaction sees both rows.
  auto after = (*table)->CountVisible(a->id(), a->snapshot_csn(),
                                      system.txn_manager());
  EXPECT_EQ(*after, 1u);
  Transaction* fresh = system.txn_manager().Begin();
  auto fresh_count = (*table)->CountVisible(fresh->id(), fresh->snapshot_csn(),
                                            system.txn_manager());
  EXPECT_EQ(*fresh_count, 2u);
}

}  // namespace
}  // namespace idaa
