// Fault-tolerance suite: seeded fault injection at the DB2 <-> accelerator
// boundary, bounded-backoff retry, failback-to-DB2 under ENABLE WITH
// FAILBACK, per-accelerator circuit breakers, and replication convergence
// across an offline -> online cycle. The injector is deterministic, so a
// failing run replays exactly.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/fault_injector.h"
#include "common/retry.h"
#include "common/string_util.h"
#include "federation/health_monitor.h"
#include "idaa/system.h"

namespace idaa {
namespace {

using federation::AccelerationMode;
using federation::BreakerState;
using federation::ExecOptions;
using federation::StatementResult;
using federation::Target;

// ---------------------------------------------------------------------------
// Status taxonomy

TEST(StatusTaxonomyTest, RetryableCodesAndFactories) {
  EXPECT_TRUE(IsRetryableCode(StatusCode::kUnavailable));
  EXPECT_TRUE(IsRetryableCode(StatusCode::kChannelError));
  EXPECT_TRUE(IsRetryableCode(StatusCode::kTimeout));
  EXPECT_FALSE(IsRetryableCode(StatusCode::kInvalidArgument));
  EXPECT_FALSE(IsRetryableCode(StatusCode::kNotFound));
  EXPECT_FALSE(IsRetryableCode(StatusCode::kConflict));

  Status u = Status::Unavailable("down");
  EXPECT_TRUE(u.IsUnavailable());
  EXPECT_TRUE(u.retryable());
  EXPECT_EQ(u.ToString(), "Unavailable: down");

  Status c = Status::ChannelError("flaky");
  EXPECT_TRUE(c.retryable());
  EXPECT_EQ(c.ToString(), "ChannelError: flaky");

  Status t = Status::Timeout("slow");
  EXPECT_TRUE(t.IsTimeout());
  EXPECT_TRUE(t.retryable());
  EXPECT_EQ(t.ToString(), "Timeout: slow");

  EXPECT_FALSE(Status::SemanticError("no").retryable());
  EXPECT_FALSE(Status::OK().retryable());
}

// ---------------------------------------------------------------------------
// FaultInjector

TEST(FaultInjectorTest, SeededRunsReplayExactly) {
  FaultSpec spec;
  spec.probability = 0.5;
  FaultInjector a(7);
  FaultInjector b(7);
  a.Arm("site", spec);
  b.Arm("site", spec);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.MaybeFail("site").ok(), b.MaybeFail("site").ok());
  }
  EXPECT_EQ(a.TotalInjected(), b.TotalInjected());
  EXPECT_GT(a.TotalInjected(), 0u);
  EXPECT_LT(a.TotalInjected(), 200u);
}

TEST(FaultInjectorTest, MaxFailuresScriptsFailThenRecover) {
  FaultInjector injector(1);
  FaultSpec spec;
  spec.probability = 1.0;
  spec.max_failures = 2;
  injector.Arm("s", spec);
  EXPECT_FALSE(injector.MaybeFail("s").ok());
  EXPECT_FALSE(injector.MaybeFail("s").ok());
  EXPECT_TRUE(injector.MaybeFail("s").ok());  // budget exhausted -> recovers
  EXPECT_EQ(injector.InjectedCount("s"), 2u);

  injector.Disarm("s");
  EXPECT_TRUE(injector.MaybeFail("s").ok());
  EXPECT_TRUE(injector.MaybeFail("unarmed-site").ok());
}

TEST(FaultInjectorTest, InjectedCodeAndMessageNameTheSite) {
  FaultInjector injector(1);
  FaultSpec spec;
  spec.probability = 1.0;
  spec.code = StatusCode::kTimeout;
  injector.Arm("channel.statement", spec);
  Status s = injector.MaybeFail("channel.statement");
  EXPECT_EQ(s.code(), StatusCode::kTimeout);
  EXPECT_NE(s.message().find("channel.statement"), std::string::npos);
}

// ---------------------------------------------------------------------------
// RetryWithBackoff

TEST(RetryTest, RetriesUntilSuccess) {
  RetryPolicy policy;
  policy.initial_backoff_us = 1;
  policy.max_backoff_us = 10;
  int calls = 0;
  RetryOutcome outcome = RetryWithBackoff(policy, {}, [&calls] {
    ++calls;
    return calls < 3 ? Status::ChannelError("flaky") : Status::OK();
  });
  EXPECT_TRUE(outcome.status.ok());
  EXPECT_EQ(outcome.retries, 2u);
  EXPECT_EQ(calls, 3);
}

TEST(RetryTest, TerminalErrorReturnsImmediately) {
  int calls = 0;
  RetryOutcome outcome = RetryWithBackoff({}, {}, [&calls] {
    ++calls;
    return Status::InvalidArgument("bad");
  });
  EXPECT_EQ(outcome.status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(outcome.retries, 0u);
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, UnavailableShortCircuitsTheSchedule) {
  // kUnavailable means "known down" — burning the backoff schedule on it
  // is pointless; the caller decides between failback and error.
  int calls = 0;
  RetryOutcome outcome = RetryWithBackoff({}, {}, [&calls] {
    ++calls;
    return Status::Unavailable("offline");
  });
  EXPECT_TRUE(outcome.status.IsUnavailable());
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, DeadlineExhaustionSurfacesAsTimeout) {
  RetryPolicy policy;
  policy.max_attempts = 1000;
  policy.initial_backoff_us = 500;
  policy.backoff_multiplier = 1.0;
  policy.deadline_us = 2000;
  int calls = 0;
  RetryOutcome outcome = RetryWithBackoff(policy, {}, [&calls] {
    ++calls;
    return Status::ChannelError("still flaky");
  });
  EXPECT_TRUE(outcome.status.IsTimeout()) << outcome.status.ToString();
  EXPECT_NE(outcome.status.message().find("retry deadline exceeded"),
            std::string::npos);
  EXPECT_LT(calls, 1000);
}

// ---------------------------------------------------------------------------
// HealthMonitor (circuit breaker)

TEST(HealthMonitorTest, TripsAfterThresholdAndProbesAfterCooldown) {
  federation::HealthMonitor hm;
  hm.set_trip_threshold(3);
  hm.set_cooldown_us(0);  // probe immediately

  EXPECT_EQ(hm.state("A"), BreakerState::kClosed);
  hm.RecordFailure("A");
  hm.RecordFailure("A");
  EXPECT_EQ(hm.state("A"), BreakerState::kClosed);
  EXPECT_TRUE(hm.AllowRequest("A"));
  hm.RecordFailure("A");
  EXPECT_EQ(hm.state("A"), BreakerState::kOpen);
  EXPECT_EQ(hm.trips("A"), 1u);

  // Probeable never consumes the half-open probe slot; AllowRequest does.
  EXPECT_TRUE(hm.Probeable("A"));
  EXPECT_TRUE(hm.Probeable("A"));
  EXPECT_TRUE(hm.AllowRequest("A"));   // the single probe
  EXPECT_EQ(hm.state("A"), BreakerState::kHalfOpen);
  EXPECT_FALSE(hm.AllowRequest("A"));  // probe outstanding
  EXPECT_FALSE(hm.Probeable("A"));

  // Failed probe re-opens; successful probe closes.
  hm.RecordFailure("A");
  EXPECT_EQ(hm.state("A"), BreakerState::kOpen);
  EXPECT_EQ(hm.trips("A"), 2u);
  EXPECT_TRUE(hm.AllowRequest("A"));
  hm.RecordSuccess("A");
  EXPECT_EQ(hm.state("A"), BreakerState::kClosed);
  EXPECT_EQ(hm.consecutive_failures("A"), 0u);
}

// ---------------------------------------------------------------------------
// End-to-end through IdaaSystem

class FaultToleranceTest : public ::testing::Test {
 protected:
  void SeedAccelerated(IdaaSystem& system, int rows = 40) {
    ASSERT_TRUE(
        system.Execute("CREATE TABLE t (id INT NOT NULL, v INT, "
                          "region VARCHAR)")
            .ok());
    for (int i = 0; i < rows; ++i) {
      ASSERT_TRUE(system
                      .Execute(StrFormat(
                          "INSERT INTO t VALUES (%d, %d, '%s')", i, i * 3,
                          i % 2 == 0 ? "EAST" : "WEST"))
                      .ok());
    }
    ASSERT_TRUE(system.Execute("CALL SYSPROC.ACCEL_ADD_TABLES('t')").ok());
  }

  // Keep retry sleeps out of the test runtime.
  void FastRetries(IdaaSystem& system, int max_attempts = 4) {
    RetryPolicy policy;
    policy.max_attempts = max_attempts;
    policy.initial_backoff_us = 1;
    policy.max_backoff_us = 20;
    system.federation().set_retry_policy(policy);
  }
};

TEST_F(FaultToleranceTest, TransientChannelFaultIsRetriedTransparently) {
  IdaaSystem system;
  SeedAccelerated(system);
  FastRetries(system);

  FaultSpec spec;
  spec.probability = 1.0;
  spec.max_failures = 2;  // fails twice, then the link recovers
  system.fault_injector().Arm(fault_site::kChannelStatement, spec);

  ExecOptions opts;
  opts.acceleration = AccelerationMode::kEligible;
  auto result =
      system.Execute("SELECT COUNT(*) FROM t WHERE v >= 0", opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.At(0, 0).AsInteger(), 40);
  EXPECT_EQ(result->routed_to, Target::kAccelerator);
  EXPECT_FALSE(result->failed_back);
  EXPECT_EQ(result->retries, 2u);
  EXPECT_GE(system.metrics().Get(metric::kFederationRetries), 2u);
  EXPECT_EQ(system.metrics().Get(metric::kFaultsInjected), 2u);
}

TEST_F(FaultToleranceTest, RetryDeadlineSurfacesAsTimeout) {
  IdaaSystem system;
  SeedAccelerated(system);
  RetryPolicy policy;
  policy.max_attempts = 1000;
  policy.initial_backoff_us = 500;
  policy.backoff_multiplier = 1.0;
  system.federation().set_retry_policy(policy);

  FaultSpec spec;
  spec.probability = 1.0;  // never recovers
  system.fault_injector().Arm(fault_site::kChannelStatement, spec);

  ExecOptions opts;
  opts.acceleration = AccelerationMode::kEligible;
  opts.deadline_us = 3000;
  auto result = system.Execute("SELECT COUNT(*) FROM t", opts);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTimeout);
  EXPECT_NE(result.status().message().find("retry deadline exceeded"),
            std::string::npos);
}

TEST_F(FaultToleranceTest, OfflineErrorNamesAcceleratorAndStatement) {
  IdaaSystem system;
  SeedAccelerated(system);
  ASSERT_TRUE(
      system.Execute("CALL SYSPROC.ACCEL_CONTROL('ACCEL1', 'OFFLINE')")
          .ok());

  // ELIGIBLE (no failback): the offline accelerator is a user-visible
  // kUnavailable naming the accelerator and the statement kind.
  ExecOptions opts;
  opts.acceleration = AccelerationMode::kEligible;
  auto select = system.Execute("SELECT COUNT(*) FROM t", opts);
  ASSERT_FALSE(select.ok());
  EXPECT_TRUE(select.status().IsUnavailable());
  EXPECT_NE(select.status().message().find("ACCEL1"), std::string::npos);
  EXPECT_NE(select.status().message().find("SELECT"), std::string::npos);
  EXPECT_NE(select.status().message().find("offline"), std::string::npos);
}

TEST_F(FaultToleranceTest, FailbackToDb2WhenAcceleratorOffline) {
  IdaaSystem system;
  SeedAccelerated(system);
  ASSERT_TRUE(
      system.Execute("CALL SYSPROC.ACCEL_CONTROL('ACCEL1', 'OFFLINE')")
          .ok());

  ASSERT_TRUE(system
                  .Execute("SET CURRENT QUERY ACCELERATION = "
                              "ENABLE WITH FAILBACK")
                  .ok());
  auto result = system.Execute(
      "SELECT region, SUM(v) FROM t GROUP BY region ORDER BY region");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->failed_back);
  EXPECT_EQ(result->routed_to, Target::kDb2);
  EXPECT_EQ(result->rows.NumRows(), 2u);
  EXPECT_NE(result->detail.find("failback"), std::string::npos);
}

TEST_F(FaultToleranceTest, FailbackAfterRetriesExhaustedMidExecution) {
  IdaaSystem system;
  SeedAccelerated(system);
  FastRetries(system, /*max_attempts=*/2);

  // Accelerator stays Online; the channel is just broken for good.
  FaultSpec spec;
  spec.probability = 1.0;
  system.fault_injector().Arm(fault_site::kChannelStatement, spec);

  ExecOptions opts;
  opts.acceleration = AccelerationMode::kEnableWithFailback;
  auto result = system.Execute(
      "SELECT region, SUM(v) FROM t GROUP BY region ORDER BY region", opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->failed_back);
  EXPECT_EQ(result->routed_to, Target::kDb2);
  EXPECT_GE(result->retries, 1u);
  EXPECT_NE(result->detail.find("failed back to DB2"), std::string::npos);
  EXPECT_GE(system.metrics().Get(metric::kFederationFailbacks), 1u);

  // Same statement without failback: the error reaches the user.
  opts.acceleration = AccelerationMode::kEligible;
  auto no_failback = system.Execute("SELECT SUM(v) FROM t", opts);
  ASSERT_FALSE(no_failback.ok());
  EXPECT_TRUE(no_failback.status().retryable());
}

TEST_F(FaultToleranceTest, AotCannotFailBack) {
  IdaaSystem system;
  FastRetries(system, /*max_attempts=*/2);
  ASSERT_TRUE(
      system.Execute("CREATE TABLE stage (id INT, v INT) IN ACCELERATOR")
          .ok());
  ASSERT_TRUE(system.Execute("INSERT INTO stage VALUES (1, 1)").ok());

  FaultSpec spec;
  spec.probability = 1.0;
  system.fault_injector().Arm(fault_site::kChannelStatement, spec);

  ExecOptions opts;
  opts.acceleration = AccelerationMode::kEnableWithFailback;
  auto result = system.Execute("SELECT COUNT(*) FROM stage", opts);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().retryable());
  EXPECT_NE(result.status().message().find("cannot fail back"),
            std::string::npos);
}

TEST_F(FaultToleranceTest, MidTransactionOutageFailsBackWithSameSnapshot) {
  IdaaSystem system;
  SeedAccelerated(system);
  system.SetAccelerationMode(AccelerationMode::kEnableWithFailback);

  ASSERT_TRUE(system.Begin().ok());
  ExecOptions opts;
  opts.acceleration = AccelerationMode::kEligible;  // force accel route
  auto before = system.Execute("SELECT COUNT(*) FROM t", opts);
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  EXPECT_EQ(before->routed_to, Target::kAccelerator);

  // Outage strikes mid-transaction (admin action from another session).
  system.accelerator(0).SetState(accel::AcceleratorState::kOffline);

  auto after = system.Execute(
      "SELECT COUNT(*) FROM t");  // session mode: ENABLE WITH FAILBACK
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_TRUE(after->failed_back);
  EXPECT_EQ(after->routed_to, Target::kDb2);
  // Same transaction, same snapshot: both engines agree on the count.
  EXPECT_EQ(before->rows.At(0, 0).AsInteger(),
            after->rows.At(0, 0).AsInteger());
  ASSERT_TRUE(system.Commit().ok());
  system.accelerator(0).SetState(accel::AcceleratorState::kOnline);
}

TEST_F(FaultToleranceTest, BreakerTripsAfterConsecutiveFailuresAndRecovers) {
  IdaaSystem system;
  SeedAccelerated(system);
  FastRetries(system, /*max_attempts=*/1);
  // Long cooldown first: an open breaker must deflect routing. Dropped to
  // zero later to let the recovery probe through.
  system.federation().health().set_cooldown_us(60'000'000);

  FaultSpec spec;
  spec.probability = 1.0;
  system.fault_injector().Arm(FaultInjector::AcceleratorSite("ACCEL1"), spec);

  ExecOptions opts;
  opts.acceleration = AccelerationMode::kEligible;
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(system.Execute("SELECT COUNT(*) FROM t", opts).ok());
  }
  EXPECT_EQ(system.federation().health().state("ACCEL1"),
            BreakerState::kOpen);
  EXPECT_EQ(system.federation().health().trips("ACCEL1"), 1u);
  EXPECT_GE(system.metrics().Get(metric::kBreakerTrips), 1u);

  // Open breaker + failback mode: the router pre-fails-back without even
  // trying the accelerator (Probeable is false while the cooldown runs).
  ExecOptions failback;
  failback.acceleration = AccelerationMode::kEnableWithFailback;
  auto routed = system.Execute(
      "SELECT region, COUNT(*) FROM t GROUP BY region", failback);
  ASSERT_TRUE(routed.ok()) << routed.status().ToString();
  EXPECT_TRUE(routed->failed_back);
  EXPECT_EQ(routed->routed_to, Target::kDb2);
  EXPECT_NE(routed->detail.find("unhealthy"), std::string::npos);

  // Breaker rejection without failback is a clear user-visible error.
  ExecOptions eligible = opts;
  auto rejected = system.Execute("SELECT COUNT(*) FROM t", eligible);
  ASSERT_FALSE(rejected.ok());
  EXPECT_NE(rejected.status().message().find("circuit breaker is open"),
            std::string::npos);

  // Fault repaired + cooldown over: the next eligible statement is the
  // probe; its success closes the breaker.
  system.federation().health().set_cooldown_us(0);
  system.fault_injector().Disarm(FaultInjector::AcceleratorSite("ACCEL1"));
  auto probe = system.Execute("SELECT COUNT(*) FROM t", opts);
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  EXPECT_EQ(system.federation().health().state("ACCEL1"),
            BreakerState::kClosed);
}

TEST_F(FaultToleranceTest, OfflineOnlineCycleConvergesReplication) {
  SystemOptions options;
  options.replication_batch_size = 4;  // auto-apply attempts during outage
  IdaaSystem system(options);
  SeedAccelerated(system, /*rows=*/10);

  ASSERT_TRUE(
      system.Execute("CALL SYSPROC.ACCEL_CONTROL('ACCEL1', 'OFFLINE')")
          .ok());
  // Writes keep landing in DB2; replication cannot apply and must queue.
  for (int i = 100; i < 120; ++i) {
    ASSERT_TRUE(system
                    .Execute(StrFormat(
                        "INSERT INTO t VALUES (%d, %d, 'WEST')", i, i))
                    .ok());
  }
  ASSERT_TRUE(
      system.Execute("UPDATE t SET v = v + 1000 WHERE id = 0").ok());
  ASSERT_TRUE(system.Execute("DELETE FROM t WHERE id = 1").ok());
  EXPECT_GT(system.replication().PendingChanges(), 0u);

  // ONLINE replays the backlog (Recovering) before accepting queries.
  auto online =
      system.Execute("CALL SYSPROC.ACCEL_CONTROL('ACCEL1', 'ONLINE')");
  ASSERT_TRUE(online.ok()) << online.status().ToString();
  EXPECT_NE(online->detail.find("pending change(s)"), std::string::npos);
  EXPECT_EQ(system.replication().PendingChanges(), 0u);

  // Content comparison: every accelerated table converged.
  auto verify = system.Query("CALL SYSPROC.ACCEL_VERIFY_TABLES('t')");
  ASSERT_TRUE(verify.ok()) << verify.status().ToString();
  ASSERT_EQ(verify->NumRows(), 1u);
  EXPECT_EQ(verify->At(0, 0).AsVarchar(), "T");
  EXPECT_EQ(verify->At(0, 1).AsInteger(), verify->At(0, 2).AsInteger());
  EXPECT_TRUE(verify->At(0, 3).AsBoolean());

  // And both routes agree through SQL too.
  ExecOptions db2, acc;
  db2.acceleration = AccelerationMode::kNone;
  acc.acceleration = AccelerationMode::kAll;
  auto on_db2 = system.Execute("SELECT COUNT(*), SUM(v) FROM t", db2);
  auto on_accel = system.Execute("SELECT COUNT(*), SUM(v) FROM t", acc);
  ASSERT_TRUE(on_db2.ok() && on_accel.ok());
  EXPECT_EQ(on_db2->rows.At(0, 0).AsInteger(),
            on_accel->rows.At(0, 0).AsInteger());
  EXPECT_EQ(on_db2->rows.At(0, 1).AsInteger(),
            on_accel->rows.At(0, 1).AsInteger());
}

TEST_F(FaultToleranceTest, RetryAndFailbackSpansVisibleInExplainAnalyze) {
  IdaaSystem system;
  SeedAccelerated(system);
  FastRetries(system);
  system.SetAccelerationMode(AccelerationMode::kEligible);

  FaultSpec spec;
  spec.probability = 1.0;
  spec.max_failures = 1;
  system.fault_injector().Arm(fault_site::kChannelStatement, spec);

  auto report = system.Query("EXPLAIN ANALYZE SELECT COUNT(*) FROM t");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  bool saw_retry = false, saw_fault = false;
  for (size_t r = 0; r < report->NumRows(); ++r) {
    std::string stage = report->At(r, 0).AsVarchar();
    if (stage.find("retry") != std::string::npos) saw_retry = true;
    if (stage.find("fault") != std::string::npos) saw_fault = true;
  }
  EXPECT_TRUE(saw_retry) << "no retry span in EXPLAIN ANALYZE output";
  EXPECT_TRUE(saw_fault) << "no fault span in EXPLAIN ANALYZE output";

  // Failback span under ENABLE WITH FAILBACK with a dead channel.
  system.fault_injector().Reset();
  spec.max_failures = 0;
  system.fault_injector().Arm(fault_site::kChannelStatement, spec);
  system.SetAccelerationMode(AccelerationMode::kEnableWithFailback);
  auto failback = system.Query(
      "EXPLAIN ANALYZE SELECT region, SUM(v) FROM t GROUP BY region");
  ASSERT_TRUE(failback.ok()) << failback.status().ToString();
  bool saw_failback = false;
  for (size_t r = 0; r < failback->NumRows(); ++r) {
    if (failback->At(r, 0).AsVarchar().find("failback") !=
        std::string::npos) {
      saw_failback = true;
    }
  }
  EXPECT_TRUE(saw_failback) << "no failback span in EXPLAIN ANALYZE output";
}

TEST_F(FaultToleranceTest, StaticExplainReportsAcceleratorAndBreakerState) {
  IdaaSystem system;
  SeedAccelerated(system);
  auto report = system.Query("EXPLAIN SELECT COUNT(*) FROM t");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  bool saw = false;
  for (size_t r = 0; r < report->NumRows(); ++r) {
    if (report->At(r, 0).AsVarchar() == "ACCELERATOR ACCEL1") {
      saw = true;
      std::string detail = report->At(r, 1).AsVarchar();
      EXPECT_NE(detail.find("ONLINE"), std::string::npos);
      EXPECT_NE(detail.find("breaker CLOSED"), std::string::npos);
    }
  }
  EXPECT_TRUE(saw) << "no ACCELERATOR row in static EXPLAIN";

  system.accelerator(0).SetState(accel::AcceleratorState::kOffline);
  report = system.Query("EXPLAIN SELECT COUNT(*) FROM t");
  ASSERT_TRUE(report.ok());
  for (size_t r = 0; r < report->NumRows(); ++r) {
    if (report->At(r, 0).AsVarchar() == "ACCELERATOR ACCEL1") {
      EXPECT_NE(report->At(r, 1).AsVarchar().find("OFFLINE"),
                std::string::npos);
    }
  }
}

// The acceptance bar of the redesign: at a 10% injected channel fault rate
// under ENABLE WITH FAILBACK, the query subset returns results identical
// to a fault-free run — zero user-visible errors.
TEST_F(FaultToleranceTest, EngineEquivalenceUnderTenPercentFaults) {
  IdaaSystem system;
  SeedAccelerated(system, /*rows=*/60);
  FastRetries(system, /*max_attempts=*/8);

  const char* kQueries[] = {
      "SELECT COUNT(*) FROM t",
      "SELECT region, COUNT(*), SUM(v) FROM t GROUP BY region",
      "SELECT SUM(v), MIN(v), MAX(v) FROM t WHERE v > 30",
      "SELECT id, v FROM t WHERE region = 'EAST' AND v < 60",
      "SELECT DISTINCT region FROM t",
      "SELECT AVG(v) FROM t WHERE id >= 10",
  };

  auto canonical = [](const ResultSet& rs) {
    std::vector<std::string> lines;
    for (const Row& row : rs.rows()) {
      std::string line;
      for (const Value& v : row) {
        line += v.is_double() ? StrFormat("%.9g", v.AsDouble())
                              : v.ToString();
        line += "|";
      }
      lines.push_back(std::move(line));
    }
    std::sort(lines.begin(), lines.end());
    return lines;
  };

  // Fault-free baseline on DB2.
  std::vector<std::vector<std::string>> baseline;
  ExecOptions db2;
  db2.acceleration = AccelerationMode::kNone;
  for (const char* q : kQueries) {
    auto rs = system.Execute(q, db2);
    ASSERT_TRUE(rs.ok()) << rs.status().ToString();
    baseline.push_back(canonical(rs->rows));
  }

  FaultSpec spec;
  spec.probability = 0.10;
  system.fault_injector().ArmChannel(spec);
  system.fault_injector().Arm(FaultInjector::AcceleratorSite("ACCEL1"),
                              spec);

  ExecOptions failback;
  failback.acceleration = AccelerationMode::kEnableWithFailback;
  uint64_t total_retries = 0, total_failbacks = 0;
  for (int round = 0; round < 20; ++round) {
    for (size_t q = 0; q < std::size(kQueries); ++q) {
      auto rs = system.Execute(kQueries[q], failback);
      ASSERT_TRUE(rs.ok()) << "user-visible error under faults: "
                           << rs.status().ToString();
      EXPECT_EQ(canonical(rs->rows), baseline[q]) << kQueries[q];
      total_retries += rs->retries;
      total_failbacks += rs->failed_back ? 1 : 0;
    }
  }
  // The injector genuinely fired: faults were absorbed, not avoided.
  EXPECT_GT(system.fault_injector().TotalInjected(), 0u);
  EXPECT_GT(total_retries + total_failbacks, 0u);
}

}  // namespace
}  // namespace idaa
