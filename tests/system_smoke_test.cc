// End-to-end smoke tests of the full stack through the public SQL API.

#include "idaa/system.h"

#include <gtest/gtest.h>

namespace idaa {
namespace {

TEST(SystemSmokeTest, CreateInsertSelectOnDb2) {
  IdaaSystem system;
  ASSERT_TRUE(system.Execute("CREATE TABLE t (a INT, b DOUBLE)").ok());
  ASSERT_TRUE(
      system.Execute("INSERT INTO t VALUES (1, 1.5), (2, 2.5), (3, 3.5)")
          .ok());
  auto rs = system.Query("SELECT a, b FROM t WHERE a >= 2 ORDER BY a");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->NumRows(), 2u);
  EXPECT_EQ(rs->At(0, 0).AsInteger(), 2);
  EXPECT_EQ(rs->At(1, 0).AsInteger(), 3);
}

TEST(SystemSmokeTest, AcceleratedTableOffload) {
  IdaaSystem system;
  ASSERT_TRUE(system.Execute("CREATE TABLE sales (id INT, amount DOUBLE)")
                  .ok());
  ASSERT_TRUE(system.Execute(
                        "INSERT INTO sales VALUES (1, 10.0), (2, 20.0), "
                        "(3, 30.0), (4, 40.0)")
                  .ok());
  auto add = system.Execute("CALL SYSPROC.ACCEL_ADD_TABLES('sales')");
  ASSERT_TRUE(add.ok()) << add.status().ToString();

  auto result = system.Execute(
      "SELECT COUNT(*) AS n, SUM(amount) AS total FROM sales");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->routed_to, federation::Target::kAccelerator);
  ASSERT_EQ(result->rows.NumRows(), 1u);
  EXPECT_EQ(result->rows.At(0, 0).AsInteger(), 4);
  EXPECT_DOUBLE_EQ(result->rows.At(0, 1).AsDouble(), 100.0);
}

TEST(SystemSmokeTest, AotElTPipelineStaysOnAccelerator) {
  IdaaSystem system;
  ASSERT_TRUE(system.Execute("CREATE TABLE src (k INT, v DOUBLE)").ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(system
                    .Execute("INSERT INTO src VALUES (" +
                                std::to_string(i % 3) + ", " +
                                std::to_string(i) + ".0)")
                    .ok());
  }
  ASSERT_TRUE(system.Execute("CALL SYSPROC.ACCEL_ADD_TABLES('src')").ok());

  ASSERT_TRUE(system.Execute(
                        "CREATE TABLE stage1 (k INT, total DOUBLE) "
                        "IN ACCELERATOR")
                  .ok());
  auto insert = system.Execute(
      "INSERT INTO stage1 SELECT k, SUM(v) FROM src GROUP BY k");
  ASSERT_TRUE(insert.ok()) << insert.status().ToString();
  EXPECT_EQ(insert->routed_to, federation::Target::kAccelerator);
  EXPECT_EQ(insert->rows_affected, 3u);

  auto rs = system.Query("SELECT k, total FROM stage1 ORDER BY k");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->NumRows(), 3u);
  // k=0: 0+3+6+9=18, k=1: 1+4+7=12, k=2: 2+5+8=15
  EXPECT_DOUBLE_EQ(rs->At(0, 1).AsDouble(), 18.0);
  EXPECT_DOUBLE_EQ(rs->At(1, 1).AsDouble(), 12.0);
  EXPECT_DOUBLE_EQ(rs->At(2, 1).AsDouble(), 15.0);
}

TEST(SystemSmokeTest, TransactionRollbackOnAot) {
  IdaaSystem system;
  ASSERT_TRUE(
      system.Execute("CREATE TABLE aot (x INT) IN ACCELERATOR").ok());
  ASSERT_TRUE(system.Execute("INSERT INTO aot VALUES (1)").ok());
  ASSERT_TRUE(system.Begin().ok());
  ASSERT_TRUE(system.Execute("INSERT INTO aot VALUES (2)").ok());
  // Own uncommitted insert is visible inside the transaction.
  auto inside = system.Query("SELECT COUNT(*) FROM aot");
  ASSERT_TRUE(inside.ok());
  EXPECT_EQ(inside->At(0, 0).AsInteger(), 2);
  ASSERT_TRUE(system.Rollback().ok());
  auto after = system.Query("SELECT COUNT(*) FROM aot");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->At(0, 0).AsInteger(), 1);
}

TEST(SystemSmokeTest, KMeansProcedure) {
  IdaaSystem system;
  ASSERT_TRUE(
      system.Execute("CREATE TABLE pts (x DOUBLE, y DOUBLE) IN ACCELERATOR")
          .ok());
  // Two obvious clusters.
  for (int i = 0; i < 10; ++i) {
    double off = i * 0.01;
    ASSERT_TRUE(system
                    .Execute("INSERT INTO pts VALUES (" +
                                std::to_string(off) + ", 0.0), (" +
                                std::to_string(10.0 + off) + ", 10.0)")
                    .ok());
  }
  auto call = system.Execute(
      "CALL IDAA.KMEANS('input=pts', 'output=pts_clusters', 'columns=x,y', "
      "'k=2', 'seed=7')");
  ASSERT_TRUE(call.ok()) << call.status().ToString();
  auto rs = system.Query(
      "SELECT cluster, COUNT(*) AS n FROM pts_clusters GROUP BY cluster "
      "ORDER BY cluster");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->NumRows(), 2u);
  EXPECT_EQ(rs->At(0, 1).AsInteger(), 10);
  EXPECT_EQ(rs->At(1, 1).AsInteger(), 10);
}

}  // namespace
}  // namespace idaa
