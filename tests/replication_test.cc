// Incremental-update (replication) pipeline tests: capture on commit,
// batched apply, replica convergence under insert/update/delete, staleness.

#include <gtest/gtest.h>

#include "idaa/system.h"

namespace idaa {
namespace {

class ReplicationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SystemOptions options;
    options.replication_batch_size = 0;  // manual Flush in these tests
    system_ = std::make_unique<IdaaSystem>(options);
    ASSERT_TRUE(
        system_->Execute("CREATE TABLE t (id INT, v VARCHAR)").ok());
    ASSERT_TRUE(system_->Execute("INSERT INTO t VALUES (1, 'a')").ok());
    ASSERT_TRUE(
        system_->Execute("CALL SYSPROC.ACCEL_ADD_TABLES('t')").ok());
  }

  /// COUNT(*) as seen by the accelerator replica.
  int64_t ReplicaCount() {
    system_->SetAccelerationMode(federation::AccelerationMode::kEligible);
    auto rs = system_->Query("SELECT COUNT(*) FROM t");
    EXPECT_TRUE(rs.ok()) << rs.status().ToString();
    return rs->At(0, 0).AsInteger();
  }

  std::unique_ptr<IdaaSystem> system_;
};

TEST_F(ReplicationTest, InsertCapturedAndApplied) {
  ASSERT_TRUE(
      system_->Execute("INSERT INTO t VALUES (2, 'b'), (3, 'c')").ok());
  EXPECT_EQ(system_->replication().PendingChanges(), 2u);
  EXPECT_EQ(ReplicaCount(), 1);  // not yet applied
  auto stats = system_->replication().Flush();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->inserts, 2u);
  EXPECT_EQ(ReplicaCount(), 3);
}

TEST_F(ReplicationTest, DeleteConverges) {
  ASSERT_TRUE(system_->Execute("INSERT INTO t VALUES (2, 'b')").ok());
  ASSERT_TRUE(system_->replication().Flush().ok());
  ASSERT_TRUE(system_->Execute("DELETE FROM t WHERE id = 1").ok());
  auto stats = system_->replication().Flush();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->deletes, 1u);
  EXPECT_EQ(stats->misses, 0u);
  EXPECT_EQ(ReplicaCount(), 1);
  system_->SetAccelerationMode(federation::AccelerationMode::kEligible);
  auto rs = system_->Query("SELECT id FROM t");
  EXPECT_EQ(rs->At(0, 0).AsInteger(), 2);
}

TEST_F(ReplicationTest, UpdateConverges) {
  ASSERT_TRUE(
      system_->Execute("UPDATE t SET v = 'changed' WHERE id = 1").ok());
  auto stats = system_->replication().Flush();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->updates, 1u);
  EXPECT_EQ(stats->misses, 0u);
  system_->SetAccelerationMode(federation::AccelerationMode::kEligible);
  auto rs = system_->Query("SELECT v FROM t WHERE id = 1");
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->NumRows(), 1u);
  EXPECT_EQ(rs->At(0, 0).AsVarchar(), "changed");
}

TEST_F(ReplicationTest, RolledBackChangesNotCaptured) {
  ASSERT_TRUE(system_->Begin().ok());
  ASSERT_TRUE(system_->Execute("INSERT INTO t VALUES (99, 'x')").ok());
  ASSERT_TRUE(system_->Rollback().ok());
  EXPECT_EQ(system_->replication().PendingChanges(), 0u);
  ASSERT_TRUE(system_->replication().Flush().ok());
  EXPECT_EQ(ReplicaCount(), 1);
  // DB2 also rolled back.
  system_->SetAccelerationMode(federation::AccelerationMode::kNone);
  auto rs = system_->Query("SELECT COUNT(*) FROM t");
  EXPECT_EQ(rs->At(0, 0).AsInteger(), 1);
}

TEST_F(ReplicationTest, NonReplicatedTableNotCaptured) {
  ASSERT_TRUE(system_->Execute("CREATE TABLE other (x INT)").ok());
  ASSERT_TRUE(system_->Execute("INSERT INTO other VALUES (1)").ok());
  EXPECT_EQ(system_->replication().PendingChanges(), 0u);
}

TEST_F(ReplicationTest, AutomaticFlushAtBatchSize) {
  SystemOptions options;
  options.replication_batch_size = 4;
  IdaaSystem system(options);
  ASSERT_TRUE(system.Execute("CREATE TABLE t (id INT)").ok());
  ASSERT_TRUE(system.Execute("CALL SYSPROC.ACCEL_ADD_TABLES('t')").ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(system
                    .Execute("INSERT INTO t VALUES (" + std::to_string(i) +
                                ")")
                    .ok());
  }
  // The 4th commit crossed the threshold and triggered an apply.
  EXPECT_EQ(system.replication().PendingChanges(), 0u);
  system.SetAccelerationMode(federation::AccelerationMode::kEligible);
  auto rs = system.Query("SELECT COUNT(*) FROM t");
  EXPECT_EQ(rs->At(0, 0).AsInteger(), 4);
}

TEST_F(ReplicationTest, StalenessTracking) {
  EXPECT_EQ(system_->replication().HighestAppliedCsn(), 0u);
  ASSERT_TRUE(system_->Execute("INSERT INTO t VALUES (5, 'e')").ok());
  Csn captured = system_->replication().HighestCapturedCsn();
  EXPECT_GT(captured, 0u);
  EXPECT_LT(system_->replication().HighestAppliedCsn(), captured);
  ASSERT_TRUE(system_->replication().Flush().ok());
  EXPECT_EQ(system_->replication().HighestAppliedCsn(), captured);
}

TEST_F(ReplicationTest, ApplyCountsBytesAndBatches) {
  MetricsDelta delta(system_->metrics());
  ASSERT_TRUE(system_->Execute("INSERT INTO t VALUES (2, 'b')").ok());
  ASSERT_TRUE(system_->replication().Flush().ok());
  EXPECT_EQ(delta.Delta(metric::kReplicationChangesApplied), 1u);
  EXPECT_EQ(delta.Delta(metric::kReplicationBatches), 1u);
  EXPECT_GT(delta.Delta(metric::kReplicationBytesApplied), 0u);
}

TEST_F(ReplicationTest, RemoveTableStopsCapture) {
  ASSERT_TRUE(
      system_->Execute("CALL SYSPROC.ACCEL_REMOVE_TABLES('t')").ok());
  ASSERT_TRUE(system_->Execute("INSERT INTO t VALUES (7, 'g')").ok());
  EXPECT_EQ(system_->replication().PendingChanges(), 0u);
}

TEST_F(ReplicationTest, DuplicateRowsDeleteOnlyOne) {
  ASSERT_TRUE(
      system_->Execute("INSERT INTO t VALUES (8, 'dup'), (8, 'dup')").ok());
  ASSERT_TRUE(system_->replication().Flush().ok());
  EXPECT_EQ(ReplicaCount(), 3);
  // DB2 deletes both duplicates (two change records); replica must too.
  ASSERT_TRUE(system_->Execute("DELETE FROM t WHERE id = 8").ok());
  auto stats = system_->replication().Flush();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->deletes, 2u);
  EXPECT_EQ(stats->misses, 0u);
  EXPECT_EQ(ReplicaCount(), 1);
}

}  // namespace
}  // namespace idaa
