# Empty dependencies file for example_dual_accelerator.
# This may be replaced when dependencies are built.
