file(REMOVE_RECURSE
  "CMakeFiles/example_dual_accelerator.dir/dual_accelerator.cc.o"
  "CMakeFiles/example_dual_accelerator.dir/dual_accelerator.cc.o.d"
  "example_dual_accelerator"
  "example_dual_accelerator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_dual_accelerator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
