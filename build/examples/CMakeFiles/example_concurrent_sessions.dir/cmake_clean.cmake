file(REMOVE_RECURSE
  "CMakeFiles/example_concurrent_sessions.dir/concurrent_sessions.cc.o"
  "CMakeFiles/example_concurrent_sessions.dir/concurrent_sessions.cc.o.d"
  "example_concurrent_sessions"
  "example_concurrent_sessions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_concurrent_sessions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
