# Empty compiler generated dependencies file for example_concurrent_sessions.
# This may be replaced when dependencies are built.
