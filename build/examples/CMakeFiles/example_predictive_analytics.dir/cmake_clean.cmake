file(REMOVE_RECURSE
  "CMakeFiles/example_predictive_analytics.dir/predictive_analytics.cc.o"
  "CMakeFiles/example_predictive_analytics.dir/predictive_analytics.cc.o.d"
  "example_predictive_analytics"
  "example_predictive_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_predictive_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
