# Empty compiler generated dependencies file for example_predictive_analytics.
# This may be replaced when dependencies are built.
