# Empty dependencies file for example_elt_pipeline.
# This may be replaced when dependencies are built.
