file(REMOVE_RECURSE
  "CMakeFiles/example_elt_pipeline.dir/elt_pipeline.cc.o"
  "CMakeFiles/example_elt_pipeline.dir/elt_pipeline.cc.o.d"
  "example_elt_pipeline"
  "example_elt_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_elt_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
