file(REMOVE_RECURSE
  "CMakeFiles/example_social_media_ingest.dir/social_media_ingest.cc.o"
  "CMakeFiles/example_social_media_ingest.dir/social_media_ingest.cc.o.d"
  "example_social_media_ingest"
  "example_social_media_ingest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_social_media_ingest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
