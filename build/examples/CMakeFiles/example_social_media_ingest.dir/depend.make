# Empty dependencies file for example_social_media_ingest.
# This may be replaced when dependencies are built.
