# Empty compiler generated dependencies file for idaa_tests.
# This may be replaced when dependencies are built.
