
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/accel_storage_test.cc" "tests/CMakeFiles/idaa_tests.dir/accel_storage_test.cc.o" "gcc" "tests/CMakeFiles/idaa_tests.dir/accel_storage_test.cc.o.d"
  "/root/repo/tests/analytics_test.cc" "tests/CMakeFiles/idaa_tests.dir/analytics_test.cc.o" "gcc" "tests/CMakeFiles/idaa_tests.dir/analytics_test.cc.o.d"
  "/root/repo/tests/binder_eval_test.cc" "tests/CMakeFiles/idaa_tests.dir/binder_eval_test.cc.o" "gcc" "tests/CMakeFiles/idaa_tests.dir/binder_eval_test.cc.o.d"
  "/root/repo/tests/channel_db2_test.cc" "tests/CMakeFiles/idaa_tests.dir/channel_db2_test.cc.o" "gcc" "tests/CMakeFiles/idaa_tests.dir/channel_db2_test.cc.o.d"
  "/root/repo/tests/common_util_test.cc" "tests/CMakeFiles/idaa_tests.dir/common_util_test.cc.o" "gcc" "tests/CMakeFiles/idaa_tests.dir/common_util_test.cc.o.d"
  "/root/repo/tests/convergence_fuzz_test.cc" "tests/CMakeFiles/idaa_tests.dir/convergence_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/idaa_tests.dir/convergence_fuzz_test.cc.o.d"
  "/root/repo/tests/coverage_extras_test.cc" "tests/CMakeFiles/idaa_tests.dir/coverage_extras_test.cc.o" "gcc" "tests/CMakeFiles/idaa_tests.dir/coverage_extras_test.cc.o.d"
  "/root/repo/tests/ctas_test.cc" "tests/CMakeFiles/idaa_tests.dir/ctas_test.cc.o" "gcc" "tests/CMakeFiles/idaa_tests.dir/ctas_test.cc.o.d"
  "/root/repo/tests/engine_equivalence_test.cc" "tests/CMakeFiles/idaa_tests.dir/engine_equivalence_test.cc.o" "gcc" "tests/CMakeFiles/idaa_tests.dir/engine_equivalence_test.cc.o.d"
  "/root/repo/tests/execution_edge_test.cc" "tests/CMakeFiles/idaa_tests.dir/execution_edge_test.cc.o" "gcc" "tests/CMakeFiles/idaa_tests.dir/execution_edge_test.cc.o.d"
  "/root/repo/tests/features_test.cc" "tests/CMakeFiles/idaa_tests.dir/features_test.cc.o" "gcc" "tests/CMakeFiles/idaa_tests.dir/features_test.cc.o.d"
  "/root/repo/tests/federation_test.cc" "tests/CMakeFiles/idaa_tests.dir/federation_test.cc.o" "gcc" "tests/CMakeFiles/idaa_tests.dir/federation_test.cc.o.d"
  "/root/repo/tests/lexer_parser_test.cc" "tests/CMakeFiles/idaa_tests.dir/lexer_parser_test.cc.o" "gcc" "tests/CMakeFiles/idaa_tests.dir/lexer_parser_test.cc.o.d"
  "/root/repo/tests/loader_governance_test.cc" "tests/CMakeFiles/idaa_tests.dir/loader_governance_test.cc.o" "gcc" "tests/CMakeFiles/idaa_tests.dir/loader_governance_test.cc.o.d"
  "/root/repo/tests/multi_accelerator_test.cc" "tests/CMakeFiles/idaa_tests.dir/multi_accelerator_test.cc.o" "gcc" "tests/CMakeFiles/idaa_tests.dir/multi_accelerator_test.cc.o.d"
  "/root/repo/tests/replication_test.cc" "tests/CMakeFiles/idaa_tests.dir/replication_test.cc.o" "gcc" "tests/CMakeFiles/idaa_tests.dir/replication_test.cc.o.d"
  "/root/repo/tests/slice_join_test.cc" "tests/CMakeFiles/idaa_tests.dir/slice_join_test.cc.o" "gcc" "tests/CMakeFiles/idaa_tests.dir/slice_join_test.cc.o.d"
  "/root/repo/tests/status_test.cc" "tests/CMakeFiles/idaa_tests.dir/status_test.cc.o" "gcc" "tests/CMakeFiles/idaa_tests.dir/status_test.cc.o.d"
  "/root/repo/tests/system_smoke_test.cc" "tests/CMakeFiles/idaa_tests.dir/system_smoke_test.cc.o" "gcc" "tests/CMakeFiles/idaa_tests.dir/system_smoke_test.cc.o.d"
  "/root/repo/tests/txn_test.cc" "tests/CMakeFiles/idaa_tests.dir/txn_test.cc.o" "gcc" "tests/CMakeFiles/idaa_tests.dir/txn_test.cc.o.d"
  "/root/repo/tests/value_test.cc" "tests/CMakeFiles/idaa_tests.dir/value_test.cc.o" "gcc" "tests/CMakeFiles/idaa_tests.dir/value_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/idaa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
