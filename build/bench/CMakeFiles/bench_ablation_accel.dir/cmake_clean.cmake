file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_accel.dir/bench_ablation_accel.cc.o"
  "CMakeFiles/bench_ablation_accel.dir/bench_ablation_accel.cc.o.d"
  "bench_ablation_accel"
  "bench_ablation_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
