# Empty dependencies file for bench_ablation_accel.
# This may be replaced when dependencies are built.
