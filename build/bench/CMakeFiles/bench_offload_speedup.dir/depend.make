# Empty dependencies file for bench_offload_speedup.
# This may be replaced when dependencies are built.
