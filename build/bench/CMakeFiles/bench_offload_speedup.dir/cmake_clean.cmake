file(REMOVE_RECURSE
  "CMakeFiles/bench_offload_speedup.dir/bench_offload_speedup.cc.o"
  "CMakeFiles/bench_offload_speedup.dir/bench_offload_speedup.cc.o.d"
  "bench_offload_speedup"
  "bench_offload_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_offload_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
