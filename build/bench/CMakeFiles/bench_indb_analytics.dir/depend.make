# Empty dependencies file for bench_indb_analytics.
# This may be replaced when dependencies are built.
