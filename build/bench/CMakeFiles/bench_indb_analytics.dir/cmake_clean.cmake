file(REMOVE_RECURSE
  "CMakeFiles/bench_indb_analytics.dir/bench_indb_analytics.cc.o"
  "CMakeFiles/bench_indb_analytics.dir/bench_indb_analytics.cc.o.d"
  "bench_indb_analytics"
  "bench_indb_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_indb_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
