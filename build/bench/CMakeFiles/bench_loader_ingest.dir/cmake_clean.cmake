file(REMOVE_RECURSE
  "CMakeFiles/bench_loader_ingest.dir/bench_loader_ingest.cc.o"
  "CMakeFiles/bench_loader_ingest.dir/bench_loader_ingest.cc.o.d"
  "bench_loader_ingest"
  "bench_loader_ingest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_loader_ingest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
