file(REMOVE_RECURSE
  "CMakeFiles/bench_txn_overhead.dir/bench_txn_overhead.cc.o"
  "CMakeFiles/bench_txn_overhead.dir/bench_txn_overhead.cc.o.d"
  "bench_txn_overhead"
  "bench_txn_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_txn_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
