file(REMOVE_RECURSE
  "CMakeFiles/bench_elt_pipeline.dir/bench_elt_pipeline.cc.o"
  "CMakeFiles/bench_elt_pipeline.dir/bench_elt_pipeline.cc.o.d"
  "bench_elt_pipeline"
  "bench_elt_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_elt_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
