# Empty dependencies file for bench_elt_pipeline.
# This may be replaced when dependencies are built.
