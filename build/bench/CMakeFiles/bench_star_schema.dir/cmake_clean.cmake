file(REMOVE_RECURSE
  "CMakeFiles/bench_star_schema.dir/bench_star_schema.cc.o"
  "CMakeFiles/bench_star_schema.dir/bench_star_schema.cc.o.d"
  "bench_star_schema"
  "bench_star_schema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_star_schema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
