# Empty dependencies file for bench_star_schema.
# This may be replaced when dependencies are built.
