
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/accel/accel_executor.cc" "src/CMakeFiles/idaa.dir/accel/accel_executor.cc.o" "gcc" "src/CMakeFiles/idaa.dir/accel/accel_executor.cc.o.d"
  "/root/repo/src/accel/accelerator.cc" "src/CMakeFiles/idaa.dir/accel/accelerator.cc.o" "gcc" "src/CMakeFiles/idaa.dir/accel/accelerator.cc.o.d"
  "/root/repo/src/accel/column.cc" "src/CMakeFiles/idaa.dir/accel/column.cc.o" "gcc" "src/CMakeFiles/idaa.dir/accel/column.cc.o.d"
  "/root/repo/src/accel/column_table.cc" "src/CMakeFiles/idaa.dir/accel/column_table.cc.o" "gcc" "src/CMakeFiles/idaa.dir/accel/column_table.cc.o.d"
  "/root/repo/src/accel/groom.cc" "src/CMakeFiles/idaa.dir/accel/groom.cc.o" "gcc" "src/CMakeFiles/idaa.dir/accel/groom.cc.o.d"
  "/root/repo/src/accel/zone_map.cc" "src/CMakeFiles/idaa.dir/accel/zone_map.cc.o" "gcc" "src/CMakeFiles/idaa.dir/accel/zone_map.cc.o.d"
  "/root/repo/src/analytics/apriori.cc" "src/CMakeFiles/idaa.dir/analytics/apriori.cc.o" "gcc" "src/CMakeFiles/idaa.dir/analytics/apriori.cc.o.d"
  "/root/repo/src/analytics/data_prep.cc" "src/CMakeFiles/idaa.dir/analytics/data_prep.cc.o" "gcc" "src/CMakeFiles/idaa.dir/analytics/data_prep.cc.o.d"
  "/root/repo/src/analytics/decision_tree.cc" "src/CMakeFiles/idaa.dir/analytics/decision_tree.cc.o" "gcc" "src/CMakeFiles/idaa.dir/analytics/decision_tree.cc.o.d"
  "/root/repo/src/analytics/kmeans.cc" "src/CMakeFiles/idaa.dir/analytics/kmeans.cc.o" "gcc" "src/CMakeFiles/idaa.dir/analytics/kmeans.cc.o.d"
  "/root/repo/src/analytics/linear_regression.cc" "src/CMakeFiles/idaa.dir/analytics/linear_regression.cc.o" "gcc" "src/CMakeFiles/idaa.dir/analytics/linear_regression.cc.o.d"
  "/root/repo/src/analytics/naive_bayes.cc" "src/CMakeFiles/idaa.dir/analytics/naive_bayes.cc.o" "gcc" "src/CMakeFiles/idaa.dir/analytics/naive_bayes.cc.o.d"
  "/root/repo/src/analytics/operator.cc" "src/CMakeFiles/idaa.dir/analytics/operator.cc.o" "gcc" "src/CMakeFiles/idaa.dir/analytics/operator.cc.o.d"
  "/root/repo/src/analytics/pipeline.cc" "src/CMakeFiles/idaa.dir/analytics/pipeline.cc.o" "gcc" "src/CMakeFiles/idaa.dir/analytics/pipeline.cc.o.d"
  "/root/repo/src/analytics/registry.cc" "src/CMakeFiles/idaa.dir/analytics/registry.cc.o" "gcc" "src/CMakeFiles/idaa.dir/analytics/registry.cc.o.d"
  "/root/repo/src/catalog/catalog.cc" "src/CMakeFiles/idaa.dir/catalog/catalog.cc.o" "gcc" "src/CMakeFiles/idaa.dir/catalog/catalog.cc.o.d"
  "/root/repo/src/common/csv.cc" "src/CMakeFiles/idaa.dir/common/csv.cc.o" "gcc" "src/CMakeFiles/idaa.dir/common/csv.cc.o.d"
  "/root/repo/src/common/metrics.cc" "src/CMakeFiles/idaa.dir/common/metrics.cc.o" "gcc" "src/CMakeFiles/idaa.dir/common/metrics.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/idaa.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/idaa.dir/common/rng.cc.o.d"
  "/root/repo/src/common/row.cc" "src/CMakeFiles/idaa.dir/common/row.cc.o" "gcc" "src/CMakeFiles/idaa.dir/common/row.cc.o.d"
  "/root/repo/src/common/schema.cc" "src/CMakeFiles/idaa.dir/common/schema.cc.o" "gcc" "src/CMakeFiles/idaa.dir/common/schema.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/idaa.dir/common/status.cc.o" "gcc" "src/CMakeFiles/idaa.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/idaa.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/idaa.dir/common/string_util.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/CMakeFiles/idaa.dir/common/thread_pool.cc.o" "gcc" "src/CMakeFiles/idaa.dir/common/thread_pool.cc.o.d"
  "/root/repo/src/common/value.cc" "src/CMakeFiles/idaa.dir/common/value.cc.o" "gcc" "src/CMakeFiles/idaa.dir/common/value.cc.o.d"
  "/root/repo/src/db2/db2_engine.cc" "src/CMakeFiles/idaa.dir/db2/db2_engine.cc.o" "gcc" "src/CMakeFiles/idaa.dir/db2/db2_engine.cc.o.d"
  "/root/repo/src/db2/row_store.cc" "src/CMakeFiles/idaa.dir/db2/row_store.cc.o" "gcc" "src/CMakeFiles/idaa.dir/db2/row_store.cc.o.d"
  "/root/repo/src/engine/select_runtime.cc" "src/CMakeFiles/idaa.dir/engine/select_runtime.cc.o" "gcc" "src/CMakeFiles/idaa.dir/engine/select_runtime.cc.o.d"
  "/root/repo/src/federation/federation.cc" "src/CMakeFiles/idaa.dir/federation/federation.cc.o" "gcc" "src/CMakeFiles/idaa.dir/federation/federation.cc.o.d"
  "/root/repo/src/federation/router.cc" "src/CMakeFiles/idaa.dir/federation/router.cc.o" "gcc" "src/CMakeFiles/idaa.dir/federation/router.cc.o.d"
  "/root/repo/src/federation/transfer_channel.cc" "src/CMakeFiles/idaa.dir/federation/transfer_channel.cc.o" "gcc" "src/CMakeFiles/idaa.dir/federation/transfer_channel.cc.o.d"
  "/root/repo/src/governance/audit_log.cc" "src/CMakeFiles/idaa.dir/governance/audit_log.cc.o" "gcc" "src/CMakeFiles/idaa.dir/governance/audit_log.cc.o.d"
  "/root/repo/src/governance/authorization.cc" "src/CMakeFiles/idaa.dir/governance/authorization.cc.o" "gcc" "src/CMakeFiles/idaa.dir/governance/authorization.cc.o.d"
  "/root/repo/src/idaa/connection.cc" "src/CMakeFiles/idaa.dir/idaa/connection.cc.o" "gcc" "src/CMakeFiles/idaa.dir/idaa/connection.cc.o.d"
  "/root/repo/src/idaa/system.cc" "src/CMakeFiles/idaa.dir/idaa/system.cc.o" "gcc" "src/CMakeFiles/idaa.dir/idaa/system.cc.o.d"
  "/root/repo/src/loader/loader.cc" "src/CMakeFiles/idaa.dir/loader/loader.cc.o" "gcc" "src/CMakeFiles/idaa.dir/loader/loader.cc.o.d"
  "/root/repo/src/loader/record_source.cc" "src/CMakeFiles/idaa.dir/loader/record_source.cc.o" "gcc" "src/CMakeFiles/idaa.dir/loader/record_source.cc.o.d"
  "/root/repo/src/replication/apply_worker.cc" "src/CMakeFiles/idaa.dir/replication/apply_worker.cc.o" "gcc" "src/CMakeFiles/idaa.dir/replication/apply_worker.cc.o.d"
  "/root/repo/src/replication/change_capture.cc" "src/CMakeFiles/idaa.dir/replication/change_capture.cc.o" "gcc" "src/CMakeFiles/idaa.dir/replication/change_capture.cc.o.d"
  "/root/repo/src/replication/replication_service.cc" "src/CMakeFiles/idaa.dir/replication/replication_service.cc.o" "gcc" "src/CMakeFiles/idaa.dir/replication/replication_service.cc.o.d"
  "/root/repo/src/sql/ast.cc" "src/CMakeFiles/idaa.dir/sql/ast.cc.o" "gcc" "src/CMakeFiles/idaa.dir/sql/ast.cc.o.d"
  "/root/repo/src/sql/binder.cc" "src/CMakeFiles/idaa.dir/sql/binder.cc.o" "gcc" "src/CMakeFiles/idaa.dir/sql/binder.cc.o.d"
  "/root/repo/src/sql/expression_eval.cc" "src/CMakeFiles/idaa.dir/sql/expression_eval.cc.o" "gcc" "src/CMakeFiles/idaa.dir/sql/expression_eval.cc.o.d"
  "/root/repo/src/sql/lexer.cc" "src/CMakeFiles/idaa.dir/sql/lexer.cc.o" "gcc" "src/CMakeFiles/idaa.dir/sql/lexer.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/CMakeFiles/idaa.dir/sql/parser.cc.o" "gcc" "src/CMakeFiles/idaa.dir/sql/parser.cc.o.d"
  "/root/repo/src/sql/token.cc" "src/CMakeFiles/idaa.dir/sql/token.cc.o" "gcc" "src/CMakeFiles/idaa.dir/sql/token.cc.o.d"
  "/root/repo/src/txn/lock_manager.cc" "src/CMakeFiles/idaa.dir/txn/lock_manager.cc.o" "gcc" "src/CMakeFiles/idaa.dir/txn/lock_manager.cc.o.d"
  "/root/repo/src/txn/transaction.cc" "src/CMakeFiles/idaa.dir/txn/transaction.cc.o" "gcc" "src/CMakeFiles/idaa.dir/txn/transaction.cc.o.d"
  "/root/repo/src/txn/transaction_manager.cc" "src/CMakeFiles/idaa.dir/txn/transaction_manager.cc.o" "gcc" "src/CMakeFiles/idaa.dir/txn/transaction_manager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
