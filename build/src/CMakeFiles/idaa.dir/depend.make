# Empty dependencies file for idaa.
# This may be replaced when dependencies are built.
