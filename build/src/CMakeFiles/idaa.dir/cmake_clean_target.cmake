file(REMOVE_RECURSE
  "libidaa.a"
)
